//! Error types for the simulated kernel.

use std::fmt;

use sjmp_mem::{MemError, PageSize};

use crate::process::Pid;
use crate::vmspace::VmspaceId;

/// Errors returned by kernel operations (system calls and capability
/// invocations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OsError {
    /// Underlying memory-hardware error.
    Mem(MemError),
    /// Unknown process id.
    NoSuchProcess,
    /// Unknown VM object id.
    NoSuchObject,
    /// Unknown vmspace id.
    NoSuchSpace,
    /// Caller's credentials do not permit the operation.
    PermissionDenied,
    /// A name or address range conflicts with an existing object.
    Conflict(String),
    /// Malformed request (alignment, range, size...).
    InvalidArgument(&'static str),
    /// A huge-page mapping request whose address or length is not a
    /// multiple of the requested page size. Typed (rather than folded
    /// into `InvalidArgument`) so callers can report which constraint
    /// was violated and retry with base pages.
    Misaligned {
        /// The offending address or length.
        requested: u64,
        /// The page size whose alignment the request failed.
        page_size: PageSize,
    },
    /// Capability-system failure (Barrelfish flavor).
    Cap(CapError),
    /// The operation would block (lock held); discrete-event simulations
    /// use this to queue the caller.
    WouldBlock,
    /// Out of address-space identifiers.
    OutOfAsids,
    /// The calling process died abruptly inside the kernel (injected by
    /// the crash-fault plan). The kernel performed no cleanup: the
    /// process remains registered, holding its vmspaces and locks, until
    /// it is reclaimed with `Kernel::kill` or `SpaceJmp::reap_process`.
    Crashed,
    /// Physical memory is exhausted and reclaim could not free enough
    /// frames. Unlike the bare `Mem(OutOfFrames)`, this names the culprit
    /// so OOM diagnostics are actionable.
    OutOfMemory {
        /// Process whose request failed, if a process was involved.
        pid: Option<Pid>,
        /// Address space the request was against, if any.
        space: Option<VmspaceId>,
        /// Bytes the failed request asked for.
        bytes: u64,
        /// Frames the allocator could still supply at failure time.
        frames_free: u64,
    },
    /// The request would push the process past its memory quota and
    /// reclaiming the process's own pages could not make room. The
    /// workload is expected to free memory (or wait for reclaim) and
    /// retry.
    QuotaExceeded {
        /// Process that hit its quota.
        pid: Pid,
        /// The configured quota, in frames.
        limit_frames: u64,
        /// Frames the process had resident when the request was made.
        used_frames: u64,
        /// Frames the failed request asked for.
        requested_frames: u64,
    },
}

impl fmt::Display for OsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsError::Mem(e) => write!(f, "memory error: {e}"),
            OsError::NoSuchProcess => write!(f, "no such process"),
            OsError::NoSuchObject => write!(f, "no such VM object"),
            OsError::NoSuchSpace => write!(f, "no such vmspace"),
            OsError::PermissionDenied => write!(f, "permission denied"),
            OsError::Conflict(what) => write!(f, "conflict: {what}"),
            OsError::InvalidArgument(what) => write!(f, "invalid argument: {what}"),
            OsError::Misaligned {
                requested,
                page_size,
            } => write!(
                f,
                "misaligned request: {requested:#x} is not a multiple of the {} page size",
                page_size.bytes()
            ),
            OsError::Cap(e) => write!(f, "capability error: {e}"),
            OsError::WouldBlock => write!(f, "operation would block"),
            OsError::OutOfAsids => write!(f, "out of address space identifiers"),
            OsError::Crashed => write!(f, "process crashed inside the kernel"),
            OsError::OutOfMemory {
                pid,
                space,
                bytes,
                frames_free,
            } => {
                write!(f, "out of memory: ")?;
                match pid {
                    Some(p) => write!(f, "pid {} ", p.0)?,
                    None => write!(f, "kernel ")?,
                }
                if let Some(s) = space {
                    write!(f, "(vmspace {}) ", s.0)?;
                }
                write!(
                    f,
                    "requested {bytes} bytes with {frames_free} frames free after reclaim"
                )
            }
            OsError::QuotaExceeded {
                pid,
                limit_frames,
                used_frames,
                requested_frames,
            } => write!(
                f,
                "memory quota exceeded: pid {} has {used_frames}/{limit_frames} frames resident, requested {requested_frames} more",
                pid.0
            ),
        }
    }
}

impl std::error::Error for OsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OsError::Mem(e) => Some(e),
            OsError::Cap(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemError> for OsError {
    fn from(e: MemError) -> Self {
        OsError::Mem(e)
    }
}

impl From<CapError> for OsError {
    fn from(e: CapError) -> Self {
        OsError::Cap(e)
    }
}

/// Errors from the capability subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapError {
    /// Slot does not hold a capability.
    EmptySlot,
    /// Capability does not carry the required rights.
    InsufficientRights,
    /// Retype not permitted from this capability type.
    BadRetype,
    /// Capability refers to the wrong kind of object.
    WrongType,
    /// CSpace is full.
    NoSlots,
    /// Capability was revoked.
    Revoked,
}

impl fmt::Display for CapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CapError::EmptySlot => write!(f, "empty capability slot"),
            CapError::InsufficientRights => write!(f, "insufficient capability rights"),
            CapError::BadRetype => write!(f, "invalid retype"),
            CapError::WrongType => write!(f, "wrong capability type"),
            CapError::NoSlots => write!(f, "capability space full"),
            CapError::Revoked => write!(f, "capability was revoked"),
        }
    }
}

impl std::error::Error for CapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = OsError::from(MemError::OutOfFrames);
        assert!(e.to_string().contains("out of physical frames"));
        assert!(e.source().is_some());
        let c = OsError::from(CapError::BadRetype);
        assert!(c.to_string().contains("invalid retype"));
        assert!(OsError::NoSuchProcess.source().is_none());
    }

    #[test]
    fn oom_errors_name_the_culprit() {
        let e = OsError::OutOfMemory {
            pid: Some(Pid(7)),
            space: Some(VmspaceId(3)),
            bytes: 8192,
            frames_free: 1,
        };
        let s = e.to_string();
        assert!(s.contains("pid 7") && s.contains("8192") && s.contains("1 frames free"));
        let q = OsError::QuotaExceeded {
            pid: Pid(9),
            limit_frames: 10,
            used_frames: 10,
            requested_frames: 2,
        };
        let s = q.to_string();
        assert!(s.contains("pid 9") && s.contains("10/10") && s.contains("2 more"));
    }

    #[test]
    fn misaligned_names_the_page_size() {
        let e = OsError::Misaligned {
            requested: 0x1000,
            page_size: PageSize::Size2M,
        };
        let s = e.to_string();
        assert!(s.contains("0x1000") && s.contains("2097152"), "{s}");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OsError>();
    }
}
