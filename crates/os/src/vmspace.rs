//! The `vmspace`: one concrete instance of an address space.
//!
//! In BSD (Section 4.1) an address space has two layers: "a high-level set
//! of region descriptors (virtual offset, length, permissions), and a
//! single instance of the architecture-specific translation structures
//! used by the CPU." A [`Vmspace`] holds both: a sorted region map and the
//! root of a four-level page table in simulated physical memory.
//!
//! SpaceJMP's key observation lives here too: a *VAS* cannot be shared as
//! a `vmspace` directly, because every process needs its own private
//! segments (code, stack) mapped at conflicting addresses. Instead, each
//! attaching process instantiates its own `Vmspace` from the VAS's segment
//! set. That instantiation is implemented in `spacejmp-core`; this module
//! provides the mechanism.

use std::collections::BTreeMap;

use sjmp_mem::{Access, Asid, MemError, Pfn, PteFlags, VirtAddr, PAGE_SIZE};

use crate::vmobject::VmObjectId;

/// Identifier of a vmspace instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VmspaceId(pub u64);

/// When page-table entries for a region are constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapPolicy {
    /// Construct all entries at map time (`mmap` then touch-all; this is
    /// the cost Figure 1 measures).
    Eager,
    /// Construct entries on first fault.
    Lazy,
}

/// One mapped region: `[start, start+len)` backed by a VM object.
#[derive(Debug, Clone)]
pub struct Region {
    /// First mapped virtual address (page aligned).
    pub start: VirtAddr,
    /// Region length in bytes (multiple of the page size).
    pub len: u64,
    /// Backing VM object.
    pub object: VmObjectId,
    /// Byte offset into the object where this region begins.
    pub object_offset: u64,
    /// Leaf PTE flags for the mapping.
    pub flags: PteFlags,
    /// Eager or lazy construction.
    pub policy: MapPolicy,
}

impl Region {
    /// Whether `va` falls inside this region.
    pub fn contains(&self, va: VirtAddr) -> bool {
        va >= self.start && va.raw() < self.start.raw() + self.len
    }

    /// Whether the region's flags allow `access` (used on faults).
    pub fn permits(&self, access: Access) -> bool {
        match access {
            Access::Read => true,
            Access::Write => self.flags.contains(PteFlags::WRITABLE),
            Access::Execute => !self.flags.contains(PteFlags::NO_EXECUTE),
        }
    }

    /// One-past-the-end address.
    pub fn end(&self) -> VirtAddr {
        self.start.add(self.len)
    }
}

/// A concrete address-space instance: region map plus page-table root.
#[derive(Debug)]
pub struct Vmspace {
    id: VmspaceId,
    root: Pfn,
    asid: Asid,
    regions: BTreeMap<u64, Region>,
    /// PML4 slots linked from shared subtrees (not freed on teardown).
    shared_slots: Vec<usize>,
}

impl Vmspace {
    /// Creates an empty vmspace over an existing root table.
    pub fn new(id: VmspaceId, root: Pfn) -> Self {
        Vmspace {
            id,
            root,
            asid: Asid::UNTAGGED,
            regions: BTreeMap::new(),
            shared_slots: Vec::new(),
        }
    }

    /// This vmspace's id.
    pub fn id(&self) -> VmspaceId {
        self.id
    }

    /// Root page-table frame (the value loaded into CR3).
    pub fn root(&self) -> Pfn {
        self.root
    }

    /// TLB tag for this space.
    pub fn asid(&self) -> Asid {
        self.asid
    }

    /// Assigns a TLB tag (`vas_ctl` tag hints end up here).
    pub fn set_asid(&mut self, asid: Asid) {
        self.asid = asid;
    }

    /// Records that a PML4 slot holds a shared subtree.
    pub fn mark_shared_slot(&mut self, slot: usize) {
        if !self.shared_slots.contains(&slot) {
            self.shared_slots.push(slot);
        }
    }

    /// Slots holding shared subtrees.
    pub fn shared_slots(&self) -> &[usize] {
        &self.shared_slots
    }

    /// Inserts a region after checking alignment and overlap.
    ///
    /// Unlike Linux `mmap` — which the paper criticizes because it "does
    /// not safely abort if a request is made to open a region of memory
    /// over an existing region; it simply writes over it" — insertion
    /// fails loudly on any overlap.
    ///
    /// # Errors
    ///
    /// * [`MemError::BadMapping`] for misaligned or empty regions.
    /// * [`MemError::AlreadyMapped`] if the range overlaps a region.
    pub fn insert_region(&mut self, region: Region) -> Result<(), MemError> {
        if region.len == 0
            || !region.start.is_aligned(PAGE_SIZE)
            || !region.len.is_multiple_of(PAGE_SIZE)
            || !region.object_offset.is_multiple_of(PAGE_SIZE)
        {
            return Err(MemError::BadMapping(region.start));
        }
        if let Some(existing) = self.overlap(region.start, region.len) {
            return Err(MemError::AlreadyMapped(existing));
        }
        self.regions.insert(region.start.raw(), region);
        Ok(())
    }

    /// Returns the start of a region overlapping `[start, start+len)`.
    pub fn overlap(&self, start: VirtAddr, len: u64) -> Option<VirtAddr> {
        let end = start.raw() + len;
        // Candidate: the last region starting at or before the new end.
        self.regions
            .range(..end)
            .next_back()
            .filter(|(_, r)| r.start.raw() + r.len > start.raw())
            .map(|(_, r)| r.start)
    }

    /// Finds the region containing `va`.
    pub fn find_region(&self, va: VirtAddr) -> Option<&Region> {
        self.regions
            .range(..=va.raw())
            .next_back()
            .map(|(_, r)| r)
            .filter(|r| r.contains(va))
    }

    /// Removes the region starting exactly at `start` and returns it.
    pub fn remove_region(&mut self, start: VirtAddr) -> Option<Region> {
        self.regions.remove(&start.raw())
    }

    /// Iterates over regions in address order.
    pub fn regions(&self) -> impl Iterator<Item = &Region> {
        self.regions.values()
    }

    /// Number of regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Finds `len` bytes of free address space within `[lo, hi)`,
    /// page-aligned, first-fit.
    pub fn find_free(&self, lo: VirtAddr, hi: VirtAddr, len: u64) -> Option<VirtAddr> {
        let len = len.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let mut cursor = lo.align_up(PAGE_SIZE);
        for r in self.regions.range(..hi.raw()).map(|(_, r)| r) {
            if r.start.raw() + r.len <= cursor.raw() {
                continue;
            }
            if r.start.raw() >= cursor.raw() + len {
                break;
            }
            cursor = r.end().align_up(PAGE_SIZE);
        }
        if cursor.raw() + len <= hi.raw() {
            Some(cursor)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(start: u64, len: u64) -> Region {
        Region {
            start: VirtAddr::new(start),
            len,
            object: VmObjectId(1),
            object_offset: 0,
            flags: PteFlags::WRITABLE | PteFlags::USER,
            policy: MapPolicy::Eager,
        }
    }

    fn space() -> Vmspace {
        Vmspace::new(VmspaceId(1), Pfn(42))
    }

    #[test]
    fn insert_and_find() {
        let mut vs = space();
        vs.insert_region(region(0x1000, 0x2000)).unwrap();
        assert!(vs.find_region(VirtAddr::new(0x1000)).is_some());
        assert!(vs.find_region(VirtAddr::new(0x2fff)).is_some());
        assert!(vs.find_region(VirtAddr::new(0x3000)).is_none());
        assert!(vs.find_region(VirtAddr::new(0xfff)).is_none());
        assert_eq!(vs.region_count(), 1);
    }

    #[test]
    fn overlap_rejected_loudly() {
        let mut vs = space();
        vs.insert_region(region(0x10000, 0x4000)).unwrap();
        // Overlapping from below, inside, above, and exact.
        for (s, l) in [
            (0xf000, 0x2000),
            (0x11000, 0x1000),
            (0x13000, 0x4000),
            (0x10000, 0x4000),
        ] {
            assert!(
                matches!(
                    vs.insert_region(region(s, l)),
                    Err(MemError::AlreadyMapped(_))
                ),
                "({s:#x},{l:#x}) should overlap"
            );
        }
        // Adjacent regions are fine.
        vs.insert_region(region(0x14000, 0x1000)).unwrap();
        vs.insert_region(region(0xe000, 0x2000)).unwrap();
    }

    #[test]
    fn misaligned_rejected() {
        let mut vs = space();
        assert!(vs.insert_region(region(0x1234, 0x1000)).is_err());
        assert!(vs.insert_region(region(0x1000, 0x123)).is_err());
        assert!(vs.insert_region(region(0x1000, 0)).is_err());
    }

    #[test]
    fn remove_region() {
        let mut vs = space();
        vs.insert_region(region(0x1000, 0x1000)).unwrap();
        assert!(vs.remove_region(VirtAddr::new(0x1000)).is_some());
        assert!(vs.remove_region(VirtAddr::new(0x1000)).is_none());
        assert_eq!(vs.region_count(), 0);
    }

    #[test]
    fn find_free_first_fit() {
        let mut vs = space();
        vs.insert_region(region(0x2000, 0x2000)).unwrap();
        vs.insert_region(region(0x6000, 0x1000)).unwrap();
        let lo = VirtAddr::new(0x1000);
        let hi = VirtAddr::new(0x10000);
        // Hole at 0x1000 (one page), then 0x4000..0x6000.
        assert_eq!(vs.find_free(lo, hi, 0x1000), Some(VirtAddr::new(0x1000)));
        assert_eq!(vs.find_free(lo, hi, 0x2000), Some(VirtAddr::new(0x4000)));
        assert_eq!(vs.find_free(lo, hi, 0x8000), Some(VirtAddr::new(0x7000)));
        assert_eq!(vs.find_free(lo, hi, 0x10000), None);
    }

    #[test]
    fn region_permissions() {
        let mut r = region(0x1000, 0x1000);
        assert!(r.permits(Access::Read));
        assert!(r.permits(Access::Write));
        r.flags = PteFlags::USER;
        assert!(!r.permits(Access::Write));
        r.flags = PteFlags::USER | PteFlags::NO_EXECUTE;
        assert!(!r.permits(Access::Execute));
    }

    #[test]
    fn shared_slots_dedup() {
        let mut vs = space();
        vs.mark_shared_slot(3);
        vs.mark_shared_slot(3);
        vs.mark_shared_slot(4);
        assert_eq!(vs.shared_slots(), &[3, 4]);
    }

    #[test]
    fn asid_assignment() {
        let mut vs = space();
        assert_eq!(vs.asid(), Asid::UNTAGGED);
        vs.set_asid(Asid(7));
        assert_eq!(vs.asid(), Asid(7));
    }
}
