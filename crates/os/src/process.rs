//! Process control blocks.
//!
//! The paper's key change to the BSD process structure (Section 4.1): "A
//! slight modification of the process context structure was necessary to
//! hold references to more than one vmspace object, along with a pointer
//! to the current address space." [`Process`] carries exactly that — a
//! list of vmspace instances plus a current pointer — along with
//! credentials for the ACL model and a capability space for the
//! Barrelfish flavor.

use crate::acl::Creds;
use crate::caps::CSpace;
use crate::vmspace::VmspaceId;

/// Process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub u64);

/// A simulated process.
#[derive(Debug)]
pub struct Process {
    pid: Pid,
    name: String,
    creds: Creds,
    /// The vmspace created at spawn (the "traditional" address space).
    initial_space: VmspaceId,
    /// All vmspace instances this process may switch between.
    spaces: Vec<VmspaceId>,
    /// The currently active vmspace (what CR3 points at when running).
    current: VmspaceId,
    /// Capability space (Barrelfish flavor).
    cspace: CSpace,
    /// Core this process is pinned to (for MMU selection).
    core: usize,
}

impl Process {
    /// Creates a process with its initial vmspace already instantiated.
    pub fn new(pid: Pid, name: impl Into<String>, creds: Creds, initial_space: VmspaceId) -> Self {
        Process {
            pid,
            name: name.into(),
            creds,
            initial_space,
            spaces: vec![initial_space],
            current: initial_space,
            cspace: CSpace::new(64),
            core: 0,
        }
    }

    /// The process id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The process name (diagnostics only).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The process credentials.
    pub fn creds(&self) -> Creds {
        self.creds
    }

    /// The vmspace created at spawn.
    pub fn initial_space(&self) -> VmspaceId {
        self.initial_space
    }

    /// The currently active vmspace.
    pub fn current_space(&self) -> VmspaceId {
        self.current
    }

    /// Makes `space` current. The kernel calls this after loading CR3.
    ///
    /// # Panics
    ///
    /// Panics if the process does not hold `space` — switching into an
    /// unattached vmspace would be a kernel bug.
    pub fn set_current_space(&mut self, space: VmspaceId) {
        assert!(
            self.spaces.contains(&space),
            "process {:?} does not hold {:?}",
            self.pid,
            space
        );
        self.current = space;
    }

    /// Records a newly attached vmspace instance.
    pub fn add_space(&mut self, space: VmspaceId) {
        if !self.spaces.contains(&space) {
            self.spaces.push(space);
        }
    }

    /// Forgets a vmspace instance (detach). Returns whether it was held.
    ///
    /// The current space and the initial space cannot be removed.
    pub fn remove_space(&mut self, space: VmspaceId) -> bool {
        if space == self.current || space == self.initial_space {
            return false;
        }
        let before = self.spaces.len();
        self.spaces.retain(|&s| s != space);
        before != self.spaces.len()
    }

    /// Whether the process holds `space`.
    pub fn holds_space(&self, space: VmspaceId) -> bool {
        self.spaces.contains(&space)
    }

    /// All held vmspaces.
    pub fn spaces(&self) -> &[VmspaceId] {
        &self.spaces
    }

    /// The capability space.
    pub fn cspace(&self) -> &CSpace {
        &self.cspace
    }

    /// Mutable capability space.
    pub fn cspace_mut(&mut self) -> &mut CSpace {
        &mut self.cspace
    }

    /// Core this process runs on.
    pub fn core(&self) -> usize {
        self.core
    }

    /// Pins the process to a core.
    pub fn set_core(&mut self, core: usize) {
        self.core = core;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proc() -> Process {
        Process::new(Pid(1), "test", Creds::new(100, 100), VmspaceId(10))
    }

    #[test]
    fn initial_state() {
        let p = proc();
        assert_eq!(p.pid(), Pid(1));
        assert_eq!(p.name(), "test");
        assert_eq!(p.current_space(), VmspaceId(10));
        assert_eq!(p.initial_space(), VmspaceId(10));
        assert_eq!(p.spaces(), &[VmspaceId(10)]);
    }

    #[test]
    fn add_switch_remove() {
        let mut p = proc();
        p.add_space(VmspaceId(20));
        p.add_space(VmspaceId(20)); // idempotent
        assert_eq!(p.spaces().len(), 2);
        p.set_current_space(VmspaceId(20));
        assert_eq!(p.current_space(), VmspaceId(20));
        assert!(!p.remove_space(VmspaceId(20)), "cannot remove current");
        p.set_current_space(VmspaceId(10));
        assert!(p.remove_space(VmspaceId(20)));
        assert!(!p.holds_space(VmspaceId(20)));
        assert!(!p.remove_space(VmspaceId(10)), "cannot remove initial");
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn switch_to_unattached_space_panics() {
        let mut p = proc();
        p.set_current_space(VmspaceId(99));
    }

    #[test]
    fn core_pinning() {
        let mut p = proc();
        assert_eq!(p.core(), 0);
        p.set_core(5);
        assert_eq!(p.core(), 5);
    }
}
