//! # sjmp-os — the simulated operating-system substrate for SpaceJMP
//!
//! SpaceJMP (ASPLOS 2016) is implemented inside two real kernels —
//! DragonFly BSD and Barrelfish. This crate reproduces the kernel layer
//! those prototypes modify: processes with **multiple vmspace instances**,
//! BSD-style VM objects, eager/lazy page-table management over the
//! simulated hardware of [`sjmp_mem`], per-flavor kernel-entry costs, and
//! a miniature capability system for the Barrelfish personality. The
//! discrete-event primitives multi-actor experiments run on live in the
//! `sjmp-sim` crate; syscalls here take a [`CoreCtx`] (directly via the
//! `*_on` variants, or resolved from the process's pinned core) so every
//! modeled cost lands on the executing hardware thread's clock.
//!
//! The SpaceJMP abstractions themselves (first-class VASes, lockable
//! segments, the Figure 3 API) live in the `spacejmp-core` crate, layered
//! on top of this one just as the paper layers its implementation on the
//! BSD memory subsystem.
//!
//! # Examples
//!
//! ```
//! use sjmp_mem::{KernelFlavor, MachineId, PteFlags};
//! use sjmp_os::acl::Creds;
//! use sjmp_os::kernel::Kernel;
//!
//! # fn main() -> Result<(), sjmp_os::error::OsError> {
//! let mut kernel = Kernel::new(KernelFlavor::DragonFly, MachineId::M2);
//! let pid = kernel.spawn("worker", Creds::new(1000, 1000))?;
//! kernel.activate(pid)?;
//! let va = kernel.sys_mmap(pid, 1 << 20, PteFlags::USER | PteFlags::WRITABLE, false)?;
//! kernel.store_u64(pid, va, 42)?;
//! assert_eq!(kernel.load_u64(pid, va)?, 42);
//! # Ok(()) }
//! ```

pub mod acl;
pub mod caps;
pub mod error;
pub mod fault;
pub mod kernel;
pub mod process;
pub mod vmobject;
pub mod vmspace;

pub use acl::{Acl, Creds, Mode};
pub use caps::{CSpace, CapKind, CapRights, CapSlot, Capability, ObjClass};
pub use error::{CapError, OsError};
pub use fault::{FaultOutcome, FaultPlan, FaultSite, FaultStats};
pub use kernel::{
    Kernel, KernelSnapshot, KernelStats, OsResult, PhysStats, PressureLevel, GLOBAL_HI, GLOBAL_LO,
    PRIVATE_HI, PRIVATE_LO,
};
pub use process::{Pid, Process};
pub use sjmp_mem::cost::CoreCtx;
pub use vmobject::{PageSource, PageState, VmObject, VmObjectId};
pub use vmspace::{MapPolicy, Region, Vmspace, VmspaceId};
