//! Credentials and access-control lists.
//!
//! SpaceJMP deliberately reuses the host OS's security model rather than
//! inventing one (Section 3.2): "in DragonFly BSD, we rely on ACLs to
//! restrict access to segments and address spaces for processes or process
//! groups." This module provides that model: UNIX-style credentials plus a
//! small ACL with owner/group/other read-write modes and optional per-uid
//! entries.

use sjmp_mem::Access;

/// UNIX-style process credentials.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Creds {
    /// User id.
    pub uid: u32,
    /// Group id.
    pub gid: u32,
}

impl Creds {
    /// The superuser.
    pub const ROOT: Creds = Creds { uid: 0, gid: 0 };

    /// Creates credentials.
    pub fn new(uid: u32, gid: u32) -> Self {
        Creds { uid, gid }
    }
}

/// Mode bits, octal `0oUGO` with `4` = read and `2` = write per digit
/// (e.g. `0o660`: owner and group read-write, others nothing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mode(pub u16);

impl Mode {
    const READ: u16 = 4;
    const WRITE: u16 = 2;

    fn digit(self, shift: u16) -> u16 {
        (self.0 >> shift) & 7
    }

    fn digit_allows(digit: u16, access: Access) -> bool {
        match access {
            Access::Read | Access::Execute => digit & Mode::READ != 0,
            Access::Write => digit & Mode::WRITE != 0,
        }
    }
}

/// An access-control list guarding a segment or address space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Acl {
    owner: Creds,
    mode: Mode,
    /// Extra per-user entries, like POSIX.1e ACLs.
    entries: Vec<(u32, Mode)>,
}

impl Acl {
    /// Creates an ACL owned by `owner` with UNIX `mode` bits.
    ///
    /// # Examples
    ///
    /// ```
    /// use sjmp_os::acl::{Acl, Creds, Mode};
    /// use sjmp_mem::Access;
    /// let acl = Acl::new(Creds::new(100, 100), Mode(0o640));
    /// assert!(acl.allows(Creds::new(100, 100), Access::Write));
    /// assert!(!acl.allows(Creds::new(200, 100), Access::Write));
    /// assert!(acl.allows(Creds::new(200, 100), Access::Read));
    /// assert!(!acl.allows(Creds::new(200, 200), Access::Read));
    /// ```
    pub fn new(owner: Creds, mode: Mode) -> Self {
        Acl {
            owner,
            mode,
            entries: Vec::new(),
        }
    }

    /// The owning credentials.
    pub fn owner(&self) -> Creds {
        self.owner
    }

    /// Current mode bits.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Replaces the mode bits (`chmod`). Only the owner or root may call
    /// this; the kernel checks before invoking.
    pub fn set_mode(&mut self, mode: Mode) {
        self.mode = mode;
    }

    /// Adds or replaces a per-user entry.
    pub fn grant_user(&mut self, uid: u32, mode: Mode) {
        if let Some(e) = self.entries.iter_mut().find(|(u, _)| *u == uid) {
            e.1 = mode;
        } else {
            self.entries.push((uid, mode));
        }
    }

    /// Removes a per-user entry.
    pub fn revoke_user(&mut self, uid: u32) {
        self.entries.retain(|(u, _)| *u != uid);
    }

    /// Whether `creds` may perform `access`.
    ///
    /// Root is always allowed. Per-user entries take precedence over the
    /// owner/group/other mode digits, mirroring POSIX ACL evaluation.
    pub fn allows(&self, creds: Creds, access: Access) -> bool {
        if creds.uid == 0 {
            return true;
        }
        if let Some((_, mode)) = self.entries.iter().find(|(u, _)| *u == creds.uid) {
            return Mode::digit_allows(mode.digit(6), access);
        }
        let digit = if creds.uid == self.owner.uid {
            self.mode.digit(6)
        } else if creds.gid == self.owner.gid {
            self.mode.digit(3)
        } else {
            self.mode.digit(0)
        };
        Mode::digit_allows(digit, access)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_group_other_digits() {
        let acl = Acl::new(Creds::new(1, 10), Mode(0o642));
        assert!(acl.allows(Creds::new(1, 10), Access::Write));
        assert!(acl.allows(Creds::new(2, 10), Access::Read));
        assert!(!acl.allows(Creds::new(2, 10), Access::Write));
        assert!(!acl.allows(Creds::new(3, 30), Access::Read));
        assert!(
            acl.allows(Creds::new(3, 30), Access::Write),
            "0o..2 allows other-write"
        );
    }

    #[test]
    fn root_bypasses() {
        let acl = Acl::new(Creds::new(1, 1), Mode(0o000));
        assert!(acl.allows(Creds::ROOT, Access::Write));
    }

    #[test]
    fn per_user_entries_take_precedence() {
        let mut acl = Acl::new(Creds::new(1, 10), Mode(0o600));
        acl.grant_user(5, Mode(0o400));
        assert!(acl.allows(Creds::new(5, 99), Access::Read));
        assert!(!acl.allows(Creds::new(5, 99), Access::Write));
        // An entry can also *restrict* a group member.
        acl.grant_user(6, Mode(0o000));
        assert!(!acl.allows(Creds::new(6, 10), Access::Read));
        acl.revoke_user(6);
        assert!(
            !acl.allows(Creds::new(6, 10), Access::Read),
            "back to group digit (0)"
        );
        // Replacing an entry updates in place.
        acl.grant_user(5, Mode(0o600));
        assert!(acl.allows(Creds::new(5, 99), Access::Write));
    }

    #[test]
    fn execute_follows_read() {
        let acl = Acl::new(Creds::new(1, 10), Mode(0o400));
        assert!(acl.allows(Creds::new(1, 10), Access::Execute));
        assert!(!acl.allows(Creds::new(9, 9), Access::Execute));
    }

    #[test]
    fn chmod() {
        let mut acl = Acl::new(Creds::new(1, 10), Mode(0o600));
        assert!(!acl.allows(Creds::new(2, 10), Access::Read));
        acl.set_mode(Mode(0o660));
        assert!(acl.allows(Creds::new(2, 10), Access::Read));
        assert_eq!(acl.mode(), Mode(0o660));
        assert_eq!(acl.owner(), Creds::new(1, 10));
    }
}
