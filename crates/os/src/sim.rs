//! Discrete-event simulation primitives for multi-client experiments.
//!
//! The Redis experiment (Section 5.3) runs up to 100 concurrent clients
//! against 12 cores and a contended segment lock. Rather than real
//! threads — whose timing would reflect the host, not the modeled machine
//! — multi-client benchmarks are driven by a deterministic discrete-event
//! simulation: each client is an actor whose steps cost cycles from the
//! calibrated model, [`Cores`] models limited parallelism, and
//! [`SimRwLock`] models the reader/writer segment lock with FIFO handoff.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// An actor identifier within one simulation.
pub type ActorId = usize;

/// Time-ordered event queue. Ties break by insertion order, making runs
/// deterministic.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<(u64, u64, EventSlot<T>)>>,
    seq: u64,
}

// Wrapper so T itself does not need Ord.
#[derive(Debug)]
struct EventSlot<T>(T);

impl<T> PartialEq for EventSlot<T> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<T> Eq for EventSlot<T> {}
impl<T> PartialOrd for EventSlot<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for EventSlot<T> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` at absolute `time`.
    pub fn push(&mut self, time: u64, payload: T) {
        self.heap
            .push(Reverse((time, self.seq, EventSlot(payload))));
        self.seq += 1;
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        self.heap.pop().map(|Reverse((t, _, EventSlot(p)))| (t, p))
    }

    /// Next event time without popping.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// A pool of `n` cores: actors reserve a core for a cycle interval; if all
/// cores are busy the start time slips to the earliest free core.
#[derive(Debug, Clone)]
pub struct Cores {
    busy_until: Vec<u64>,
}

impl Cores {
    /// Creates a pool of `n` cores, all free at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one core");
        Cores {
            busy_until: vec![0; n],
        }
    }

    /// Number of cores.
    pub fn count(&self) -> usize {
        self.busy_until.len()
    }

    /// Reserves a core for `duration` cycles starting no earlier than
    /// `now`. Returns `(start, end)` of the reservation.
    pub fn reserve(&mut self, now: u64, duration: u64) -> (u64, u64) {
        let (idx, &free_at) = self
            .busy_until
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .expect("at least one core");
        let start = now.max(free_at);
        let end = start + duration;
        self.busy_until[idx] = end;
        (start, end)
    }

    /// Earliest time any core is free.
    pub fn earliest_free(&self) -> u64 {
        self.busy_until.iter().copied().min().unwrap_or(0)
    }
}

/// Lock acquisition mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (reader) access.
    Shared,
    /// Exclusive (writer) access.
    Exclusive,
}

/// A reader/writer lock for discrete-event simulations: immediate
/// grant/deny plus a FIFO waiter queue whose wakeups the simulation
/// schedules.
///
/// This is the *segment lock* of Section 3.1: read-only mappings acquire
/// shared, writable mappings acquire exclusive.
#[derive(Debug, Default)]
pub struct SimRwLock {
    readers: usize,
    writer: bool,
    waiters: VecDeque<(ActorId, LockMode)>,
    /// Peak queue length, for contention reporting.
    pub max_queue: usize,
}

impl SimRwLock {
    /// Creates an unlocked lock.
    pub fn new() -> Self {
        SimRwLock::default()
    }

    /// Attempts to acquire; on failure the actor is queued and `false` is
    /// returned. FIFO fairness: a reader behind a queued writer waits.
    pub fn acquire(&mut self, actor: ActorId, mode: LockMode) -> bool {
        let can = match mode {
            LockMode::Shared => !self.writer && self.waiters.is_empty(),
            LockMode::Exclusive => !self.writer && self.readers == 0 && self.waiters.is_empty(),
        };
        if can {
            match mode {
                LockMode::Shared => self.readers += 1,
                LockMode::Exclusive => self.writer = true,
            }
            true
        } else {
            self.waiters.push_back((actor, mode));
            self.max_queue = self.max_queue.max(self.waiters.len());
            false
        }
    }

    /// Releases a held lock and returns the actors to wake: either one
    /// writer, or a maximal run of readers.
    ///
    /// The returned actors hold the lock already (handoff semantics); the
    /// simulation just schedules their continuations.
    pub fn release(&mut self, mode: LockMode) -> Vec<ActorId> {
        match mode {
            LockMode::Shared => {
                debug_assert!(self.readers > 0, "release without hold");
                self.readers -= 1;
                if self.readers > 0 {
                    return Vec::new();
                }
            }
            LockMode::Exclusive => {
                debug_assert!(self.writer, "release without hold");
                self.writer = false;
            }
        }
        let mut woken = Vec::new();
        while let Some(&(actor, m)) = self.waiters.front() {
            match m {
                LockMode::Exclusive => {
                    if woken.is_empty() && self.readers == 0 && !self.writer {
                        self.writer = true;
                        self.waiters.pop_front();
                        woken.push(actor);
                    }
                    break;
                }
                LockMode::Shared => {
                    if self.writer {
                        break;
                    }
                    self.readers += 1;
                    self.waiters.pop_front();
                    woken.push(actor);
                }
            }
        }
        woken
    }

    /// Current reader count.
    pub fn readers(&self) -> usize {
        self.readers
    }

    /// Whether a writer holds the lock.
    pub fn has_writer(&self) -> bool {
        self.writer
    }

    /// Number of queued waiters.
    pub fn queue_len(&self) -> usize {
        self.waiters.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_queue_orders_by_time_then_insertion() {
        let mut q = EventQueue::new();
        q.push(10, "b");
        q.push(5, "a");
        q.push(10, "c");
        assert_eq!(q.peek_time(), Some(5));
        assert_eq!(q.pop(), Some((5, "a")));
        assert_eq!(q.pop(), Some((10, "b")));
        assert_eq!(q.pop(), Some((10, "c")));
        assert!(q.is_empty());
    }

    #[test]
    fn cores_serialize_when_saturated() {
        let mut cores = Cores::new(2);
        assert_eq!(cores.reserve(0, 100), (0, 100));
        assert_eq!(cores.reserve(0, 100), (0, 100));
        // Third job waits for a core.
        assert_eq!(cores.reserve(0, 50), (100, 150));
        assert_eq!(cores.count(), 2);
        assert_eq!(cores.earliest_free(), 100);
    }

    #[test]
    fn cores_respect_now() {
        let mut cores = Cores::new(1);
        assert_eq!(cores.reserve(500, 10), (500, 510));
    }

    #[test]
    fn rwlock_multiple_readers() {
        let mut l = SimRwLock::new();
        assert!(l.acquire(1, LockMode::Shared));
        assert!(l.acquire(2, LockMode::Shared));
        assert_eq!(l.readers(), 2);
        assert!(l.release(LockMode::Shared).is_empty());
        assert!(l.release(LockMode::Shared).is_empty());
    }

    #[test]
    fn rwlock_writer_excludes() {
        let mut l = SimRwLock::new();
        assert!(l.acquire(1, LockMode::Exclusive));
        assert!(!l.acquire(2, LockMode::Shared));
        assert!(!l.acquire(3, LockMode::Exclusive));
        assert_eq!(l.queue_len(), 2);
        // Release wakes the first waiter only (a reader), then the writer
        // after the reader releases.
        let woken = l.release(LockMode::Exclusive);
        assert_eq!(woken, vec![2]);
        assert_eq!(l.readers(), 1);
        let woken = l.release(LockMode::Shared);
        assert_eq!(woken, vec![3]);
        assert!(l.has_writer());
    }

    #[test]
    fn rwlock_wakes_reader_run() {
        let mut l = SimRwLock::new();
        assert!(l.acquire(0, LockMode::Exclusive));
        assert!(!l.acquire(1, LockMode::Shared));
        assert!(!l.acquire(2, LockMode::Shared));
        assert!(!l.acquire(3, LockMode::Exclusive));
        assert!(!l.acquire(4, LockMode::Shared));
        let woken = l.release(LockMode::Exclusive);
        assert_eq!(woken, vec![1, 2], "reader run stops at the queued writer");
        assert_eq!(l.readers(), 2);
        assert!(l.release(LockMode::Shared).is_empty());
        let woken = l.release(LockMode::Shared);
        assert_eq!(woken, vec![3]);
    }

    #[test]
    fn rwlock_fifo_blocks_new_readers_behind_writer() {
        let mut l = SimRwLock::new();
        assert!(l.acquire(1, LockMode::Shared));
        assert!(!l.acquire(2, LockMode::Exclusive));
        // A new reader may not jump the queued writer.
        assert!(!l.acquire(3, LockMode::Shared));
        assert_eq!(l.queue_len(), 2);
        assert_eq!(l.max_queue, 2);
    }
}
