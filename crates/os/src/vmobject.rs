//! BSD-style VM objects: the storage abstraction behind every mapping.
//!
//! The DragonFly BSD memory subsystem derives from Mach: each mapping's
//! region descriptor references a *VM object* which owns the physical
//! pages (Section 4.1). "A SpaceJMP segment is a wrapper around such an
//! object, backed only by physical memory, additionally containing global
//! identifiers (e.g., a name), and protection state. Physical pages are
//! reserved at the time a segment is created, and are not swappable."
//!
//! Two backing shapes exist:
//!
//! * **Contiguous** objects own a flat physical range (`pa = base +
//!   offset`). This matches the reservation-at-creation policy of pinned
//!   segments and keeps the virtual-to-physical math trivial.
//! * **Paged** objects track each page individually ([`PageState`]):
//!   demand-zero until first touch, resident in some frame, or saved to
//!   the swap device. This is what makes unpinned memory reclaimable
//!   under pressure — pinned segment frames stay contiguous and are never
//!   swapped, preserving the paper's semantics.
//!
//! Sparse host materialization (see [`sjmp_mem::phys::PhysMem`]) keeps
//! even terabyte-sized objects cheap.

use sjmp_mem::{MemError, Pfn, PhysAddr, PhysMem, PAGE_SIZE};

use crate::process::Pid;

/// Identifier of a VM object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VmObjectId(pub u64);

/// Where one page of a paged object currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageState {
    /// Never materialized: reads as zero; the first fault allocates a
    /// frame (demand-zero).
    Zero,
    /// Backed by a physical frame. `referenced` is the clock algorithm's
    /// second-chance bit: set when the page is faulted in or remapped,
    /// cleared (along with the translations) by a reclaim scan pass.
    Resident {
        /// The backing frame.
        pfn: Pfn,
        /// Second-chance bit for the clock eviction policy.
        referenced: bool,
    },
    /// Saved to the swap device.
    Swapped {
        /// Swap slot holding the page image.
        slot: u64,
    },
}

/// How a fault-in request found the page (decides what to charge).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageSource {
    /// The page was already resident (minor fault: remap only).
    AlreadyResident,
    /// A fresh zeroed frame was allocated (demand-zero fill).
    ZeroFill,
    /// The page was read back from swap (major fault).
    SwappedIn,
}

#[derive(Debug, Clone)]
enum Backing {
    Contiguous { base: Pfn },
    Paged { states: Vec<PageState> },
}

/// A physically-backed memory object.
#[derive(Debug, Clone)]
pub struct VmObject {
    id: VmObjectId,
    backing: Backing,
    pages: u64,
    /// Number of vmspace regions currently referencing this object.
    refs: u64,
    /// A PML4 slot holding cached translations for this object, if the
    /// kernel has built them ("a segment may contain a set of cached
    /// translations to accelerate attachment to an address space").
    cached_subtree: Option<(Pfn, usize)>,
    /// Pinned objects outlive the processes mapping them (SpaceJMP
    /// segments: "physical pages are reserved at the time a segment is
    /// created"). Unpinned objects are process-private and are reclaimed
    /// when process teardown drops their last mapping reference.
    pinned: bool,
    /// Survives process teardown at zero references without pinning its
    /// frames. Swappable segments set this: their lifetime is managed by
    /// the SpaceJMP layer but their pages remain eviction candidates.
    preserved: bool,
    /// Whether the reclaim scan may evict this object's pages. Never true
    /// together with `pinned`.
    swappable: bool,
    /// Process charged for this object's resident pages (memory quotas
    /// and OOM badness). `None` for kernel-owned or orphaned objects.
    owner: Option<Pid>,
}

impl VmObject {
    fn new(id: VmObjectId, backing: Backing, pages: u64) -> Self {
        VmObject {
            id,
            backing,
            pages,
            refs: 0,
            cached_subtree: None,
            pinned: false,
            preserved: false,
            swappable: false,
            owner: None,
        }
    }

    /// Allocates a new object of `len` bytes (rounded up to whole pages).
    ///
    /// Prefers a physically contiguous range; when the bump region can no
    /// longer supply one (after frames have been freed or swapped out),
    /// falls back to page-by-page allocation from the free list and
    /// produces a paged object.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfFrames`] when physical memory is exhausted
    /// and `InvalidArgument`-style `BadMapping` for a zero length.
    pub fn alloc(phys: &mut PhysMem, id: VmObjectId, len: u64) -> Result<Self, MemError> {
        if len == 0 {
            return Err(MemError::BadMapping(sjmp_mem::VirtAddr::NULL));
        }
        let pages = len.div_ceil(PAGE_SIZE);
        match phys.alloc_contiguous(pages) {
            Ok(base) => Ok(VmObject::new(id, Backing::Contiguous { base }, pages)),
            Err(MemError::OutOfFrames) => {
                let mut states = Vec::with_capacity(pages as usize);
                for _ in 0..pages {
                    match phys.alloc_frame() {
                        Ok(pfn) => states.push(PageState::Resident {
                            pfn,
                            referenced: true,
                        }),
                        Err(e) => {
                            for s in states {
                                if let PageState::Resident { pfn, .. } = s {
                                    phys.free_frame(pfn);
                                }
                            }
                            return Err(e);
                        }
                    }
                }
                Ok(VmObject::new(id, Backing::Paged { states }, pages))
            }
            Err(e) => Err(e),
        }
    }

    /// Allocates a contiguous object of `len` bytes whose base physical
    /// address is a multiple of `align_bytes` (a power-of-two multiple of
    /// the page size). Huge-page mappings need naturally aligned backing:
    /// a 2 MiB leaf entry can only point at a 2 MiB-aligned range. Unlike
    /// [`Self::alloc`], there is no paged fallback — a fragmented machine
    /// fails the request rather than silently losing the alignment.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfFrames`] when no aligned contiguous range fits;
    /// `BadMapping` for a zero length.
    pub fn alloc_aligned(
        phys: &mut PhysMem,
        id: VmObjectId,
        len: u64,
        align_bytes: u64,
    ) -> Result<Self, MemError> {
        if len == 0 {
            return Err(MemError::BadMapping(sjmp_mem::VirtAddr::NULL));
        }
        let pages = len.div_ceil(PAGE_SIZE);
        let base = phys.alloc_contiguous_aligned(pages, align_bytes / PAGE_SIZE)?;
        Ok(VmObject::new(id, Backing::Contiguous { base }, pages))
    }

    /// Creates a demand-zero paged object: no frames are allocated until
    /// pages are touched. This is how swappable segments oversubscribe
    /// physical memory.
    ///
    /// # Errors
    ///
    /// `BadMapping` for a zero length.
    pub fn alloc_demand(id: VmObjectId, len: u64) -> Result<Self, MemError> {
        if len == 0 {
            return Err(MemError::BadMapping(sjmp_mem::VirtAddr::NULL));
        }
        let pages = len.div_ceil(PAGE_SIZE);
        Ok(VmObject::new(
            id,
            Backing::Paged {
                states: vec![PageState::Zero; pages as usize],
            },
            pages,
        ))
    }

    /// Allocates a new object of `len` bytes from the NVM tier.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfFrames`] if no NVM tier exists or it is full.
    pub fn alloc_nvm(phys: &mut PhysMem, id: VmObjectId, len: u64) -> Result<Self, MemError> {
        if len == 0 {
            return Err(MemError::BadMapping(sjmp_mem::VirtAddr::NULL));
        }
        let pages = len.div_ceil(PAGE_SIZE);
        let base = phys.alloc_contiguous_nvm(pages)?;
        Ok(VmObject::new(id, Backing::Contiguous { base }, pages))
    }

    /// The object's id.
    pub fn id(&self) -> VmObjectId {
        self.id
    }

    /// Whether the object owns a flat physical range (`pa = base +
    /// offset` holds). Paged objects must be addressed per page.
    pub fn is_contiguous(&self) -> bool {
        matches!(self.backing, Backing::Contiguous { .. })
    }

    /// First physical address of the backing range.
    ///
    /// # Panics
    ///
    /// Panics on paged objects, which have no single base.
    pub fn base(&self) -> PhysAddr {
        match &self.backing {
            Backing::Contiguous { base } => base.base(),
            Backing::Paged { .. } => panic!("base() on demand-paged object"),
        }
    }

    /// Size in pages.
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// Size in bytes.
    pub fn len(&self) -> u64 {
        self.pages * PAGE_SIZE
    }

    /// Whether the object holds zero pages (never true for live objects).
    pub fn is_empty(&self) -> bool {
        self.pages == 0
    }

    /// Physical address of byte `offset` within the object.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is out of bounds or the containing page is not
    /// resident (fault it in first).
    pub fn pa(&self, offset: u64) -> PhysAddr {
        assert!(
            offset < self.len(),
            "offset {offset} beyond object of {} bytes",
            self.len()
        );
        match &self.backing {
            Backing::Contiguous { base } => base.base().add(offset),
            Backing::Paged { states } => match states[(offset / PAGE_SIZE) as usize] {
                PageState::Resident { pfn, .. } => pfn.base().add(offset % PAGE_SIZE),
                _ => panic!("pa() of non-resident page at offset {offset}"),
            },
        }
    }

    /// The state of page `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn page_state(&self, index: u64) -> PageState {
        assert!(index < self.pages, "page {index} beyond object");
        match &self.backing {
            Backing::Contiguous { base } => PageState::Resident {
                pfn: Pfn(base.0 + index),
                referenced: true,
            },
            Backing::Paged { states } => states[index as usize],
        }
    }

    /// The frame backing page `index`, if it is resident.
    pub fn frame_of_page(&self, index: u64) -> Option<Pfn> {
        match self.page_state(index) {
            PageState::Resident { pfn, .. } => Some(pfn),
            _ => None,
        }
    }

    /// Number of pages currently backed by physical frames.
    pub fn resident_pages(&self) -> u64 {
        match &self.backing {
            Backing::Contiguous { .. } => self.pages,
            Backing::Paged { states } => states
                .iter()
                .filter(|s| matches!(s, PageState::Resident { .. }))
                .count() as u64,
        }
    }

    /// Number of pages currently saved to swap.
    pub fn swapped_pages(&self) -> u64 {
        match &self.backing {
            Backing::Contiguous { .. } => 0,
            Backing::Paged { states } => states
                .iter()
                .filter(|s| matches!(s, PageState::Swapped { .. }))
                .count() as u64,
        }
    }

    /// Converts a contiguous object to per-page tracking so its pages can
    /// be evicted individually. No-op on already-paged objects.
    pub fn make_paged(&mut self) {
        if let Backing::Contiguous { base } = self.backing {
            self.backing = Backing::Paged {
                states: (0..self.pages)
                    .map(|i| PageState::Resident {
                        pfn: Pfn(base.0 + i),
                        referenced: true,
                    })
                    .collect(),
            };
        }
    }

    /// Installs `state` for page `index` directly — the object
    /// duplication path preserves `Zero`/`Swapped` states without
    /// faulting pages in. The caller owns the bookkeeping: the frame or
    /// swap slot named by `state` transfers to this object.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds or the object is contiguous.
    pub(crate) fn install_page_state(&mut self, index: u64, state: PageState) {
        assert!(index < self.pages, "page {index} beyond object");
        match &mut self.backing {
            Backing::Contiguous { .. } => panic!("install_page_state on contiguous object"),
            Backing::Paged { states } => states[index as usize] = state,
        }
    }

    /// Clock second-chance test: if page `index` is resident with its
    /// referenced bit set, clears the bit and returns `true` (the page
    /// survives this pass). Returns `false` for unreferenced, non-resident
    /// or contiguous pages.
    pub fn take_reference(&mut self, index: u64) -> bool {
        if let Backing::Paged { states } = &mut self.backing {
            if let PageState::Resident { referenced, .. } = &mut states[index as usize] {
                if *referenced {
                    *referenced = false;
                    return true;
                }
            }
        }
        false
    }

    /// Swaps resident page `index` out, returning the slot it went to.
    /// Returns `None` if the page is not resident or the object is still
    /// contiguous (call [`Self::make_paged`] first).
    pub fn evict_page(&mut self, index: u64, phys: &mut PhysMem) -> Option<u64> {
        if let Backing::Paged { states } = &mut self.backing {
            if let PageState::Resident { pfn, .. } = states[index as usize] {
                let slot = phys.swap_out(pfn);
                states[index as usize] = PageState::Swapped { slot };
                return Some(slot);
            }
        }
        None
    }

    /// Makes page `index` resident, allocating or swapping in as needed,
    /// and sets its referenced bit. Returns the backing frame and how the
    /// page was produced (so the caller can charge the right cycle cost).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfFrames`] when no frame is available; the
    /// page state is unchanged so the fault can be retried after reclaim.
    pub fn fault_in_page(
        &mut self,
        index: u64,
        phys: &mut PhysMem,
    ) -> Result<(Pfn, PageSource), MemError> {
        assert!(index < self.pages, "page {index} beyond object");
        match &mut self.backing {
            Backing::Contiguous { base } => Ok((Pfn(base.0 + index), PageSource::AlreadyResident)),
            Backing::Paged { states } => match states[index as usize] {
                PageState::Resident { pfn, .. } => {
                    states[index as usize] = PageState::Resident {
                        pfn,
                        referenced: true,
                    };
                    Ok((pfn, PageSource::AlreadyResident))
                }
                PageState::Zero => {
                    let pfn = phys.alloc_frame()?;
                    states[index as usize] = PageState::Resident {
                        pfn,
                        referenced: true,
                    };
                    Ok((pfn, PageSource::ZeroFill))
                }
                PageState::Swapped { slot } => {
                    let pfn = phys.swap_in(slot)?;
                    states[index as usize] = PageState::Resident {
                        pfn,
                        referenced: true,
                    };
                    Ok((pfn, PageSource::SwappedIn))
                }
            },
        }
    }

    /// Increments the mapping reference count.
    pub fn add_ref(&mut self) {
        self.refs += 1;
    }

    /// Decrements the mapping reference count; returns the new count.
    pub fn drop_ref(&mut self) -> u64 {
        self.refs = self.refs.saturating_sub(1);
        self.refs
    }

    /// Current reference count.
    pub fn refs(&self) -> u64 {
        self.refs
    }

    /// Marks the object as outliving its mappers (segment backing).
    pub fn set_pinned(&mut self, pinned: bool) {
        self.pinned = pinned;
        if pinned {
            self.swappable = false;
        }
    }

    /// Whether the object's frames are locked in memory.
    pub fn pinned(&self) -> bool {
        self.pinned
    }

    /// Marks the object as upper-layer-managed: process teardown will not
    /// free it even at zero references. Unlike [`Self::set_pinned`], this
    /// does not lock the frames — swappable segments use it so their
    /// backing survives detach while staying reclaimable.
    pub fn set_preserved(&mut self, preserved: bool) {
        self.preserved = preserved;
    }

    /// Whether the object survives process teardown at zero references.
    pub fn persistent(&self) -> bool {
        self.pinned || self.preserved
    }

    /// Marks the object's pages as eviction candidates. Ignored for
    /// pinned objects ("reserved at the time a segment is created, and
    /// are not swappable").
    pub fn set_swappable(&mut self, swappable: bool) {
        self.swappable = swappable && !self.pinned;
    }

    /// Whether the reclaim scan may evict this object's pages.
    pub fn swappable(&self) -> bool {
        self.swappable
    }

    /// The process charged for this object's memory, if any.
    pub fn owner(&self) -> Option<Pid> {
        self.owner
    }

    /// Charges this object's memory to `pid` (quota and OOM accounting).
    pub fn set_owner(&mut self, owner: Option<Pid>) {
        self.owner = owner;
    }

    /// Records a cached page-table subtree for fast reattachment.
    pub fn set_cached_subtree(&mut self, root: Pfn, pml4_slot: usize) {
        self.cached_subtree = Some((root, pml4_slot));
    }

    /// The cached subtree, if one was built.
    pub fn cached_subtree(&self) -> Option<(Pfn, usize)> {
        self.cached_subtree
    }

    /// Releases the backing frames and swap slots. Call only when
    /// unreferenced.
    pub fn free(self, phys: &mut PhysMem) {
        match self.backing {
            Backing::Contiguous { base } => {
                for i in 0..self.pages {
                    phys.free_frame(Pfn(base.0 + i));
                }
            }
            Backing::Paged { states } => {
                for s in states {
                    match s {
                        PageState::Resident { pfn, .. } => phys.free_frame(pfn),
                        PageState::Swapped { slot } => phys.discard_swap_slot(slot),
                        PageState::Zero => {}
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_rounds_to_pages() {
        let mut phys = PhysMem::new(1 << 20);
        let obj = VmObject::alloc(&mut phys, VmObjectId(1), 5000).unwrap();
        assert_eq!(obj.pages(), 2);
        assert_eq!(obj.len(), 8192);
        assert!(!obj.is_empty());
        assert!(obj.is_contiguous());
    }

    #[test]
    fn aligned_alloc_is_naturally_aligned() {
        let mut phys = PhysMem::new(32 << 20);
        phys.alloc_frame().unwrap(); // misalign the bump pointer
        let obj = VmObject::alloc_aligned(&mut phys, VmObjectId(1), 2 << 20, 2 << 20).unwrap();
        assert!(obj.is_contiguous());
        assert_eq!(obj.base().raw() % (2 << 20), 0);
        assert_eq!(obj.pages(), 512);
        assert!(
            VmObject::alloc_aligned(&mut phys, VmObjectId(2), 1 << 30, 1 << 30).is_err(),
            "no 1 GiB range in a 32 MiB machine"
        );
    }

    #[test]
    fn zero_length_rejected() {
        let mut phys = PhysMem::new(1 << 20);
        assert!(VmObject::alloc(&mut phys, VmObjectId(1), 0).is_err());
        assert!(VmObject::alloc_demand(VmObjectId(1), 0).is_err());
    }

    #[test]
    fn pa_math() {
        let mut phys = PhysMem::new(1 << 20);
        let obj = VmObject::alloc(&mut phys, VmObjectId(1), 4 * PAGE_SIZE).unwrap();
        assert_eq!(obj.pa(PAGE_SIZE + 8), obj.base().add(PAGE_SIZE + 8));
    }

    #[test]
    #[should_panic(expected = "beyond object")]
    fn pa_bounds_checked() {
        let mut phys = PhysMem::new(1 << 20);
        let obj = VmObject::alloc(&mut phys, VmObjectId(1), PAGE_SIZE).unwrap();
        let _ = obj.pa(PAGE_SIZE);
    }

    #[test]
    fn refcounting() {
        let mut phys = PhysMem::new(1 << 20);
        let mut obj = VmObject::alloc(&mut phys, VmObjectId(1), PAGE_SIZE).unwrap();
        obj.add_ref();
        obj.add_ref();
        assert_eq!(obj.refs(), 2);
        assert_eq!(obj.drop_ref(), 1);
        assert_eq!(obj.drop_ref(), 0);
        assert_eq!(obj.drop_ref(), 0, "saturates at zero");
    }

    #[test]
    fn free_returns_frames() {
        let mut phys = PhysMem::new(1 << 20);
        let before = phys.allocated_frames();
        let obj = VmObject::alloc(&mut phys, VmObjectId(1), 8 * PAGE_SIZE).unwrap();
        assert_eq!(phys.allocated_frames(), before + 8);
        obj.free(&mut phys);
        assert_eq!(phys.allocated_frames(), before);
    }

    #[test]
    fn cached_subtree_bookkeeping() {
        let mut phys = PhysMem::new(1 << 20);
        let mut obj = VmObject::alloc(&mut phys, VmObjectId(1), PAGE_SIZE).unwrap();
        assert!(obj.cached_subtree().is_none());
        obj.set_cached_subtree(Pfn(99), 3);
        assert_eq!(obj.cached_subtree(), Some((Pfn(99), 3)));
    }

    #[test]
    fn demand_object_materializes_on_fault() {
        let mut phys = PhysMem::new(1 << 20);
        let mut obj = VmObject::alloc_demand(VmObjectId(1), 3 * PAGE_SIZE).unwrap();
        assert!(!obj.is_contiguous());
        assert_eq!(obj.resident_pages(), 0);
        assert_eq!(phys.allocated_frames(), 0);
        let (pfn, src) = obj.fault_in_page(1, &mut phys).unwrap();
        assert_eq!(src, PageSource::ZeroFill);
        assert_eq!(obj.resident_pages(), 1);
        assert_eq!(obj.frame_of_page(1), Some(pfn));
        assert_eq!(obj.frame_of_page(0), None);
        let (_, again) = obj.fault_in_page(1, &mut phys).unwrap();
        assert_eq!(again, PageSource::AlreadyResident);
    }

    #[test]
    fn evict_and_fault_back_round_trip() {
        let mut phys = PhysMem::new(1 << 20);
        let mut obj = VmObject::alloc_demand(VmObjectId(1), 2 * PAGE_SIZE).unwrap();
        let (pfn, _) = obj.fault_in_page(0, &mut phys).unwrap();
        phys.write_u64(pfn.base().add(32), 0xabc).unwrap();
        let slot = obj.evict_page(0, &mut phys).unwrap();
        assert_eq!(obj.resident_pages(), 0);
        assert_eq!(obj.swapped_pages(), 1);
        assert_eq!(obj.page_state(0), PageState::Swapped { slot });
        let (back, src) = obj.fault_in_page(0, &mut phys).unwrap();
        assert_eq!(src, PageSource::SwappedIn);
        assert_eq!(phys.read_u64(back.base().add(32)).unwrap(), 0xabc);
        assert_eq!(obj.swapped_pages(), 0);
    }

    #[test]
    fn second_chance_reference_bit() {
        let mut phys = PhysMem::new(1 << 20);
        let mut obj = VmObject::alloc_demand(VmObjectId(1), PAGE_SIZE).unwrap();
        obj.fault_in_page(0, &mut phys).unwrap();
        assert!(obj.take_reference(0), "fresh pages get a second chance");
        assert!(!obj.take_reference(0), "bit cleared by first pass");
        obj.fault_in_page(0, &mut phys).unwrap();
        assert!(obj.take_reference(0), "refault re-references");
    }

    #[test]
    fn make_paged_preserves_frames() {
        let mut phys = PhysMem::new(1 << 20);
        let mut obj = VmObject::alloc(&mut phys, VmObjectId(1), 3 * PAGE_SIZE).unwrap();
        let base = obj.base();
        obj.make_paged();
        assert!(!obj.is_contiguous());
        assert_eq!(obj.resident_pages(), 3);
        assert_eq!(obj.pa(PAGE_SIZE + 4), base.add(PAGE_SIZE + 4));
    }

    #[test]
    fn pinned_objects_are_never_swappable() {
        let mut phys = PhysMem::new(1 << 20);
        let mut obj = VmObject::alloc(&mut phys, VmObjectId(1), PAGE_SIZE).unwrap();
        obj.set_pinned(true);
        obj.set_swappable(true);
        assert!(!obj.swappable());
        obj.set_pinned(false);
        obj.set_swappable(true);
        assert!(obj.swappable());
        obj.set_pinned(true);
        assert!(!obj.swappable(), "pinning clears swappability");
    }

    #[test]
    fn preserved_objects_survive_without_pinning() {
        let mut phys = PhysMem::new(1 << 20);
        let mut obj = VmObject::alloc_demand(VmObjectId(1), PAGE_SIZE).unwrap();
        assert!(!obj.persistent());
        obj.set_preserved(true);
        obj.set_swappable(true);
        assert!(obj.persistent() && obj.swappable() && !obj.pinned());
        obj.set_preserved(false);
        obj.set_pinned(true);
        assert!(obj.persistent(), "pinning alone also preserves");
        let _ = &mut phys;
    }

    #[test]
    fn alloc_falls_back_to_paged_after_fragmentation() {
        // 5-frame machine (frame 0 reserved): burn the bump region, free
        // the frames, then a 3-page allocation must come from the free
        // list as a paged object.
        let mut pm = PhysMem::new(5 * PAGE_SIZE);
        let a = pm.alloc_contiguous(4).unwrap();
        for i in 0..4 {
            pm.free_frame(Pfn(a.0 + i));
        }
        let obj = VmObject::alloc(&mut pm, VmObjectId(1), 3 * PAGE_SIZE).unwrap();
        assert!(!obj.is_contiguous(), "bump region exhausted");
        assert_eq!(obj.resident_pages(), 3);
        assert!(VmObject::alloc(&mut pm, VmObjectId(2), 2 * PAGE_SIZE).is_err());
        obj.free(&mut pm);
        assert_eq!(pm.allocated_frames(), 0);
    }

    #[test]
    fn freeing_swapped_object_releases_slots() {
        let mut phys = PhysMem::new(1 << 20);
        let mut obj = VmObject::alloc_demand(VmObjectId(1), 2 * PAGE_SIZE).unwrap();
        obj.fault_in_page(0, &mut phys).unwrap();
        obj.fault_in_page(1, &mut phys).unwrap();
        obj.evict_page(0, &mut phys).unwrap();
        assert_eq!(phys.swap_slots_used(), 1);
        obj.free(&mut phys);
        assert_eq!(phys.swap_slots_used(), 0);
        assert_eq!(phys.allocated_frames(), 0);
    }
}
