//! BSD-style VM objects: the storage abstraction behind every mapping.
//!
//! The DragonFly BSD memory subsystem derives from Mach: each mapping's
//! region descriptor references a *VM object* which owns the physical
//! pages (Section 4.1). "A SpaceJMP segment is a wrapper around such an
//! object, backed only by physical memory, additionally containing global
//! identifiers (e.g., a name), and protection state. Physical pages are
//! reserved at the time a segment is created, and are not swappable."
//!
//! Our VM objects are physically contiguous, which matches the
//! reservation-at-creation policy and keeps the virtual-to-physical math
//! trivial (`pa = base + offset`). Sparse host materialization (see
//! [`sjmp_mem::phys::PhysMem`]) keeps even terabyte-sized objects cheap.

use sjmp_mem::{MemError, Pfn, PhysAddr, PhysMem, PAGE_SIZE};

/// Identifier of a VM object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VmObjectId(pub u64);

/// A physically-backed memory object.
#[derive(Debug, Clone)]
pub struct VmObject {
    id: VmObjectId,
    base: Pfn,
    pages: u64,
    /// Number of vmspace regions currently referencing this object.
    refs: u64,
    /// A PML4 slot holding cached translations for this object, if the
    /// kernel has built them ("a segment may contain a set of cached
    /// translations to accelerate attachment to an address space").
    cached_subtree: Option<(Pfn, usize)>,
    /// Pinned objects outlive the processes mapping them (SpaceJMP
    /// segments: "physical pages are reserved at the time a segment is
    /// created"). Unpinned objects are process-private and are reclaimed
    /// when process teardown drops their last mapping reference.
    pinned: bool,
}

impl VmObject {
    /// Allocates a new object of `len` bytes (rounded up to whole pages).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfFrames`] when physical memory is exhausted
    /// and `InvalidArgument`-style `BadMapping` for a zero length.
    pub fn alloc(phys: &mut PhysMem, id: VmObjectId, len: u64) -> Result<Self, MemError> {
        if len == 0 {
            return Err(MemError::BadMapping(sjmp_mem::VirtAddr::NULL));
        }
        let pages = len.div_ceil(PAGE_SIZE);
        let base = phys.alloc_contiguous(pages)?;
        Ok(VmObject {
            id,
            base,
            pages,
            refs: 0,
            cached_subtree: None,
            pinned: false,
        })
    }

    /// Allocates a new object of `len` bytes from the NVM tier.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfFrames`] if no NVM tier exists or it is full.
    pub fn alloc_nvm(phys: &mut PhysMem, id: VmObjectId, len: u64) -> Result<Self, MemError> {
        if len == 0 {
            return Err(MemError::BadMapping(sjmp_mem::VirtAddr::NULL));
        }
        let pages = len.div_ceil(PAGE_SIZE);
        let base = phys.alloc_contiguous_nvm(pages)?;
        Ok(VmObject {
            id,
            base,
            pages,
            refs: 0,
            cached_subtree: None,
            pinned: false,
        })
    }

    /// The object's id.
    pub fn id(&self) -> VmObjectId {
        self.id
    }

    /// First physical address of the backing range.
    pub fn base(&self) -> PhysAddr {
        self.base.base()
    }

    /// Size in pages.
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// Size in bytes.
    pub fn len(&self) -> u64 {
        self.pages * PAGE_SIZE
    }

    /// Whether the object holds zero pages (never true for live objects).
    pub fn is_empty(&self) -> bool {
        self.pages == 0
    }

    /// Physical address of byte `offset` within the object.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is out of bounds.
    pub fn pa(&self, offset: u64) -> PhysAddr {
        assert!(
            offset < self.len(),
            "offset {offset} beyond object of {} bytes",
            self.len()
        );
        self.base().add(offset)
    }

    /// Increments the mapping reference count.
    pub fn add_ref(&mut self) {
        self.refs += 1;
    }

    /// Decrements the mapping reference count; returns the new count.
    pub fn drop_ref(&mut self) -> u64 {
        self.refs = self.refs.saturating_sub(1);
        self.refs
    }

    /// Current reference count.
    pub fn refs(&self) -> u64 {
        self.refs
    }

    /// Marks the object as outliving its mappers (segment backing).
    pub fn set_pinned(&mut self, pinned: bool) {
        self.pinned = pinned;
    }

    /// Whether the object survives process teardown at zero references.
    pub fn pinned(&self) -> bool {
        self.pinned
    }

    /// Records a cached page-table subtree for fast reattachment.
    pub fn set_cached_subtree(&mut self, root: Pfn, pml4_slot: usize) {
        self.cached_subtree = Some((root, pml4_slot));
    }

    /// The cached subtree, if one was built.
    pub fn cached_subtree(&self) -> Option<(Pfn, usize)> {
        self.cached_subtree
    }

    /// Releases the backing frames. Call only when unreferenced.
    pub fn free(self, phys: &mut PhysMem) {
        for i in 0..self.pages {
            phys.free_frame(Pfn(self.base.0 + i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_rounds_to_pages() {
        let mut phys = PhysMem::new(1 << 20);
        let obj = VmObject::alloc(&mut phys, VmObjectId(1), 5000).unwrap();
        assert_eq!(obj.pages(), 2);
        assert_eq!(obj.len(), 8192);
        assert!(!obj.is_empty());
    }

    #[test]
    fn zero_length_rejected() {
        let mut phys = PhysMem::new(1 << 20);
        assert!(VmObject::alloc(&mut phys, VmObjectId(1), 0).is_err());
    }

    #[test]
    fn pa_math() {
        let mut phys = PhysMem::new(1 << 20);
        let obj = VmObject::alloc(&mut phys, VmObjectId(1), 4 * PAGE_SIZE).unwrap();
        assert_eq!(obj.pa(PAGE_SIZE + 8), obj.base().add(PAGE_SIZE + 8));
    }

    #[test]
    #[should_panic(expected = "beyond object")]
    fn pa_bounds_checked() {
        let mut phys = PhysMem::new(1 << 20);
        let obj = VmObject::alloc(&mut phys, VmObjectId(1), PAGE_SIZE).unwrap();
        let _ = obj.pa(PAGE_SIZE);
    }

    #[test]
    fn refcounting() {
        let mut phys = PhysMem::new(1 << 20);
        let mut obj = VmObject::alloc(&mut phys, VmObjectId(1), PAGE_SIZE).unwrap();
        obj.add_ref();
        obj.add_ref();
        assert_eq!(obj.refs(), 2);
        assert_eq!(obj.drop_ref(), 1);
        assert_eq!(obj.drop_ref(), 0);
        assert_eq!(obj.drop_ref(), 0, "saturates at zero");
    }

    #[test]
    fn free_returns_frames() {
        let mut phys = PhysMem::new(1 << 20);
        let before = phys.allocated_frames();
        let obj = VmObject::alloc(&mut phys, VmObjectId(1), 8 * PAGE_SIZE).unwrap();
        assert_eq!(phys.allocated_frames(), before + 8);
        obj.free(&mut phys);
        assert_eq!(phys.allocated_frames(), before);
    }

    #[test]
    fn cached_subtree_bookkeeping() {
        let mut phys = PhysMem::new(1 << 20);
        let mut obj = VmObject::alloc(&mut phys, VmObjectId(1), PAGE_SIZE).unwrap();
        assert!(obj.cached_subtree().is_none());
        obj.set_cached_subtree(Pfn(99), 3);
        assert_eq!(obj.cached_subtree(), Some((Pfn(99), 3)));
    }
}
