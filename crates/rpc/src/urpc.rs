//! URPC: polled, cache-line-granular shared-memory channels.
//!
//! The paper's Figure 7 compares `vas_switch`-based data access against
//! Barrelfish's low-latency user-space RPC, where "both client and server
//! busy-wait polling different circular buffers of cache-line-sized
//! messages in a manner similar to FastForward." This module reproduces
//! that channel: a bounded ring of 64-byte lines, one direction per ring,
//! with transfer costs depending on whether producer and consumer share a
//! socket (`URPC L` vs `URPC X` in the figure).
//!
//! Each endpoint is pinned to a hardware thread and charges its own core
//! clock in a shared [`CoreClocks`] set: the producer pays the stores into
//! the shared lines, and the polling consumer — which cannot observe a
//! line before it is written — first spins forward to the moment the
//! message became visible, then pays the coherence transfers to pull it.

use std::collections::VecDeque;

use sjmp_mem::cost::{CoreClocks, CoreCtx, CostModel};
use sjmp_trace::{EventKind, Tracer};

/// Cache line size of the simulated machines.
pub const CACHE_LINE: usize = 64;
/// Payload bytes per line (one word is reserved for the presence flag and
/// sequence number, as in FastForward).
pub const LINE_PAYLOAD: usize = CACHE_LINE - 8;

/// Relative placement of the two endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Same socket: lines move through the shared LLC.
    IntraSocket,
    /// Different sockets: lines cross the interconnect.
    CrossSocket,
}

/// Errors from channel operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcError {
    /// The ring is full; the producer must back off and poll.
    ChannelFull,
    /// Message exceeds the channel's maximum size.
    TooLarge,
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::ChannelFull => write!(f, "channel ring is full"),
            RpcError::TooLarge => write!(f, "message exceeds channel capacity"),
        }
    }
}

impl std::error::Error for RpcError {}

/// Channel statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Messages sent.
    pub sent: u64,
    /// Messages received.
    pub received: u64,
    /// Cache lines transferred.
    pub lines: u64,
    /// Producer stalls on a full ring.
    pub stalls: u64,
}

impl ChannelStats {
    /// Counters accumulated since `earlier` (an older snapshot of the
    /// same channel), for phase measurements.
    pub fn delta_since(&self, earlier: &ChannelStats) -> ChannelStats {
        ChannelStats {
            sent: self.sent - earlier.sent,
            received: self.received - earlier.received,
            lines: self.lines - earlier.lines,
            stalls: self.stalls - earlier.stalls,
        }
    }
}

/// One direction of a URPC channel, producer and consumer each pinned to
/// a hardware thread.
///
/// # Examples
///
/// ```
/// use sjmp_mem::cost::{CoreClocks, CoreCtx, CostModel};
/// use sjmp_rpc::urpc::{Placement, UrpcChannel};
///
/// let clocks = CoreClocks::new(2);
/// let mut ch = UrpcChannel::new(64, Placement::IntraSocket,
///                               CostModel::default(), clocks.clone(),
///                               CoreCtx::new(0), CoreCtx::new(1));
/// ch.send(b"hello").unwrap();
/// assert_eq!(ch.recv().unwrap(), b"hello");
/// assert!(clocks.now() > 0, "transfers cost cycles");
/// ```
#[derive(Debug)]
pub struct UrpcChannel {
    /// Messages in flight, each with the cycle its last line became
    /// visible to the polling consumer.
    ring: VecDeque<(Vec<u8>, u64)>,
    capacity_lines: usize,
    used_lines: usize,
    placement: Placement,
    cost: CostModel,
    clocks: CoreClocks,
    producer: CoreCtx,
    consumer: CoreCtx,
    stats: ChannelStats,
    tracer: Tracer,
}

impl UrpcChannel {
    /// Creates a channel whose ring holds `capacity_lines` cache lines,
    /// written from `producer`'s core and polled from `consumer`'s.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_lines` is zero.
    pub fn new(
        capacity_lines: usize,
        placement: Placement,
        cost: CostModel,
        clocks: CoreClocks,
        producer: CoreCtx,
        consumer: CoreCtx,
    ) -> Self {
        assert!(capacity_lines > 0, "ring must hold at least one line");
        UrpcChannel {
            ring: VecDeque::new(),
            capacity_lines,
            used_lines: 0,
            placement,
            cost,
            clocks,
            producer,
            consumer,
            stats: ChannelStats::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// Installs a tracer; `RpcSend` spans land on the producer's core and
    /// `RpcRecv` spans on the consumer's.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Number of cache lines a message of `len` bytes occupies.
    pub fn lines_for(len: usize) -> usize {
        len.div_ceil(LINE_PAYLOAD).max(1)
    }

    /// Channel statistics.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Enqueues a message, charging the producer's core (stores into the
    /// shared lines plus fixed software overhead).
    ///
    /// # Errors
    ///
    /// * [`RpcError::TooLarge`] if the message exceeds the whole ring.
    /// * [`RpcError::ChannelFull`] if it does not fit right now.
    pub fn send(&mut self, msg: &[u8]) -> Result<(), RpcError> {
        let lines = Self::lines_for(msg.len());
        if lines > self.capacity_lines {
            return Err(RpcError::TooLarge);
        }
        if self.used_lines + lines > self.capacity_lines {
            self.stats.stalls += 1;
            return Err(RpcError::ChannelFull);
        }
        let p = self.producer.core;
        self.tracer.begin(
            self.clocks.now_on(p),
            p as u32,
            EventKind::RpcSend,
            lines as u64,
        );
        self.clocks.advance(
            p,
            self.cost.urpc_sw_overhead + lines as u64 * self.cost.cache_hit,
        );
        let ready = self.clocks.now_on(p);
        self.tracer
            .end(ready, p as u32, EventKind::RpcSend, lines as u64);
        self.used_lines += lines;
        self.ring.push_back((msg.to_vec(), ready));
        self.stats.sent += 1;
        self.stats.lines += lines as u64;
        Ok(())
    }

    /// Polls for the next message, charging the consumer's core: it spins
    /// until the message's lines are visible, then pays one coherence
    /// transfer per line.
    pub fn recv(&mut self) -> Option<Vec<u8>> {
        let (msg, ready) = self.ring.pop_front()?;
        let lines = Self::lines_for(msg.len());
        self.used_lines -= lines;
        let per_line = self
            .cost
            .cacheline_transfer(self.placement == Placement::CrossSocket);
        let c = self.consumer.core;
        // The polling consumer cannot see the presence flag before the
        // producer's final store lands.
        self.clocks.catch_up(c, ready);
        self.tracer.begin(
            self.clocks.now_on(c),
            c as u32,
            EventKind::RpcRecv,
            lines as u64,
        );
        self.clocks
            .advance(c, self.cost.urpc_sw_overhead + lines as u64 * per_line);
        self.tracer.end(
            self.clocks.now_on(c),
            c as u32,
            EventKind::RpcRecv,
            lines as u64,
        );
        self.stats.received += 1;
        Some(msg)
    }

    /// Whether a message is waiting.
    pub fn has_message(&self) -> bool {
        !self.ring.is_empty()
    }
}

/// A bidirectional URPC endpoint pair built from two rings, with a
/// convenience round-trip used by the Figure 7 benchmark: the client
/// sends a request and waits for the server's reply of `resp_len` bytes.
#[derive(Debug)]
pub struct UrpcPair {
    /// Client-to-server ring.
    pub to_server: UrpcChannel,
    /// Server-to-client ring.
    pub to_client: UrpcChannel,
}

impl UrpcPair {
    /// Creates a pair of rings with the same geometry and placement,
    /// connecting the `client`'s core to the `server`'s.
    pub fn new(
        capacity_lines: usize,
        placement: Placement,
        cost: CostModel,
        clocks: CoreClocks,
        client: CoreCtx,
        server: CoreCtx,
    ) -> Self {
        UrpcPair {
            to_server: UrpcChannel::new(
                capacity_lines,
                placement,
                cost.clone(),
                clocks.clone(),
                client,
                server,
            ),
            to_client: UrpcChannel::new(capacity_lines, placement, cost, clocks, server, client),
        }
    }

    /// Installs a tracer on both rings.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.to_server.set_tracer(tracer.clone());
        self.to_client.set_tracer(tracer);
    }

    /// Performs one RPC exchange: request out, response back. The server
    /// side is simulated inline (it echoes a response of `resp_len`
    /// bytes), so the cycles charged cover the full round trip across
    /// both cores.
    ///
    /// # Errors
    ///
    /// Ring-capacity errors from either direction.
    pub fn round_trip(&mut self, req: &[u8], resp_len: usize) -> Result<Vec<u8>, RpcError> {
        self.to_server.send(req)?;
        let _req = self.to_server.recv().expect("just sent");
        self.to_client.send(&vec![0u8; resp_len])?;
        Ok(self.to_client.recv().expect("just sent"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chan(lines: usize, p: Placement) -> (UrpcChannel, CoreClocks) {
        let clocks = CoreClocks::new(2);
        (
            UrpcChannel::new(
                lines,
                p,
                CostModel::default(),
                clocks.clone(),
                CoreCtx::new(0),
                CoreCtx::new(1),
            ),
            clocks,
        )
    }

    #[test]
    fn fifo_order_and_contents() {
        let (mut ch, _) = chan(64, Placement::IntraSocket);
        ch.send(b"one").unwrap();
        ch.send(b"two").unwrap();
        assert_eq!(ch.recv().unwrap(), b"one");
        assert_eq!(ch.recv().unwrap(), b"two");
        assert!(ch.recv().is_none());
    }

    #[test]
    fn line_accounting() {
        assert_eq!(UrpcChannel::lines_for(0), 1);
        assert_eq!(UrpcChannel::lines_for(56), 1);
        assert_eq!(UrpcChannel::lines_for(57), 2);
        assert_eq!(UrpcChannel::lines_for(4096), 74);
    }

    #[test]
    fn backpressure_when_full() {
        let (mut ch, _) = chan(2, Placement::IntraSocket);
        ch.send(&[0; 56]).unwrap();
        ch.send(&[0; 56]).unwrap();
        assert_eq!(ch.send(&[0; 1]), Err(RpcError::ChannelFull));
        assert_eq!(ch.stats().stalls, 1);
        ch.recv().unwrap();
        ch.send(&[0; 1]).unwrap();
        assert_eq!(ch.send(&[0; 200]), Err(RpcError::TooLarge));
    }

    #[test]
    fn cross_socket_costs_more() {
        let (mut local, clocks_l) = chan(256, Placement::IntraSocket);
        let (mut cross, clocks_x) = chan(256, Placement::CrossSocket);
        local.send(&[0; 4096]).unwrap();
        local.recv().unwrap();
        cross.send(&[0; 4096]).unwrap();
        cross.recv().unwrap();
        assert!(clocks_x.now() > clocks_l.now(), "interconnect dominates");
    }

    #[test]
    fn larger_messages_cost_more() {
        let (mut ch, clocks) = chan(4096, Placement::IntraSocket);
        ch.send(&[0; 64]).unwrap();
        ch.recv().unwrap();
        let small = clocks.now();
        ch.send(&[0; 65536]).unwrap();
        ch.recv().unwrap();
        let large = clocks.now() - small;
        assert!(large > small * 10);
    }

    #[test]
    fn producer_and_consumer_charge_their_own_cores() {
        let (mut ch, clocks) = chan(256, Placement::IntraSocket);
        ch.send(&[0; 4096]).unwrap();
        let sent = clocks.now_on(0);
        assert!(sent > 0, "producer pays the stores");
        assert_eq!(clocks.now_on(1), 0, "consumer idle until it polls");
        ch.recv().unwrap();
        assert_eq!(clocks.now_on(0), sent, "recv never charges the producer");
        assert!(
            clocks.now_on(1) > sent,
            "consumer spins to visibility, then pays the transfers"
        );
    }

    #[test]
    fn round_trip_pair() {
        let clocks = CoreClocks::new(2);
        let mut pair = UrpcPair::new(
            4096,
            Placement::IntraSocket,
            CostModel::default(),
            clocks.clone(),
            CoreCtx::new(0),
            CoreCtx::new(1),
        );
        let resp = pair.round_trip(&[1; 8], 64).unwrap();
        assert_eq!(resp.len(), 64);
        assert_eq!(pair.to_server.stats().sent, 1);
        assert_eq!(pair.to_client.stats().received, 1);
        assert!(clocks.now() > 0);
    }
}
