//! # sjmp-rpc — communication substrates SpaceJMP is compared against
//!
//! The paper evaluates address-space switching against three classical
//! communication mechanisms, all reproduced here with the calibrated cost
//! model of [`sjmp_mem::cost`]:
//!
//! * [`urpc`] — Barrelfish's polled cache-line URPC channels (`URPC L` /
//!   `URPC X` in Figure 7);
//! * [`mp`] — the OpenMPI-style master/slave message passing of the GUPS
//!   "MP" design (Figure 8), including the busy-wait oversubscription
//!   collapse past the machine's core count;
//! * [`socket`] — UNIX-domain-socket request/response, the baseline Redis
//!   transport (Figure 10).

pub mod mp;
pub mod socket;
pub mod urpc;

pub use mp::{MpCluster, MpStats};
pub use socket::{SimSocket, SocketStats};
pub use urpc::{Placement, RpcError, UrpcChannel, UrpcPair, CACHE_LINE, LINE_PAYLOAD};
