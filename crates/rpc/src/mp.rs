//! Message-passing cluster model: the OpenMPI stand-in for GUPS "MP".
//!
//! In the paper's multi-process GUPS design (Section 5.2), "one process
//! acts as master and the rest as slaves, whereby the master process sends
//! RPC messages using OpenMPI to the slave process holding the appropriate
//! portion of physical memory. It then blocks, waiting for the slave to
//! apply the batch of updates." Each process is pinned to a core, and "at
//! greater than 36 cores on M3, the performance of MP drops, due to the
//! busy-wait characteristics \[of\] the OpenMPI implementation."
//!
//! [`MpCluster`] models exactly those costs: per-message marshalling and
//! transfer (intra- or cross-socket depending on the slave's pinning) plus
//! an oversubscription penalty once there are more processes than cores.

use sjmp_mem::cost::{CostModel, CycleClock, MachineProfile};
use sjmp_trace::{EventKind, Tracer};

/// Per-exchange statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MpStats {
    /// Request/response exchanges completed.
    pub exchanges: u64,
    /// Total payload bytes moved.
    pub bytes: u64,
}

/// A master plus `slaves` worker processes, each pinned to a core.
///
/// # Examples
///
/// ```
/// use sjmp_mem::cost::{CostModel, CycleClock, Machine, MachineProfile};
/// use sjmp_rpc::MpCluster;
///
/// let clock = CycleClock::new();
/// let mut cluster = MpCluster::new(4, MachineProfile::of(Machine::M3),
///                                  CostModel::default(), clock.clone());
/// cluster.exchange(2, 512); // ship a 512-byte batch to slave 2
/// assert!(clock.now() > 0, "the blocking round trip costs cycles");
/// ```
#[derive(Debug)]
pub struct MpCluster {
    slaves: usize,
    profile: MachineProfile,
    cost: CostModel,
    clock: CycleClock,
    stats: MpStats,
    tracer: Tracer,
    /// Marshalling cost per message (serializing the update batch).
    pub marshal_per_msg: u64,
    /// Extra cost factor once processes exceed cores (busy-wait churn).
    pub oversub_penalty: u64,
}

impl MpCluster {
    /// Creates a cluster of one master and `slaves` slaves on `profile`.
    pub fn new(slaves: usize, profile: MachineProfile, cost: CostModel, clock: CycleClock) -> Self {
        MpCluster {
            slaves,
            profile,
            cost,
            clock,
            stats: MpStats::default(),
            tracer: Tracer::disabled(),
            marshal_per_msg: 600,
            oversub_penalty: 4000,
        }
    }

    /// Installs a tracer; each exchange becomes an `RpcSend` span.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Number of slave processes.
    pub fn slaves(&self) -> usize {
        self.slaves
    }

    /// Statistics so far.
    pub fn stats(&self) -> MpStats {
        self.stats
    }

    /// Whether slave `idx` sits on a different socket than the master
    /// (core 0). Processes are striped across sockets like the paper's
    /// pinning.
    fn cross_socket(&self, slave: usize) -> bool {
        let cores_per_socket = self.profile.cores_per_socket as usize;
        !((slave + 1) / cores_per_socket).is_multiple_of(self.profile.sockets as usize)
    }

    /// One synchronous exchange with `slave`: a request of `req_bytes`
    /// and an acknowledgment, blocking the master until done. Charges the
    /// full round trip to the shared clock.
    pub fn exchange(&mut self, slave: usize, req_bytes: usize) {
        debug_assert!(slave < self.slaves, "slave index out of range");
        let lines = (req_bytes.div_ceil(64).max(1)) as u64 + 1; // + ack line
        let per_line = self.cost.cacheline_transfer(self.cross_socket(slave));
        let mut cycles = 2 * self.marshal_per_msg + lines * per_line;
        // More processes than cores: the slave may not be running when the
        // message arrives; busy-wait scheduling churn adds latency.
        let total_procs = self.slaves + 1;
        let cores = self.profile.total_cores() as usize;
        if total_procs > cores {
            let over = (total_procs - cores) as u64;
            cycles += self.oversub_penalty * over.min(64);
        }
        self.tracer
            .begin(self.clock.now(), 0, EventKind::RpcSend, slave as u64);
        self.clock.advance(cycles);
        self.tracer
            .end(self.clock.now(), 0, EventKind::RpcSend, slave as u64);
        self.stats.exchanges += 1;
        self.stats.bytes += req_bytes as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjmp_mem::cost::Machine;

    fn cluster(slaves: usize) -> (MpCluster, CycleClock) {
        let clock = CycleClock::new();
        let c = MpCluster::new(
            slaves,
            MachineProfile::of(Machine::M3),
            CostModel::default(),
            clock.clone(),
        );
        (c, clock)
    }

    #[test]
    fn exchange_costs_cycles() {
        let (mut c, clock) = cluster(4);
        c.exchange(0, 128);
        assert!(clock.now() > 0);
        assert_eq!(c.stats().exchanges, 1);
        assert_eq!(c.stats().bytes, 128);
    }

    #[test]
    fn remote_slaves_cost_more() {
        let (mut c, clock) = cluster(35);
        c.exchange(0, 512); // same socket as master
        let local = clock.now();
        clock.reset();
        c.exchange(20, 512); // striped to the other socket
        let remote = clock.now();
        assert!(remote > local, "{remote} vs {local}");
    }

    #[test]
    fn oversubscription_penalty_kicks_in_past_core_count() {
        // M3 has 36 cores; 40 processes must pay the busy-wait penalty.
        let (mut small, clock_s) = cluster(30);
        small.exchange(0, 64);
        let fits = clock_s.now();
        let (mut big, clock_b) = cluster(64);
        big.exchange(0, 64);
        let oversub = clock_b.now();
        assert!(oversub > fits * 2, "{oversub} vs {fits}");
    }

    #[test]
    fn bigger_batches_cost_more() {
        let (mut c, clock) = cluster(4);
        c.exchange(0, 64);
        let small = clock.now();
        c.exchange(0, 64 * 64);
        let large = clock.now() - small;
        assert!(large > small);
    }
}
