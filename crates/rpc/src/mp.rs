//! Message-passing cluster model: the OpenMPI stand-in for GUPS "MP".
//!
//! In the paper's multi-process GUPS design (Section 5.2), "one process
//! acts as master and the rest as slaves, whereby the master process sends
//! RPC messages using OpenMPI to the slave process holding the appropriate
//! portion of physical memory. It then blocks, waiting for the slave to
//! apply the batch of updates." Each process is pinned to a core, and "at
//! greater than 36 cores on M3, the performance of MP drops, due to the
//! busy-wait characteristics \[of\] the OpenMPI implementation."
//!
//! [`MpCluster`] models exactly those costs on the per-core clocks of a
//! [`CoreClocks`] set: the master core pays marshalling, the request
//! transfer (intra- or cross-socket depending on the slave's pinning),
//! and the blocking wait for the acknowledgment; the slave core catches
//! up to the request's arrival, pays unmarshalling, applies the batch
//! (charged by the caller between [`MpCluster::send_batch`] and
//! [`MpCluster::complete`]), and sends the ack. Oversubscription past the
//! machine's core count is charged to the blocked master (busy-wait
//! churn).

use sjmp_mem::cost::{CoreClocks, CoreCtx, CostModel, MachineProfile};
use sjmp_trace::{EventKind, Tracer};

/// Per-exchange statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MpStats {
    /// Request/response exchanges completed.
    pub exchanges: u64,
    /// Total payload bytes moved.
    pub bytes: u64,
}

/// A master plus `slaves` worker processes, each pinned to a core.
///
/// Slave `k` runs on hardware thread `(master.core + k + 1) % cores`, the
/// same striping the kernel uses when processes are spawned master-first
/// — with more processes than cores, several slaves share one.
///
/// # Examples
///
/// ```
/// use sjmp_mem::cost::{CoreClocks, CoreCtx, CostModel, MachineId, MachineProfile};
/// use sjmp_rpc::MpCluster;
///
/// let profile = MachineProfile::of(MachineId::M3);
/// let clocks = CoreClocks::new(profile.total_cores() as usize);
/// let mut cluster = MpCluster::new(4, profile, CostModel::default(),
///                                  clocks.clone(), CoreCtx::BOOT);
/// cluster.exchange(2, 512); // ship a 512-byte batch to slave 2
/// assert!(clocks.now() > 0, "the blocking round trip costs cycles");
/// ```
#[derive(Debug)]
pub struct MpCluster {
    slaves: usize,
    profile: MachineProfile,
    cost: CostModel,
    clocks: CoreClocks,
    master: CoreCtx,
    stats: MpStats,
    tracer: Tracer,
    /// Marshalling cost per message (serializing the update batch).
    pub marshal_per_msg: u64,
    /// Extra cost factor once processes exceed cores (busy-wait churn).
    pub oversub_penalty: u64,
}

impl MpCluster {
    /// Creates a cluster of one master (on `master`'s core) and `slaves`
    /// slaves on `profile`, charging the per-core `clocks`.
    pub fn new(
        slaves: usize,
        profile: MachineProfile,
        cost: CostModel,
        clocks: CoreClocks,
        master: CoreCtx,
    ) -> Self {
        MpCluster {
            slaves,
            profile,
            cost,
            clocks,
            master,
            stats: MpStats::default(),
            tracer: Tracer::disabled(),
            marshal_per_msg: 600,
            oversub_penalty: 4000,
        }
    }

    /// Installs a tracer; each exchange becomes an `RpcSend` span on the
    /// master's core and an `RpcRecv` span on the slave's.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Number of slave processes.
    pub fn slaves(&self) -> usize {
        self.slaves
    }

    /// The hardware thread slave `idx` is pinned to.
    pub fn slave_core(&self, slave: usize) -> usize {
        (self.master.core + slave + 1) % self.profile.total_cores() as usize
    }

    /// Statistics so far.
    pub fn stats(&self) -> MpStats {
        self.stats
    }

    /// Whether slave `idx` sits on a different socket than the master.
    /// Processes are striped across sockets like the paper's pinning.
    fn cross_socket(&self, slave: usize) -> bool {
        let cores_per_socket = self.profile.cores_per_socket as usize;
        !((slave + 1) / cores_per_socket).is_multiple_of(self.profile.sockets as usize)
    }

    /// Ships a `req_bytes` request to `slave`: the master core pays
    /// marshalling plus the line transfers, then the slave core catches
    /// up to the request's arrival and pays unmarshalling. Work charged
    /// to the slave's core between this call and [`Self::complete`]
    /// models the slave applying the batch.
    pub fn send_batch(&mut self, slave: usize, req_bytes: usize) {
        debug_assert!(slave < self.slaves, "slave index out of range");
        let lines = (req_bytes.div_ceil(64).max(1)) as u64;
        let per_line = self.cost.cacheline_transfer(self.cross_socket(slave));
        let m = self.master.core;
        self.tracer.begin(
            self.clocks.now_on(m),
            m as u32,
            EventKind::RpcSend,
            slave as u64,
        );
        self.clocks
            .advance(m, self.marshal_per_msg + lines * per_line);
        self.tracer.end(
            self.clocks.now_on(m),
            m as u32,
            EventKind::RpcSend,
            slave as u64,
        );
        // The request is visible to the slave once the last line lands.
        let s = self.slave_core(slave);
        self.clocks.catch_up(s, self.clocks.now_on(m));
        self.clocks.advance(s, self.marshal_per_msg);
        self.stats.bytes += req_bytes as u64;
    }

    /// Completes the exchange: the slave sends its acknowledgment line
    /// and the blocked master catches up to its arrival, paying the ack
    /// transfer plus any busy-wait oversubscription churn.
    pub fn complete(&mut self, slave: usize) {
        debug_assert!(slave < self.slaves, "slave index out of range");
        let per_line = self.cost.cacheline_transfer(self.cross_socket(slave));
        let s = self.slave_core(slave);
        let m = self.master.core;
        self.tracer.begin(
            self.clocks.now_on(s),
            s as u32,
            EventKind::RpcRecv,
            slave as u64,
        );
        self.tracer.end(
            self.clocks.now_on(s),
            s as u32,
            EventKind::RpcRecv,
            slave as u64,
        );
        // Master blocked for the ack; it resumes when the line arrives.
        self.clocks.catch_up(m, self.clocks.now_on(s));
        let mut cycles = per_line;
        // More processes than cores: the slave may not have been running
        // when the message arrived; busy-wait scheduling churn adds
        // latency on the blocked master.
        let total_procs = self.slaves + 1;
        let cores = self.profile.total_cores() as usize;
        if total_procs > cores {
            let over = (total_procs - cores) as u64;
            cycles += self.oversub_penalty * over.min(64);
        }
        self.clocks.advance(m, cycles);
        self.stats.exchanges += 1;
    }

    /// One synchronous exchange with `slave`: request out, batch applied
    /// instantaneously, acknowledgment back ([`Self::send_batch`] then
    /// [`Self::complete`] with no slave-side work in between).
    pub fn exchange(&mut self, slave: usize, req_bytes: usize) {
        self.send_batch(slave, req_bytes);
        self.complete(slave);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjmp_mem::cost::MachineId;

    fn cluster(slaves: usize) -> (MpCluster, CoreClocks) {
        let profile = MachineProfile::of(MachineId::M3);
        let clocks = CoreClocks::new(profile.total_cores() as usize);
        let c = MpCluster::new(
            slaves,
            profile,
            CostModel::default(),
            clocks.clone(),
            CoreCtx::BOOT,
        );
        (c, clocks)
    }

    #[test]
    fn exchange_costs_cycles() {
        let (mut c, clocks) = cluster(4);
        c.exchange(0, 128);
        assert!(clocks.now() > 0);
        assert_eq!(c.stats().exchanges, 1);
        assert_eq!(c.stats().bytes, 128);
    }

    #[test]
    fn exchange_lands_on_master_and_slave_cores_only() {
        let (mut c, clocks) = cluster(4);
        c.exchange(2, 512);
        assert!(clocks.now_on(0) > 0, "master core pays the round trip");
        assert!(clocks.now_on(3) > 0, "slave 2 runs on core 3");
        assert_eq!(clocks.now_on(1), 0, "uninvolved cores stay idle");
        assert!(
            clocks.now_on(0) >= clocks.now_on(3),
            "the blocked master finishes after the slave's ack"
        );
    }

    #[test]
    fn remote_slaves_cost_more() {
        let (mut c, clocks) = cluster(35);
        c.exchange(0, 512); // same socket as master
        let local = clocks.now();
        clocks.reset();
        c.exchange(20, 512); // striped to the other socket
        let remote = clocks.now();
        assert!(remote > local, "{remote} vs {local}");
    }

    #[test]
    fn oversubscription_penalty_kicks_in_past_core_count() {
        // M3 has 36 cores; 40 processes must pay the busy-wait penalty.
        let (mut small, clocks_s) = cluster(30);
        small.exchange(0, 64);
        let fits = clocks_s.now();
        let (mut big, clocks_b) = cluster(64);
        big.exchange(0, 64);
        let oversub = clocks_b.now();
        assert!(oversub > fits * 2, "{oversub} vs {fits}");
    }

    #[test]
    fn bigger_batches_cost_more() {
        let (mut c, clocks) = cluster(4);
        c.exchange(0, 64);
        let small = clocks.now();
        c.exchange(0, 64 * 64);
        let large = clocks.now() - small;
        assert!(large > small);
    }
}
