//! Simulated UNIX-domain-socket channels.
//!
//! Baseline Redis clients "interact with Redis using UNIX domain or
//! TCP/IP sockets by sending commands" (Section 5.3). Each message on
//! this path pays a system call, a copy through the kernel socket buffer,
//! and a wakeup of the peer — the communication overhead RedisJMP elides
//! by switching into the server's address space instead.

use std::collections::VecDeque;

use sjmp_mem::cost::{CostModel, CycleClock};

/// Statistics for one socket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SocketStats {
    /// Messages written.
    pub writes: u64,
    /// Messages read.
    pub reads: u64,
    /// Payload bytes moved.
    pub bytes: u64,
}

/// A bidirectional, in-order datagram socket between a client and a
/// server, with per-message kernel costs charged to the shared clock.
#[derive(Debug)]
pub struct SimSocket {
    to_server: VecDeque<Vec<u8>>,
    to_client: VecDeque<Vec<u8>>,
    cost: CostModel,
    clock: CycleClock,
    stats: SocketStats,
}

impl SimSocket {
    /// Creates a connected socket pair.
    pub fn new(cost: CostModel, clock: CycleClock) -> Self {
        SimSocket {
            to_server: VecDeque::new(),
            to_client: VecDeque::new(),
            cost,
            clock,
            stats: SocketStats::default(),
        }
    }

    fn charge(&mut self, len: usize) {
        // Syscall + buffer copy (per 64-byte line) + peer wakeup.
        let lines = (len.div_ceil(64)).max(1) as u64;
        self.clock
            .advance(self.cost.socket_msg + lines * self.cost.cache_hit * 2);
        self.stats.bytes += len as u64;
    }

    /// Client -> server write.
    pub fn client_write(&mut self, msg: &[u8]) {
        self.charge(msg.len());
        self.stats.writes += 1;
        self.to_server.push_back(msg.to_vec());
    }

    /// Server -> client write.
    pub fn server_write(&mut self, msg: &[u8]) {
        self.charge(msg.len());
        self.stats.writes += 1;
        self.to_client.push_back(msg.to_vec());
    }

    /// Server-side read.
    pub fn server_read(&mut self) -> Option<Vec<u8>> {
        let m = self.to_server.pop_front()?;
        self.charge(m.len());
        self.stats.reads += 1;
        Some(m)
    }

    /// Client-side read.
    pub fn client_read(&mut self) -> Option<Vec<u8>> {
        let m = self.to_client.pop_front()?;
        self.charge(m.len());
        self.stats.reads += 1;
        Some(m)
    }

    /// Statistics so far.
    pub fn stats(&self) -> SocketStats {
        self.stats
    }

    /// Cycles one full request/response costs on this socket (4 message
    /// operations), for analytic throughput models.
    pub fn round_trip_cost(cost: &CostModel, req_len: usize, resp_len: usize) -> u64 {
        let lines = |l: usize| (l.div_ceil(64)).max(1) as u64;
        2 * (cost.socket_msg + lines(req_len) * cost.cache_hit * 2)
            + 2 * (cost.socket_msg + lines(resp_len) * cost.cache_hit * 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_response_flow() {
        let clock = CycleClock::new();
        let mut s = SimSocket::new(CostModel::default(), clock.clone());
        s.client_write(b"GET k");
        let req = s.server_read().unwrap();
        assert_eq!(req, b"GET k");
        s.server_write(b"$4 data");
        assert_eq!(s.client_read().unwrap(), b"$4 data");
        assert!(s.server_read().is_none());
        assert_eq!(s.stats().writes, 2);
        assert_eq!(s.stats().reads, 2);
        assert!(clock.now() >= 4 * CostModel::default().socket_msg);
    }

    #[test]
    fn round_trip_cost_matches_live_charging() {
        let clock = CycleClock::new();
        let cost = CostModel::default();
        let mut s = SimSocket::new(cost.clone(), clock.clone());
        s.client_write(&[0; 100]);
        s.server_read().unwrap();
        s.server_write(&[0; 20]);
        s.client_read().unwrap();
        assert_eq!(clock.now(), SimSocket::round_trip_cost(&cost, 100, 20));
    }

    #[test]
    fn socket_is_much_slower_than_a_switch() {
        // The premise of RedisJMP: two vas_switches (~2x1127 cycles)
        // beat four socket operations (~4x3500 cycles).
        let cost = CostModel::default();
        let socket = SimSocket::round_trip_cost(&cost, 32, 16);
        let switches = 2 * cost.vas_switch(sjmp_mem::KernelFlavor::DragonFly, false);
        assert!(socket > 3 * switches, "{socket} vs {switches}");
    }
}
