//! The one-block record format shared by the write-ahead journal and
//! the superblocks.
//!
//! Layout (little-endian, padded with zeros to the block size):
//!
//! ```text
//! bytes  0..8   magic ("SJMPJRN1" for journal, "SJMPDSK1" for superblock)
//! bytes  8..16  generation
//! bytes 16..24  payload start LBA
//! bytes 24..32  payload length in bytes
//! bytes 32..40  payload FNV-1a checksum
//! bytes 40..48  header FNV-1a checksum over bytes 0..40
//! ```
//!
//! The header checksum makes a torn record self-invalidating: recovery
//! simply discards any record whose checksum does not verify, then any
//! whose *payload* checksum does not verify, and commits to the highest
//! surviving generation.

use crate::checksum;

/// Magic for journal records.
pub const JOURNAL_MAGIC: &[u8; 8] = b"SJMPJRN1";
/// Magic for superblocks.
pub const SUPERBLOCK_MAGIC: &[u8; 8] = b"SJMPDSK1";

const RECORD_BYTES: usize = 48;

/// A decoded journal record or superblock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JournalRecord {
    /// Snapshot generation this record commits.
    pub generation: u64,
    /// First block of the payload region.
    pub payload_lba: u64,
    /// Payload length in bytes.
    pub payload_len: u64,
    /// FNV-1a checksum of the payload bytes.
    pub payload_sum: u64,
}

impl JournalRecord {
    /// Encodes the record into one zero-padded block.
    pub fn encode(&self, magic: &[u8; 8], block_size: u64) -> Vec<u8> {
        assert!(block_size as usize >= RECORD_BYTES, "block too small");
        let mut block = vec![0u8; block_size as usize];
        block[0..8].copy_from_slice(magic);
        block[8..16].copy_from_slice(&self.generation.to_le_bytes());
        block[16..24].copy_from_slice(&self.payload_lba.to_le_bytes());
        block[24..32].copy_from_slice(&self.payload_len.to_le_bytes());
        block[32..40].copy_from_slice(&self.payload_sum.to_le_bytes());
        let sum = checksum(&block[0..40]);
        block[40..48].copy_from_slice(&sum.to_le_bytes());
        block
    }

    /// Decodes a block; `None` if the magic or header checksum fails
    /// (torn, stale, or never-written records all land here).
    pub fn decode(magic: &[u8; 8], block: &[u8]) -> Option<JournalRecord> {
        if block.len() < RECORD_BYTES || &block[0..8] != magic {
            return None;
        }
        let stored = u64::from_le_bytes(block[40..48].try_into().unwrap());
        if stored != checksum(&block[0..40]) {
            return None;
        }
        let word = |at: usize| u64::from_le_bytes(block[at..at + 8].try_into().unwrap());
        Some(JournalRecord {
            generation: word(8),
            payload_lba: word(16),
            payload_len: word(24),
            payload_sum: word(32),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trips() {
        let rec = JournalRecord {
            generation: 7,
            payload_lba: 16,
            payload_len: 12345,
            payload_sum: checksum(b"payload"),
        };
        let block = rec.encode(JOURNAL_MAGIC, 512);
        assert_eq!(JournalRecord::decode(JOURNAL_MAGIC, &block), Some(rec));
        // Wrong magic family: a journal record never validates as a
        // superblock.
        assert_eq!(JournalRecord::decode(SUPERBLOCK_MAGIC, &block), None);
    }

    #[test]
    fn torn_record_self_invalidates() {
        let rec = JournalRecord {
            generation: 9,
            payload_lba: 16,
            payload_len: 4096,
            payload_sum: 42,
        };
        let mut block = rec.encode(SUPERBLOCK_MAGIC, 512);
        block[20] ^= 0xff;
        assert_eq!(JournalRecord::decode(SUPERBLOCK_MAGIC, &block), None);
        // All-zero (never written) blocks decode to nothing.
        assert_eq!(JournalRecord::decode(SUPERBLOCK_MAGIC, &[0u8; 512]), None);
    }
}
