//! # sjmp-blk — the simulated block device and crash-consistent snapshot store
//!
//! SpaceJMP's central claim is that a VAS is a first-class *persistent*
//! object that outlives the processes attached to it. This crate supplies
//! the storage substrate that makes persistence testable:
//!
//! * [`BlockDev`] — a sparse block device with power-of-two blocks and
//!   explicit **barrier/flush** semantics: writes land in a pending set
//!   and only [`BlockDev::flush`] makes them durable. A simulated
//!   [`BlockDev::crash`] discards everything pending, so recovery code
//!   is exercised against exactly the states a real power loss produces.
//! * [`JournalRecord`] — the one-block write-ahead journal / superblock
//!   record format (checksummed header + payload checksum).
//! * [`SnapshotStore`] — dual generation-stamped superblocks over
//!   double-buffered copy-on-write payload regions, committed through a
//!   write-ahead journal with flush barriers between each phase. After
//!   any crash, [`SnapshotStore::open`] recovers **exactly** the old or
//!   the new snapshot — never a torn hybrid.
//! * [`SwapDev`] — the page-granular swap device used by `sjmp-mem`'s
//!   physical-memory model, re-based onto [`BlockDev`] (PR 2 kept swap
//!   images in a bare `HashMap`).
//!
//! The crate is deliberately free of simulation-engine dependencies:
//! cycle charging and trace events are injected by the kernel through
//! the [`BlkHooks`] trait, and fault injection (torn writes, dropped
//! flushes, crash-after-nth-block) arrives the same way from the
//! kernel's `FaultPlan`. That keeps the device model reusable from unit
//! tests without dragging in clocks or tracers.

mod dev;
mod journal;
mod snapshot;
mod swap;

pub use dev::{BlkError, BlkHooks, BlkStats, BlockDev, FlushFault, NoHooks, WriteFault};
pub use journal::{JournalRecord, JOURNAL_MAGIC, SUPERBLOCK_MAGIC};
pub use snapshot::{SnapshotStore, JOURNAL_LBAS, REGION_BLOCKS, REGION_LBAS, SUPERBLOCK_LBAS};
pub use swap::SwapDev;

/// FNV-1a 64-bit checksum — the integrity check for superblocks,
/// journal records, and snapshot payloads. Not cryptographic; it only
/// has to catch torn writes and stale blocks, exactly like the CRCs in
/// real journaling filesystems.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_discriminates() {
        assert_ne!(checksum(b"old snapshot"), checksum(b"new snapshot"));
        assert_eq!(checksum(b""), 0xcbf2_9ce4_8422_2325);
        // Prefix-sensitivity: a torn write (new prefix, old suffix) must
        // not collide with either whole image.
        let old = vec![0xaau8; 4096];
        let new = vec![0x55u8; 4096];
        let mut torn = new.clone();
        torn[2048..].copy_from_slice(&old[2048..]);
        assert_ne!(checksum(&torn), checksum(&old));
        assert_ne!(checksum(&torn), checksum(&new));
    }
}
