//! The page-granular swap device, re-based onto [`BlockDev`].
//!
//! PR 2 kept swap images in a bare `HashMap<u64, Option<FrameBox>>`
//! inside the physical-memory model; this moves the bytes onto the
//! simulated block device (one block per page) while preserving the
//! exact slot semantics the kernel's invariant audit depends on:
//!
//! * zero pages stay **sparse** — storing `None` allocates a slot but
//!   performs no device IO at all;
//! * freed slot numbers are reused (lowest-overhead free list);
//! * swap contents are volatile across a machine restart (swap backs
//!   *anonymous* memory), so writes stay in the device cache and are
//!   never flushed — `crash()` clearing them is the correct model.
//!
//! Swap IO is charged through the cost model's `swap_in_page` /
//! `swap_out_page` entries on the fault path, not per block, so this
//! re-backing changes zero modeled cycles; the device only adds the
//! `blk` activity counters.

use std::collections::HashMap;

use crate::dev::{BlkStats, BlockDev, WriteFault};

/// A swap device: numbered page slots over a block device.
#[derive(Debug, Clone)]
pub struct SwapDev {
    dev: BlockDev,
    /// Slot -> whether the slot has device-resident bytes (`false`
    /// marks a sparse all-zero page that never touched the device).
    slots: HashMap<u64, bool>,
    next_slot: u64,
    free: Vec<u64>,
}

impl SwapDev {
    /// Creates an empty swap device with `page_bytes`-sized slots.
    pub fn new(page_bytes: u64) -> Self {
        SwapDev {
            dev: BlockDev::new(page_bytes),
            slots: HashMap::new(),
            next_slot: 0,
            free: Vec::new(),
        }
    }

    /// Stores a page image, returning its slot. `None` records a
    /// sparse all-zero page without any device IO.
    pub fn store(&mut self, image: Option<&[u8]>) -> u64 {
        let slot = self.free.pop().unwrap_or_else(|| {
            let s = self.next_slot;
            self.next_slot += 1;
            s
        });
        match image {
            Some(bytes) => {
                self.dev.write_block(slot, bytes, WriteFault::None);
                self.slots.insert(slot, true);
            }
            None => {
                self.slots.insert(slot, false);
            }
        }
        slot
    }

    /// Whether `slot` is occupied.
    pub fn contains(&self, slot: u64) -> bool {
        self.slots.contains_key(&slot)
    }

    /// Removes a slot and returns its bytes (`None` for a sparse zero
    /// page). Panics if the slot is empty — the caller is the kernel,
    /// and swapping in an unoccupied slot is a kernel bug.
    pub fn take(&mut self, slot: u64) -> Option<Vec<u8>> {
        let has_bytes = self
            .slots
            .remove(&slot)
            .unwrap_or_else(|| panic!("swap-in of empty slot {slot}"));
        self.free.push(slot);
        if has_bytes {
            let mut buf = vec![0u8; self.dev.block_size() as usize];
            self.dev.read_block(slot, &mut buf);
            Some(buf)
        } else {
            None
        }
    }

    /// Reads a slot's page into `buf` without consuming the slot.
    /// Returns `Some(true)` if bytes were read from the device,
    /// `Some(false)` for a sparse zero page (buf is zero-filled), and
    /// `None` if the slot is empty.
    pub fn peek(&mut self, slot: u64, buf: &mut [u8]) -> Option<bool> {
        match self.slots.get(&slot) {
            Some(true) => {
                self.dev.read_block(slot, buf);
                Some(true)
            }
            Some(false) => {
                buf.fill(0);
                Some(false)
            }
            None => None,
        }
    }

    /// Frees a slot if occupied; returns whether it was.
    pub fn discard(&mut self, slot: u64) -> bool {
        if self.slots.remove(&slot).is_some() {
            self.free.push(slot);
            true
        } else {
            false
        }
    }

    /// Number of occupied slots.
    pub fn used(&self) -> u64 {
        self.slots.len() as u64
    }

    /// Device activity counters.
    pub fn stats(&self) -> BlkStats {
        self.dev.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_take_round_trip() {
        let mut sw = SwapDev::new(4096);
        let page: Vec<u8> = (0..4096).map(|i| i as u8).collect();
        let slot = sw.store(Some(&page));
        assert!(sw.contains(slot));
        assert_eq!(sw.used(), 1);
        assert_eq!(sw.take(slot), Some(page));
        assert_eq!(sw.used(), 0);
    }

    #[test]
    fn zero_pages_stay_sparse() {
        let mut sw = SwapDev::new(4096);
        let slot = sw.store(None);
        assert_eq!(
            sw.stats().writes,
            0,
            "sparse store must not touch the device"
        );
        let mut buf = vec![0xffu8; 4096];
        assert_eq!(sw.peek(slot, &mut buf), Some(false));
        assert!(buf.iter().all(|&b| b == 0));
        assert_eq!(sw.take(slot), None);
    }

    #[test]
    fn slots_are_reused() {
        let mut sw = SwapDev::new(4096);
        let a = sw.store(None);
        let b = sw.store(Some(&[7u8; 4096]));
        sw.take(a);
        let c = sw.store(Some(&[9u8; 4096]));
        assert_eq!(c, a, "freed slot number must be reused");
        assert_ne!(c, b);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut sw = SwapDev::new(4096);
        let slot = sw.store(Some(&[3u8; 4096]));
        let mut buf = vec![0u8; 4096];
        assert_eq!(sw.peek(slot, &mut buf), Some(true));
        assert_eq!(buf[100], 3);
        assert!(sw.contains(slot), "peek must leave the slot intact");
        assert_eq!(sw.peek(999, &mut buf), None);
    }

    #[test]
    #[should_panic(expected = "swap-in of empty slot 5")]
    fn taking_an_empty_slot_panics() {
        let mut sw = SwapDev::new(4096);
        sw.take(5);
    }
}
