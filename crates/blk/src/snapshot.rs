//! The crash-consistent snapshot store: dual superblocks, a write-ahead
//! journal, and double-buffered copy-on-write payload regions.
//!
//! On-disk layout (block addresses):
//!
//! ```text
//! LBA 0, 1                superblocks (generation g lives in slot g % 2)
//! LBA 2, 3                write-ahead journal records (same slot rule)
//! LBA 16 ..               payload region A (even generations)
//! LBA 16 + REGION_BLOCKS  payload region B (odd generations)
//! ```
//!
//! A commit of generation `g` never touches the blocks generation
//! `g - 1` depends on: the payload goes to the *other* region, and the
//! journal record and superblock go to the *other* slot. The sequence
//! is
//!
//! 1. write payload blocks, **flush** — data durable before anything
//!    names it;
//! 2. write journal record, **flush** — the write-ahead commit;
//! 3. write superblock, **flush** — the fast-path commit point.
//!
//! Recovery considers four candidates (two superblocks, two journal
//! records), discards any whose header or payload checksum fails, and
//! adopts the highest surviving generation. A crash between steps 2
//! and 3 is healed by *journal replay*: the superblock is rewritten
//! from the journal record. Because every fault mode (torn write,
//! dropped flush, crash at any block boundary) either leaves the old
//! commit chain intact or completes the new one, recovery always yields
//! exactly the old or the new snapshot — never a torn hybrid.

use crate::checksum;
use crate::dev::{BlkError, BlkHooks, BlkStats, BlockDev, FlushFault, WriteFault};
use crate::journal::{JournalRecord, JOURNAL_MAGIC, SUPERBLOCK_MAGIC};

/// LBAs of the two superblocks.
pub const SUPERBLOCK_LBAS: [u64; 2] = [0, 1];
/// LBAs of the two journal records.
pub const JOURNAL_LBAS: [u64; 2] = [2, 3];
/// Blocks reserved per payload region (the device is sparse, so the
/// gap costs nothing).
pub const REGION_BLOCKS: u64 = 1 << 24;
/// First LBA of each payload region.
pub const REGION_LBAS: [u64; 2] = [16, 16 + REGION_BLOCKS];

/// A snapshot store over a [`BlockDev`].
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    dev: BlockDev,
    current: JournalRecord,
}

impl SnapshotStore {
    /// Wraps an empty (or to-be-ignored) device at generation 0 with an
    /// empty payload. Use [`SnapshotStore::open`] to recover state from
    /// a device that has been written to.
    pub fn new(dev: BlockDev) -> Self {
        SnapshotStore {
            dev,
            current: JournalRecord::default(),
        }
    }

    /// Recovers the store from a device, e.g. after a crash. Returns
    /// the store and the number of journal replays performed (0 or 1).
    ///
    /// Candidates are the two superblocks and the two journal records;
    /// any with a bad header or payload checksum is discarded and the
    /// highest surviving generation wins (superblocks win ties, so a
    /// fully-committed generation needs no replay). If the winner came
    /// from the journal, the superblock is rewritten and flushed.
    pub fn open(dev: BlockDev, hooks: &mut dyn BlkHooks) -> (SnapshotStore, u64) {
        let mut store = SnapshotStore::new(dev);
        let mut best: Option<(JournalRecord, bool)> = None;
        let candidates = [
            (SUPERBLOCK_LBAS[0], SUPERBLOCK_MAGIC, false),
            (SUPERBLOCK_LBAS[1], SUPERBLOCK_MAGIC, false),
            (JOURNAL_LBAS[0], JOURNAL_MAGIC, true),
            (JOURNAL_LBAS[1], JOURNAL_MAGIC, true),
        ];
        for (lba, magic, from_journal) in candidates {
            let mut block = vec![0u8; store.dev.block_size() as usize];
            hooks.on_read(lba);
            store.dev.read_block(lba, &mut block);
            let Some(rec) = JournalRecord::decode(magic, &block) else {
                continue;
            };
            let payload = store.read_payload_at(rec, hooks);
            if checksum(&payload) != rec.payload_sum {
                continue;
            }
            // Strictly-greater keeps the superblock (listed first) as
            // the winner for a fully-committed generation.
            if best.is_none_or(|(b, _)| rec.generation > b.generation) {
                best = Some((rec, from_journal));
            }
        }
        let mut replays = 0;
        if let Some((rec, from_journal)) = best {
            store.current = rec;
            if from_journal {
                replays = 1;
                store.dev.note_journal_replay();
                // Best-effort superblock rewrite; a crash fault here
                // just leaves the (idempotent) replay for next boot.
                let slot = (rec.generation % 2) as usize;
                let block = rec.encode(SUPERBLOCK_MAGIC, store.dev.block_size());
                if let WriteFault::Crash = hooks.on_write(SUPERBLOCK_LBAS[slot]) {
                    return (store, replays);
                }
                store
                    .dev
                    .write_block(SUPERBLOCK_LBAS[slot], &block, WriteFault::None);
                match hooks.on_flush() {
                    FlushFault::Crash => return (store, replays),
                    fault => store.dev.flush(fault),
                }
            }
        }
        (store, replays)
    }

    /// Commits `payload` as the next generation. On success the store's
    /// current generation advances; on [`BlkError::Crashed`] the device
    /// holds a partial commit that recovery will resolve to the old
    /// snapshot (or the new one, if the crash hit after the journal
    /// barrier).
    pub fn commit(&mut self, payload: &[u8], hooks: &mut dyn BlkHooks) -> Result<u64, BlkError> {
        let generation = self.current.generation + 1;
        let slot = (generation % 2) as usize;
        let region = REGION_LBAS[slot];
        let bs = self.dev.block_size();
        let nblocks = (payload.len() as u64).div_ceil(bs);
        assert!(nblocks <= REGION_BLOCKS, "snapshot payload exceeds region");
        for i in 0..nblocks {
            let start = (i * bs) as usize;
            let end = payload.len().min(start + bs as usize);
            let mut block = vec![0u8; bs as usize];
            block[..end - start].copy_from_slice(&payload[start..end]);
            self.write_hooked(region + i, &block, hooks)?;
        }
        self.flush_hooked(hooks)?;
        let rec = JournalRecord {
            generation,
            payload_lba: region,
            payload_len: payload.len() as u64,
            payload_sum: checksum(payload),
        };
        self.write_hooked(JOURNAL_LBAS[slot], &rec.encode(JOURNAL_MAGIC, bs), hooks)?;
        self.flush_hooked(hooks)?;
        self.write_hooked(
            SUPERBLOCK_LBAS[slot],
            &rec.encode(SUPERBLOCK_MAGIC, bs),
            hooks,
        )?;
        self.flush_hooked(hooks)?;
        self.current = rec;
        Ok(generation)
    }

    /// Reads back the current snapshot payload.
    pub fn read_payload(&mut self, hooks: &mut dyn BlkHooks) -> Vec<u8> {
        let rec = self.current;
        self.read_payload_at(rec, hooks)
    }

    fn read_payload_at(&mut self, rec: JournalRecord, hooks: &mut dyn BlkHooks) -> Vec<u8> {
        let bs = self.dev.block_size();
        let nblocks = rec.payload_len.div_ceil(bs);
        let mut out = vec![0u8; (nblocks * bs) as usize];
        for i in 0..nblocks {
            let lba = rec.payload_lba + i;
            hooks.on_read(lba);
            let start = (i * bs) as usize;
            self.dev
                .read_block(lba, &mut out[start..start + bs as usize]);
        }
        out.truncate(rec.payload_len as usize);
        out
    }

    fn write_hooked(
        &mut self,
        lba: u64,
        data: &[u8],
        hooks: &mut dyn BlkHooks,
    ) -> Result<(), BlkError> {
        match hooks.on_write(lba) {
            WriteFault::Crash => Err(BlkError::Crashed),
            fault => {
                self.dev.write_block(lba, data, fault);
                Ok(())
            }
        }
    }

    fn flush_hooked(&mut self, hooks: &mut dyn BlkHooks) -> Result<(), BlkError> {
        match hooks.on_flush() {
            FlushFault::Crash => Err(BlkError::Crashed),
            fault => {
                self.dev.flush(fault);
                Ok(())
            }
        }
    }

    /// Current (committed) generation; 0 before the first commit.
    pub fn generation(&self) -> u64 {
        self.current.generation
    }

    /// Length in bytes of the current snapshot payload.
    pub fn payload_len(&self) -> u64 {
        self.current.payload_len
    }

    /// The underlying device.
    pub fn dev(&self) -> &BlockDev {
        &self.dev
    }

    /// Device activity counters.
    pub fn stats(&self) -> BlkStats {
        self.dev.stats()
    }

    /// Consumes the store and returns the raw device — the machine-
    /// restart path: take the device, [`BlockDev::crash`] it, and hand
    /// it to a fresh kernel's recovery.
    pub fn into_dev(self) -> BlockDev {
        self.dev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dev::NoHooks;

    const BS: u64 = 512;

    fn payload(tag: u8, len: usize) -> Vec<u8> {
        (0..len).map(|i| tag ^ (i as u8)).collect()
    }

    /// Crashes on the nth write (1-based); optionally on the nth flush.
    struct CrashAt {
        writes: u64,
        flushes: u64,
        crash_write: u64,
        crash_flush: u64,
    }

    impl CrashAt {
        fn write(n: u64) -> Self {
            CrashAt {
                writes: 0,
                flushes: 0,
                crash_write: n,
                crash_flush: 0,
            }
        }
        fn flush(n: u64) -> Self {
            CrashAt {
                writes: 0,
                flushes: 0,
                crash_write: 0,
                crash_flush: n,
            }
        }
    }

    impl BlkHooks for CrashAt {
        fn on_write(&mut self, _lba: u64) -> WriteFault {
            self.writes += 1;
            if self.writes == self.crash_write {
                WriteFault::Crash
            } else {
                WriteFault::None
            }
        }
        fn on_flush(&mut self) -> FlushFault {
            self.flushes += 1;
            if self.flushes == self.crash_flush {
                FlushFault::Crash
            } else {
                FlushFault::None
            }
        }
    }

    #[test]
    fn commit_and_reopen_round_trip() {
        let mut store = SnapshotStore::new(BlockDev::new(BS));
        let old = payload(0xaa, 3000);
        assert_eq!(store.commit(&old, &mut NoHooks).unwrap(), 1);
        assert_eq!(store.read_payload(&mut NoHooks), old);
        let mut dev = store.into_dev();
        dev.crash();
        let (mut store, replays) = SnapshotStore::open(dev, &mut NoHooks);
        assert_eq!(replays, 0, "completed commit needs no replay");
        assert_eq!(store.generation(), 1);
        assert_eq!(store.read_payload(&mut NoHooks), old);
    }

    #[test]
    fn empty_device_opens_at_generation_zero() {
        let (mut store, replays) = SnapshotStore::open(BlockDev::new(BS), &mut NoHooks);
        assert_eq!(replays, 0);
        assert_eq!(store.generation(), 0);
        assert!(store.read_payload(&mut NoHooks).is_empty());
    }

    #[test]
    fn crash_at_every_write_yields_old_or_new() {
        // Count the writes of a clean second commit, then re-run with a
        // crash injected at each write index and check recovery.
        let old = payload(0x11, 2500);
        let new = payload(0x22, 4100);
        let clean = |hooks: &mut dyn BlkHooks| -> (SnapshotStore, Result<u64, BlkError>) {
            let mut store = SnapshotStore::new(BlockDev::new(BS));
            store.commit(&old, &mut NoHooks).unwrap();
            let r = store.commit(&new, hooks);
            (store, r)
        };
        let (store, _) = clean(&mut NoHooks);
        let total_writes = store.stats().writes;
        assert!(total_writes > 10, "sweep needs real block traffic");
        // Writes of commit #1 are fault-free in the sweep too, so only
        // sweep the second commit's indices.
        let first_commit_writes = {
            let mut s = SnapshotStore::new(BlockDev::new(BS));
            s.commit(&old, &mut NoHooks).unwrap();
            s.stats().writes
        };
        let mut saw_old = 0;
        let mut saw_new = 0;
        for n in 1..=(total_writes - first_commit_writes) {
            let mut hooks = CrashAt::write(first_commit_writes + n);
            // Route *all* writes through the hook so indices line up.
            let mut store = SnapshotStore::new(BlockDev::new(BS));
            store.commit(&old, &mut hooks).unwrap();
            let r = store.commit(&new, &mut hooks);
            assert_eq!(r, Err(BlkError::Crashed), "crash point {n} missed");
            let mut dev = store.into_dev();
            dev.crash();
            let (mut rec, _) = SnapshotStore::open(dev, &mut NoHooks);
            let got = rec.read_payload(&mut NoHooks);
            if got == old {
                saw_old += 1;
            } else if got == new {
                saw_new += 1;
            } else {
                panic!("crash point {n}: recovered a torn hybrid");
            }
        }
        assert!(saw_old > 0, "some crash point must recover the old image");
        assert!(
            saw_new > 0,
            "a post-journal crash must recover the new image"
        );
    }

    #[test]
    fn crash_at_each_flush_yields_old_or_new() {
        let old = payload(0x33, 1800);
        let new = payload(0x44, 1800);
        let mut outcomes = Vec::new();
        for n in 1..=3u64 {
            let mut store = SnapshotStore::new(BlockDev::new(BS));
            store.commit(&old, &mut NoHooks).unwrap();
            let mut hooks = CrashAt::flush(n);
            assert_eq!(store.commit(&new, &mut hooks), Err(BlkError::Crashed));
            let mut dev = store.into_dev();
            dev.crash();
            let (mut rec, replays) = SnapshotStore::open(dev, &mut NoHooks);
            let got = rec.read_payload(&mut NoHooks);
            assert!(got == old || got == new, "flush crash {n}: torn hybrid");
            outcomes.push((got == new, replays));
        }
        // Crash at flush 1 or 2 loses the new image; at flush 3 the
        // journal is durable, so recovery replays it to the new image.
        assert_eq!(outcomes[0], (false, 0));
        assert_eq!(outcomes[1], (false, 0));
        assert_eq!(outcomes[2], (true, 1));
    }

    #[test]
    fn torn_payload_write_recovers_old() {
        struct TearPayload {
            torn: bool,
        }
        impl BlkHooks for TearPayload {
            fn on_write(&mut self, lba: u64) -> WriteFault {
                if !self.torn && lba >= REGION_LBAS[0] {
                    self.torn = true;
                    WriteFault::Torn
                } else {
                    WriteFault::None
                }
            }
        }
        let old = payload(0x55, 2000);
        let new = payload(0x66, 2000);
        let mut store = SnapshotStore::new(BlockDev::new(BS));
        store.commit(&old, &mut NoHooks).unwrap();
        // The torn write is silent: the commit "succeeds".
        let mut hooks = TearPayload { torn: false };
        assert!(store.commit(&new, &mut hooks).is_ok());
        assert_eq!(store.stats().torn_writes, 1);
        let mut dev = store.into_dev();
        dev.crash();
        let (mut rec, _) = SnapshotStore::open(dev, &mut NoHooks);
        assert_eq!(
            rec.read_payload(&mut NoHooks),
            old,
            "checksum must reject the torn payload and fall back"
        );
    }

    #[test]
    fn dropped_final_flush_then_crash_replays_journal() {
        struct DropNthFlush {
            seen: u64,
            drop_on: u64,
        }
        impl BlkHooks for DropNthFlush {
            fn on_flush(&mut self) -> FlushFault {
                self.seen += 1;
                if self.seen == self.drop_on {
                    FlushFault::Dropped
                } else {
                    FlushFault::None
                }
            }
        }
        let old = payload(0x77, 900);
        let new = payload(0x88, 900);
        let mut store = SnapshotStore::new(BlockDev::new(BS));
        store.commit(&old, &mut NoHooks).unwrap();
        let mut hooks = DropNthFlush {
            seen: 0,
            drop_on: 3,
        };
        assert!(store.commit(&new, &mut hooks).is_ok(), "drop is silent");
        let mut dev = store.into_dev();
        dev.crash();
        let (mut rec, replays) = SnapshotStore::open(dev, &mut NoHooks);
        assert_eq!(replays, 1, "superblock was lost; journal must replay");
        assert_eq!(rec.read_payload(&mut NoHooks), new);
        assert_eq!(rec.stats().journal_replays, 1);
    }

    #[test]
    fn generations_alternate_regions() {
        let mut store = SnapshotStore::new(BlockDev::new(BS));
        let a = payload(1, 600);
        let b = payload(2, 600);
        let c = payload(3, 600);
        store.commit(&a, &mut NoHooks).unwrap();
        store.commit(&b, &mut NoHooks).unwrap();
        assert_eq!(store.commit(&c, &mut NoHooks).unwrap(), 3);
        assert_eq!(store.read_payload(&mut NoHooks), c);
        let mut dev = store.into_dev();
        dev.crash();
        let (mut rec, _) = SnapshotStore::open(dev, &mut NoHooks);
        assert_eq!(rec.generation(), 3);
        assert_eq!(rec.read_payload(&mut NoHooks), c);
    }
}
