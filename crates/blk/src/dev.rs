//! The simulated block device: sparse, power-of-two blocks, explicit
//! flush barriers, and a crash model where only flushed blocks survive.

use std::collections::HashMap;

/// Injected outcome for a single block write (decided by the kernel's
/// `FaultPlan` through [`BlkHooks::on_write`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// The write lands intact.
    None,
    /// A torn write: the first half of the block gets the new bytes,
    /// the second half keeps whatever was there before. The device
    /// reports success — the corruption is only discoverable later via
    /// checksums, like a real interrupted sector write.
    Torn,
    /// Power loss mid-write: the machine dies before the write lands.
    Crash,
}

/// Injected outcome for a flush barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushFault {
    /// The barrier completes: all pending blocks become durable.
    None,
    /// The device acknowledges the flush but drops it — pending blocks
    /// stay volatile. Reports success; a later successful flush will
    /// still persist them, but a crash in between loses them.
    Dropped,
    /// Power loss at the barrier.
    Crash,
}

/// Block-IO error surfaced to the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlkError {
    /// A `Crash` fault fired: the simulated machine lost power mid-IO.
    Crashed,
}

impl std::fmt::Display for BlkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlkError::Crashed => write!(f, "simulated power loss during block IO"),
        }
    }
}

impl std::error::Error for BlkError {}

/// Counters for block-device activity, surfaced as the `blk` metrics
/// group in `KernelSnapshot`/`sys_stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlkStats {
    /// Blocks read.
    pub reads: u64,
    /// Blocks written (including torn ones).
    pub writes: u64,
    /// Flush barriers issued (including dropped ones).
    pub flushes: u64,
    /// Writes that landed torn (injected faults).
    pub torn_writes: u64,
    /// Flush barriers the device dropped (injected faults).
    pub dropped_flushes: u64,
    /// Recoveries that had to replay the write-ahead journal.
    pub journal_replays: u64,
}

impl BlkStats {
    /// Counters accumulated since `earlier`.
    pub fn delta_since(&self, earlier: &BlkStats) -> BlkStats {
        BlkStats {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            flushes: self.flushes - earlier.flushes,
            torn_writes: self.torn_writes - earlier.torn_writes,
            dropped_flushes: self.dropped_flushes - earlier.dropped_flushes,
            journal_replays: self.journal_replays - earlier.journal_replays,
        }
    }

    /// Element-wise sum — used to fold the snapshot disk and the swap
    /// device into one kernel-level `blk` group.
    pub fn combined(&self, other: &BlkStats) -> BlkStats {
        BlkStats {
            reads: self.reads + other.reads,
            writes: self.writes + other.writes,
            flushes: self.flushes + other.flushes,
            torn_writes: self.torn_writes + other.torn_writes,
            dropped_flushes: self.dropped_flushes + other.dropped_flushes,
            journal_replays: self.journal_replays + other.journal_replays,
        }
    }
}

/// Kernel-side interposition on block IO: cycle charging, trace spans,
/// and fault injection. The device itself stays free of simulation
/// dependencies; the kernel implements this trait over its clock,
/// tracer, and `FaultPlan`.
pub trait BlkHooks {
    /// Called once per block read.
    fn on_read(&mut self, _lba: u64) {}
    /// Called once per block write; the returned fault is applied.
    fn on_write(&mut self, _lba: u64) -> WriteFault {
        WriteFault::None
    }
    /// Called once per flush barrier; the returned fault is applied.
    fn on_flush(&mut self) -> FlushFault {
        FlushFault::None
    }
}

/// The no-op hooks: no charging, no tracing, no faults. Used by unit
/// tests and by the swap path (swap IO is charged through the existing
/// `swap_in_page`/`swap_out_page` cost-model entries, not per block).
pub struct NoHooks;

impl BlkHooks for NoHooks {}

/// A sparse simulated block device.
///
/// Blocks are addressed by LBA and are `block_size` bytes (a power of
/// two). Unwritten blocks read as zeros. Writes go to a volatile
/// `pending` set; [`BlockDev::flush`] moves them to the `durable` set;
/// [`BlockDev::crash`] discards everything pending. Reads see pending
/// data (the device cache), so correctness bugs only show up when a
/// crash is actually injected — exactly the trap real storage sets.
#[derive(Debug, Clone, Default)]
pub struct BlockDev {
    block_size: u64,
    durable: HashMap<u64, Vec<u8>>,
    pending: HashMap<u64, Vec<u8>>,
    stats: BlkStats,
}

impl BlockDev {
    /// Creates an empty device with the given block size (power of two).
    pub fn new(block_size: u64) -> Self {
        assert!(
            block_size.is_power_of_two(),
            "block size {block_size} is not a power of two"
        );
        BlockDev {
            block_size,
            durable: HashMap::new(),
            pending: HashMap::new(),
            stats: BlkStats::default(),
        }
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Activity counters.
    pub fn stats(&self) -> BlkStats {
        self.stats
    }

    /// Current contents of a block without touching counters (pending
    /// wins over durable; absent blocks are zero).
    fn peek_block(&self, lba: u64) -> Vec<u8> {
        self.pending
            .get(&lba)
            .or_else(|| self.durable.get(&lba))
            .cloned()
            .unwrap_or_else(|| vec![0u8; self.block_size as usize])
    }

    /// Reads one block into `buf` (`buf.len() == block_size`).
    pub fn read_block(&mut self, lba: u64, buf: &mut [u8]) {
        assert_eq!(buf.len() as u64, self.block_size, "short block read");
        self.stats.reads += 1;
        buf.copy_from_slice(&self.peek_block(lba));
    }

    /// Writes one block, applying `fault`. `Torn` splices the new
    /// first half onto the old second half and still reports success.
    /// `Crash` must be handled by the caller before reaching the
    /// device; passing it here panics.
    pub fn write_block(&mut self, lba: u64, data: &[u8], fault: WriteFault) {
        assert_eq!(data.len() as u64, self.block_size, "short block write");
        self.stats.writes += 1;
        let block = match fault {
            WriteFault::None => data.to_vec(),
            WriteFault::Torn => {
                self.stats.torn_writes += 1;
                let mut torn = self.peek_block(lba);
                let half = self.block_size as usize / 2;
                torn[..half].copy_from_slice(&data[..half]);
                torn
            }
            WriteFault::Crash => panic!("crash faults are resolved above the device"),
        };
        self.pending.insert(lba, block);
    }

    /// Issues a flush barrier, applying `fault`. A dropped flush
    /// reports success but leaves pending blocks volatile.
    pub fn flush(&mut self, fault: FlushFault) {
        self.stats.flushes += 1;
        match fault {
            FlushFault::None => {
                for (lba, block) in self.pending.drain() {
                    self.durable.insert(lba, block);
                }
            }
            FlushFault::Dropped => self.stats.dropped_flushes += 1,
            FlushFault::Crash => panic!("crash faults are resolved above the device"),
        }
    }

    /// Simulated power loss: every block that was not flushed is gone.
    pub fn crash(&mut self) {
        self.pending.clear();
    }

    /// Number of blocks currently pending (not yet durable).
    pub fn pending_blocks(&self) -> usize {
        self.pending.len()
    }

    /// Number of durable blocks.
    pub fn durable_blocks(&self) -> usize {
        self.durable.len()
    }

    pub(crate) fn note_journal_replay(&mut self) {
        self.stats.journal_replays += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_blocks_read_zero() {
        let mut dev = BlockDev::new(512);
        let mut buf = vec![0xffu8; 512];
        dev.read_block(7, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
        assert_eq!(dev.stats().reads, 1);
    }

    #[test]
    fn crash_discards_unflushed_writes() {
        let mut dev = BlockDev::new(512);
        dev.write_block(0, &[1u8; 512], WriteFault::None);
        dev.flush(FlushFault::None);
        dev.write_block(0, &[2u8; 512], WriteFault::None);
        let mut buf = vec![0u8; 512];
        dev.read_block(0, &mut buf);
        assert_eq!(buf[0], 2, "reads must see the device cache");
        dev.crash();
        dev.read_block(0, &mut buf);
        assert_eq!(buf[0], 1, "crash must roll back to the flushed state");
    }

    #[test]
    fn torn_write_splices_old_and_new() {
        let mut dev = BlockDev::new(512);
        dev.write_block(3, &[0xaau8; 512], WriteFault::None);
        dev.flush(FlushFault::None);
        dev.write_block(3, &[0x55u8; 512], WriteFault::Torn);
        let mut buf = vec![0u8; 512];
        dev.read_block(3, &mut buf);
        assert_eq!(buf[0], 0x55, "new prefix");
        assert_eq!(buf[511], 0xaa, "old suffix");
        assert_eq!(dev.stats().torn_writes, 1);
    }

    #[test]
    fn dropped_flush_keeps_blocks_volatile() {
        let mut dev = BlockDev::new(512);
        dev.write_block(0, &[9u8; 512], WriteFault::None);
        dev.flush(FlushFault::Dropped);
        assert_eq!(dev.pending_blocks(), 1);
        dev.crash();
        let mut buf = vec![0xffu8; 512];
        dev.read_block(0, &mut buf);
        assert!(buf.iter().all(|&b| b == 0), "dropped flush + crash = lost");
        assert_eq!(dev.stats().dropped_flushes, 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn block_size_must_be_power_of_two() {
        let _ = BlockDev::new(1000);
    }
}
