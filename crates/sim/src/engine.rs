//! The event-driven simulation driver and the closed-loop client engine.
//!
//! [`Sim`] drains an [`EventQueue`] through a handler closure; the handler
//! schedules follow-on events back into the same queue. [`ClosedLoop`]
//! factors out the bookkeeping every closed-loop throughput benchmark
//! repeats: a fixed client population, a fixed number of requests per
//! client, completion counting, and the end-of-run timestamp that the
//! throughput figure divides by.

use crate::event::EventQueue;

/// A deterministic event-driven simulation over payload type `E`.
///
/// # Examples
///
/// ```
/// use sjmp_sim::Sim;
/// let mut sim: Sim<u32> = Sim::new();
/// sim.schedule(0, 1);
/// let mut fired = Vec::new();
/// sim.run(|sim, t, n| {
///     fired.push((t, n));
///     if n < 3 {
///         sim.schedule(t + 10, n + 1);
///     }
/// });
/// assert_eq!(fired, vec![(0, 1), (10, 2), (20, 3)]);
/// ```
#[derive(Debug, Default)]
pub struct Sim<E> {
    events: EventQueue<E>,
    now: u64,
}

impl<E> Sim<E> {
    /// Creates an empty simulation at time zero.
    pub fn new() -> Self {
        Sim {
            events: EventQueue::new(),
            now: 0,
        }
    }

    /// Schedules `event` at absolute `time`.
    pub fn schedule(&mut self, time: u64, event: E) {
        self.events.push(time, event);
    }

    /// The time of the event currently being handled (zero before the
    /// first event fires).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.events.len()
    }

    /// Drains the queue: pops the earliest event and hands it to
    /// `handler` together with the simulation (so the handler can
    /// schedule follow-ons), until no events remain.
    pub fn run(&mut self, mut handler: impl FnMut(&mut Sim<E>, u64, E)) {
        while let Some((t, ev)) = self.events.pop() {
            self.now = t;
            handler(self, t, ev);
        }
    }
}

/// Bookkeeping for a closed-loop client population: `clients` actors each
/// issue `per_client` requests back to back; the run ends when the last
/// response lands.
#[derive(Debug)]
pub struct ClosedLoop {
    remaining: Vec<usize>,
    done: u64,
    end: u64,
}

impl ClosedLoop {
    /// A population of `clients` clients with `per_client` requests each.
    pub fn new(clients: usize, per_client: usize) -> Self {
        ClosedLoop {
            remaining: vec![per_client; clients],
            done: 0,
            end: 0,
        }
    }

    /// Number of clients in the population.
    pub fn clients(&self) -> usize {
        self.remaining.len()
    }

    /// Records that `client` completed a request at time `t`. Returns
    /// `true` if the client has more requests and should immediately
    /// issue the next one (the closed loop).
    pub fn complete(&mut self, client: usize, t: u64) -> bool {
        self.done += 1;
        self.end = self.end.max(t);
        self.remaining[client] -= 1;
        self.remaining[client] > 0
    }

    /// Requests completed so far.
    pub fn done(&self) -> u64 {
        self.done
    }

    /// Completion time of the latest finished request.
    pub fn end(&self) -> u64 {
        self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_runs_to_exhaustion_in_time_order() {
        let mut sim: Sim<&str> = Sim::new();
        sim.schedule(30, "late");
        sim.schedule(10, "early");
        let mut order = Vec::new();
        sim.run(|sim, t, ev| {
            order.push((t, ev));
            if ev == "early" {
                sim.schedule(t + 5, "follow-on");
            }
        });
        assert_eq!(order, vec![(10, "early"), (15, "follow-on"), (30, "late")]);
        assert_eq!(sim.pending(), 0);
        assert_eq!(sim.now(), 30);
    }

    #[test]
    fn closed_loop_counts_and_tracks_end() {
        let mut loop_ = ClosedLoop::new(2, 2);
        assert_eq!(loop_.clients(), 2);
        assert!(loop_.complete(0, 100), "first of two: goes again");
        assert!(!loop_.complete(0, 250), "second of two: client retires");
        assert!(loop_.complete(1, 90));
        assert!(!loop_.complete(1, 180));
        assert_eq!(loop_.done(), 4);
        assert_eq!(loop_.end(), 250, "end is the latest completion");
    }
}
