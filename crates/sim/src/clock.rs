//! Per-core cycle clocks and the executing-core context.
//!
//! The paper reports results in *cycles* (Table 2, Figures 6-7) or in
//! rates derived from time (Figures 1, 8-12). Every simulated
//! architectural event — TLB hit/miss, page walk, CR3 load, kernel entry,
//! cache-line transfer — is charged to the clock of the hardware thread
//! it executes on. A machine is a set of such clocks ([`CoreClocks`]);
//! global wall time is their maximum, total CPU time their sum.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The hardware thread a piece of work executes on.
///
/// Kernel syscalls take a `CoreCtx` so that entry/walk/fault/swap costs
/// accrue to the executing core's clock and trace events stamp the core
/// they actually ran on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoreCtx {
    /// Hardware-thread index, `0 .. MachineProfile::total_cores()`.
    pub core: usize,
}

impl CoreCtx {
    /// The boot core: core 0, where kernel housekeeping (e.g. the reclaim
    /// daemon) runs when no process context is involved.
    pub const BOOT: CoreCtx = CoreCtx { core: 0 };

    /// Context for hardware thread `core`.
    pub fn new(core: usize) -> Self {
        CoreCtx { core }
    }
}

impl std::fmt::Display for CoreCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "core{}", self.core)
    }
}

/// One hardware thread's simulated cycle counter.
///
/// Clones share the same counter, so the MMU, the kernel, and workloads
/// can all charge cycles to one core's timeline. The counter is atomic,
/// making the clock `Send + Sync` for multi-threaded tests, but the
/// simulation itself is logically single-timeline per core.
///
/// # Examples
///
/// ```
/// use sjmp_sim::CycleClock;
/// let clock = CycleClock::new();
/// let view = clock.clone();
/// clock.advance(100);
/// assert_eq!(view.now(), 100);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CycleClock(Arc<AtomicU64>);

impl CycleClock {
    /// Creates a clock at cycle zero.
    pub fn new() -> Self {
        CycleClock(Arc::new(AtomicU64::new(0)))
    }

    /// Current simulated cycle.
    #[inline]
    pub fn now(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Advances the clock by `cycles`.
    #[inline]
    pub fn advance(&self, cycles: u64) {
        self.0.fetch_add(cycles, Ordering::Relaxed);
    }

    /// Jumps the clock forward to `t` if it is behind (a blocked core
    /// waiting for work that finishes at `t`). Never moves time backwards.
    #[inline]
    pub fn catch_up(&self, t: u64) {
        self.0.fetch_max(t, Ordering::Relaxed);
    }

    /// Resets the clock to zero (useful between benchmark phases).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }

    /// Cycles elapsed since `start`.
    pub fn since(&self, start: u64) -> u64 {
        self.now().saturating_sub(start)
    }
}

/// The per-core cycle clocks of one simulated machine.
///
/// Clones share the underlying counters, so the kernel, each per-core
/// MMU, and the workload can all view the same timeline. Blocking
/// interactions between cores (lock handoff, a master waiting on a slave)
/// are expressed with [`CoreClocks::catch_up`]: the waiting core jumps to
/// the moment the awaited work finished, so the *maximum* over cores is
/// the machine's wall-clock time while the *sum* is total CPU cycles.
#[derive(Debug, Clone, Default)]
pub struct CoreClocks {
    clocks: Vec<CycleClock>,
}

impl CoreClocks {
    /// Creates `n` clocks, all at cycle zero.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a machine needs at least one core");
        CoreClocks {
            clocks: (0..n).map(|_| CycleClock::new()).collect(),
        }
    }

    /// Number of cores.
    pub fn count(&self) -> usize {
        self.clocks.len()
    }

    /// The clock of hardware thread `core`.
    pub fn clock(&self, core: usize) -> &CycleClock {
        &self.clocks[core]
    }

    /// Current cycle on `core`.
    #[inline]
    pub fn now_on(&self, core: usize) -> u64 {
        self.clocks[core].now()
    }

    /// Global wall-clock time: the maximum over all cores.
    pub fn now(&self) -> u64 {
        self.clocks.iter().map(CycleClock::now).max().unwrap_or(0)
    }

    /// Total CPU cycles: the sum over all cores.
    pub fn total(&self) -> u64 {
        self.clocks.iter().map(CycleClock::now).sum()
    }

    /// Advances `core`'s clock by `cycles`.
    #[inline]
    pub fn advance(&self, core: usize, cycles: u64) {
        self.clocks[core].advance(cycles);
    }

    /// Jumps `core`'s clock forward to `t` if it is behind (blocking
    /// handoff from another core).
    #[inline]
    pub fn catch_up(&self, core: usize, t: u64) {
        self.clocks[core].catch_up(t);
    }

    /// Per-core readings, indexed by core.
    pub fn snapshot(&self) -> Vec<u64> {
        self.clocks.iter().map(CycleClock::now).collect()
    }

    /// Resets every core's clock to zero.
    pub fn reset(&self) {
        for c in &self.clocks {
            c.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_shared_between_clones() {
        let c = CycleClock::new();
        let view = c.clone();
        c.advance(10);
        view.advance(5);
        assert_eq!(c.now(), 15);
        assert_eq!(c.since(10), 5);
        c.reset();
        assert_eq!(view.now(), 0);
    }

    #[test]
    fn catch_up_never_rewinds() {
        let c = CycleClock::new();
        c.advance(100);
        c.catch_up(50);
        assert_eq!(c.now(), 100, "catch_up must not move time backwards");
        c.catch_up(250);
        assert_eq!(c.now(), 250);
    }

    #[test]
    fn core_clocks_max_and_sum() {
        let clocks = CoreClocks::new(3);
        clocks.advance(0, 10);
        clocks.advance(1, 25);
        clocks.advance(2, 5);
        assert_eq!(clocks.now(), 25, "global time is the per-core max");
        assert_eq!(clocks.total(), 40, "total CPU time is the sum");
        assert_eq!(clocks.snapshot(), vec![10, 25, 5]);
        clocks.catch_up(0, 25);
        assert_eq!(clocks.now_on(0), 25);
        clocks.reset();
        assert_eq!(clocks.total(), 0);
    }

    #[test]
    fn clones_share_counters() {
        let clocks = CoreClocks::new(2);
        let view = clocks.clone();
        clocks.advance(1, 7);
        assert_eq!(view.now_on(1), 7);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = CoreClocks::new(0);
    }
}
