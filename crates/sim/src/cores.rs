//! A bounded pool of cores for event-driven benchmarks.

/// A pool of `n` cores: actors reserve a core for a cycle interval; if all
/// cores are busy the start time slips to the earliest free core.
///
/// Reservation is deterministic: the free-earliest core wins, with ties
/// broken by the lowest core index.
#[derive(Debug, Clone)]
pub struct Cores {
    busy_until: Vec<u64>,
}

impl Cores {
    /// Creates a pool of `n` cores, all free at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one core");
        Cores {
            busy_until: vec![0; n],
        }
    }

    /// Number of cores.
    pub fn count(&self) -> usize {
        self.busy_until.len()
    }

    /// Reserves a core for `duration` cycles starting no earlier than
    /// `now`. Returns `(start, end)` of the reservation.
    pub fn reserve(&mut self, now: u64, duration: u64) -> (u64, u64) {
        let (_, start, end) = self.reserve_on(now, duration);
        (start, end)
    }

    /// Like [`Cores::reserve`], but also returns which core was
    /// reserved — needed when the caller attributes trace events to
    /// the core that served the work.
    pub fn reserve_on(&mut self, now: u64, duration: u64) -> (usize, u64, u64) {
        let (idx, &free_at) = self
            .busy_until
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .expect("at least one core");
        let start = now.max(free_at);
        let end = start + duration;
        self.busy_until[idx] = end;
        (idx, start, end)
    }

    /// Earliest time any core is free.
    pub fn earliest_free(&self) -> u64 {
        self.busy_until.iter().copied().min().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cores_serialize_when_saturated() {
        let mut cores = Cores::new(2);
        assert_eq!(cores.reserve(0, 100), (0, 100));
        assert_eq!(cores.reserve(0, 100), (0, 100));
        // Third job waits for a core.
        assert_eq!(cores.reserve(0, 50), (100, 150));
        assert_eq!(cores.count(), 2);
        assert_eq!(cores.earliest_free(), 100);
    }

    #[test]
    fn cores_respect_now() {
        let mut cores = Cores::new(1);
        assert_eq!(cores.reserve(500, 10), (500, 510));
    }

    #[test]
    fn reserve_on_reports_the_core_index() {
        let mut cores = Cores::new(2);
        assert_eq!(cores.reserve_on(0, 100), (0, 0, 100));
        assert_eq!(cores.reserve_on(0, 100), (1, 0, 100));
        // Tie at 100: lowest index wins.
        assert_eq!(cores.reserve_on(0, 50), (0, 100, 150));
    }
}
