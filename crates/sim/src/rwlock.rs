//! The simulated reader/writer segment lock.

use std::collections::VecDeque;

/// An actor identifier within one simulation.
pub type ActorId = usize;

/// Lock acquisition mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (reader) access.
    Shared,
    /// Exclusive (writer) access.
    Exclusive,
}

/// A reader/writer lock for discrete-event simulations: immediate
/// grant/deny plus a FIFO waiter queue whose wakeups the simulation
/// schedules.
///
/// This is the *segment lock* of Section 3.1: read-only mappings acquire
/// shared, writable mappings acquire exclusive.
#[derive(Debug, Default)]
pub struct SimRwLock {
    readers: usize,
    writer: bool,
    waiters: VecDeque<(ActorId, LockMode)>,
    /// Peak queue length, for contention reporting.
    pub max_queue: usize,
}

impl SimRwLock {
    /// Creates an unlocked lock.
    pub fn new() -> Self {
        SimRwLock::default()
    }

    /// Attempts to acquire; on failure the actor is queued and `false` is
    /// returned. FIFO fairness: a reader behind a queued writer waits.
    pub fn acquire(&mut self, actor: ActorId, mode: LockMode) -> bool {
        let can = match mode {
            LockMode::Shared => !self.writer && self.waiters.is_empty(),
            LockMode::Exclusive => !self.writer && self.readers == 0 && self.waiters.is_empty(),
        };
        if can {
            match mode {
                LockMode::Shared => self.readers += 1,
                LockMode::Exclusive => self.writer = true,
            }
            true
        } else {
            self.waiters.push_back((actor, mode));
            self.max_queue = self.max_queue.max(self.waiters.len());
            false
        }
    }

    /// Releases a held lock and returns the actors to wake: either one
    /// writer, or a maximal run of readers.
    ///
    /// The returned actors hold the lock already (handoff semantics); the
    /// simulation just schedules their continuations.
    pub fn release(&mut self, mode: LockMode) -> Vec<ActorId> {
        match mode {
            LockMode::Shared => {
                debug_assert!(self.readers > 0, "release without hold");
                self.readers -= 1;
                if self.readers > 0 {
                    return Vec::new();
                }
            }
            LockMode::Exclusive => {
                debug_assert!(self.writer, "release without hold");
                self.writer = false;
            }
        }
        let mut woken = Vec::new();
        while let Some(&(actor, m)) = self.waiters.front() {
            match m {
                LockMode::Exclusive => {
                    if woken.is_empty() && self.readers == 0 && !self.writer {
                        self.writer = true;
                        self.waiters.pop_front();
                        woken.push(actor);
                    }
                    break;
                }
                LockMode::Shared => {
                    if self.writer {
                        break;
                    }
                    self.readers += 1;
                    self.waiters.pop_front();
                    woken.push(actor);
                }
            }
        }
        woken
    }

    /// Current reader count.
    pub fn readers(&self) -> usize {
        self.readers
    }

    /// Whether a writer holds the lock.
    pub fn has_writer(&self) -> bool {
        self.writer
    }

    /// Number of queued waiters.
    pub fn queue_len(&self) -> usize {
        self.waiters.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_multiple_readers() {
        let mut l = SimRwLock::new();
        assert!(l.acquire(1, LockMode::Shared));
        assert!(l.acquire(2, LockMode::Shared));
        assert_eq!(l.readers(), 2);
        assert!(l.release(LockMode::Shared).is_empty());
        assert!(l.release(LockMode::Shared).is_empty());
    }

    #[test]
    fn rwlock_writer_excludes() {
        let mut l = SimRwLock::new();
        assert!(l.acquire(1, LockMode::Exclusive));
        assert!(!l.acquire(2, LockMode::Shared));
        assert!(!l.acquire(3, LockMode::Exclusive));
        assert_eq!(l.queue_len(), 2);
        // Release wakes the first waiter only (a reader), then the writer
        // after the reader releases.
        let woken = l.release(LockMode::Exclusive);
        assert_eq!(woken, vec![2]);
        assert_eq!(l.readers(), 1);
        let woken = l.release(LockMode::Shared);
        assert_eq!(woken, vec![3]);
        assert!(l.has_writer());
    }

    #[test]
    fn rwlock_wakes_reader_run() {
        let mut l = SimRwLock::new();
        assert!(l.acquire(0, LockMode::Exclusive));
        assert!(!l.acquire(1, LockMode::Shared));
        assert!(!l.acquire(2, LockMode::Shared));
        assert!(!l.acquire(3, LockMode::Exclusive));
        assert!(!l.acquire(4, LockMode::Shared));
        let woken = l.release(LockMode::Exclusive);
        assert_eq!(woken, vec![1, 2], "reader run stops at the queued writer");
        assert_eq!(l.readers(), 2);
        assert!(l.release(LockMode::Shared).is_empty());
        let woken = l.release(LockMode::Shared);
        assert_eq!(woken, vec![3]);
    }

    #[test]
    fn rwlock_fifo_blocks_new_readers_behind_writer() {
        let mut l = SimRwLock::new();
        assert!(l.acquire(1, LockMode::Shared));
        assert!(!l.acquire(2, LockMode::Exclusive));
        // A new reader may not jump the queued writer.
        assert!(!l.acquire(3, LockMode::Shared));
        assert_eq!(l.queue_len(), 2);
        assert_eq!(l.max_queue, 2);
    }
}
