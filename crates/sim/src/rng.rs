//! A small deterministic PRNG for workloads and fault injection.
//!
//! The repository must build and test without network access, so the
//! simulator carries its own generator instead of depending on the
//! `rand` crate. [`SimRng`] is xoshiro256** (Blackman & Vigna) seeded
//! through SplitMix64 — the same construction `rand`'s `SmallRng` family
//! uses — which gives high-quality 64-bit output from a single `u64`
//! seed while staying a handful of lines of code.
//!
//! Determinism is load-bearing: every workload (GUPS, RedisJMP clients,
//! genome read synthesis) and the crash-fault injection plan derive all
//! of their randomness from an explicit seed, so any failing run can be
//! replayed exactly.

/// Deterministic xoshiro256** generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        SimRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value in `[0, bound)` (Lemire-style, debiased by
    /// widening multiply; `bound` must be nonzero).
    pub fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "bounded(0)");
        // Widening multiply maps the 64-bit output into [0, bound);
        // rejection removes the modulo bias.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform value in the half-open range `lo..hi` (`lo < hi`).
    pub fn gen_range(&mut self, range: core::ops::Range<u64>) -> u64 {
        debug_assert!(range.start < range.end, "empty range");
        range.start + self.bounded(range.end - range.start)
    }

    /// A uniform value in the closed range `lo..=hi`.
    pub fn gen_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi, "empty inclusive range");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.bounded(hi - lo + 1)
    }

    /// A uniform `usize` index in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.bounded(bound as u64) as usize
    }

    /// `true` with probability `num / den` (exact rational sampling).
    pub fn gen_ratio(&mut self, num: u32, den: u32) -> bool {
        debug_assert!(den > 0 && num <= den, "ratio out of range");
        self.bounded(den as u64) < num as u64
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 bits of precision matches f64's mantissa.
        let x = self.next_u64() >> 11;
        (x as f64) < p * (1u64 << 53) as f64
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range_inclusive(5, 6);
            assert!(w == 5 || w == 6);
            let i = rng.index(3);
            assert!(i < 3);
        }
        assert_eq!(rng.gen_range(9..10), 9, "single-value range");
        assert_eq!(rng.gen_range_inclusive(4, 4), 4);
    }

    #[test]
    fn all_values_of_small_range_occur() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..8 reachable: {seen:?}");
    }

    #[test]
    fn ratio_and_bool_probabilities_are_sane() {
        let mut rng = SimRng::seed_from_u64(99);
        let hits = (0..10_000).filter(|_| rng.gen_ratio(1, 4)).count();
        assert!(
            (2_000..3_000).contains(&hits),
            "1/4 ratio gave {hits}/10000"
        );
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.9)).count();
        assert!(hits > 8_500, "p=0.9 gave {hits}/10000");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_ratio(0, 10));
        assert!(rng.gen_ratio(10, 10));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
