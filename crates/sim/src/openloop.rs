//! Open-loop traffic generation: arrival processes decoupled from
//! service completions.
//!
//! The closed loop ([`crate::ClosedLoop`]) structurally cannot overload
//! a system: a client only issues its next request after the previous
//! one returns, so offered load self-throttles to service capacity and
//! queues never grow beyond the client population. Capacity planning
//! needs the opposite — an **open loop**, where arrivals follow an
//! external stochastic process regardless of how the system is doing.
//! Only an open loop exposes tail latency and overload collapse.
//!
//! [`OpenLoop`] generates a deterministic arrival sequence from a seed:
//! each arrival is a `(time, client)` pair, with interarrival gaps drawn
//! from a [`Arrival`] process (Poisson, or bursty on/off-modulated
//! Poisson) and the issuing client drawn uniformly from a population far
//! larger than the machine's core count. The driver is pull-based:
//! benchmarks call [`OpenLoop::next_arrival`] from inside their event
//! handler and schedule the returned arrival, so the event queue holds
//! one pending arrival at a time instead of millions.

use crate::rng::SimRng;

/// Fixed-point denominator for interarrival sampling: gaps are sampled
/// in units of 1/2^16 cycles and accumulated exactly, so arrival times
/// are integers and two runs with one seed are bit-identical.
const GAP_FRAC_BITS: u32 = 16;

/// An arrival process: the distribution of gaps between request
/// arrivals, in cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// Memoryless arrivals at a constant average rate: exponential
    /// interarrival gaps with the given mean (cycles). The standard
    /// model for large independent client populations.
    Poisson {
        /// Mean cycles between arrivals (1 / rate).
        mean_gap: f64,
    },
    /// On/off-modulated Poisson: bursts of `on_cycles` at a *higher*
    /// instantaneous rate separated by silent windows of `off_cycles`.
    /// The mean gap *during a burst* is `mean_gap * on / (on + off)`,
    /// so the long-run average rate matches the plain Poisson process
    /// with the same `mean_gap` — same offered load, burstier shape.
    Bursty {
        /// Long-run mean cycles between arrivals.
        mean_gap: f64,
        /// Length of each burst window in cycles.
        on_cycles: u64,
        /// Length of each silent window in cycles.
        off_cycles: u64,
    },
}

impl Arrival {
    /// Long-run mean interarrival gap in cycles.
    pub fn mean_gap(&self) -> f64 {
        match *self {
            Arrival::Poisson { mean_gap } | Arrival::Bursty { mean_gap, .. } => mean_gap,
        }
    }
}

/// A deterministic open-loop arrival source: `requests` arrivals spread
/// over `clients` client ids.
///
/// # Examples
///
/// ```
/// use sjmp_sim::{Arrival, OpenLoop};
/// let mut src = OpenLoop::new(Arrival::Poisson { mean_gap: 100.0 }, 1000, 50, 7);
/// let mut last = 0;
/// let mut n = 0;
/// while let Some((t, client)) = src.next_arrival() {
///     assert!(t >= last, "arrival times are monotone");
///     assert!(client < 1000);
///     last = t;
///     n += 1;
/// }
/// assert_eq!(n, 50);
/// ```
#[derive(Debug, Clone)]
pub struct OpenLoop {
    kind: Arrival,
    rng: SimRng,
    clients: usize,
    remaining: usize,
    /// Next arrival time in 1/2^16-cycle fixed point.
    clock_fp: u64,
    /// Request ids minted so far; the next arrival gets this id.
    minted: u64,
}

/// A request id minted at open-loop arrival: the 0-based arrival
/// ordinal. Causal trace spans (`Req*` event kinds) carry it in `arg0`
/// so a request's lifecycle can be reassembled from the flat stream.
pub type ReqId = u64;

impl OpenLoop {
    /// An arrival source issuing `requests` arrivals from `clients`
    /// client ids, deterministically derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `clients` is zero or the process's mean gap is not a
    /// positive finite number.
    pub fn new(kind: Arrival, clients: usize, requests: usize, seed: u64) -> Self {
        assert!(clients > 0, "need at least one client");
        let mean = kind.mean_gap();
        assert!(
            mean.is_finite() && mean > 0.0,
            "mean interarrival gap must be positive"
        );
        if let Arrival::Bursty {
            on_cycles,
            off_cycles,
            ..
        } = kind
        {
            assert!(on_cycles > 0, "burst window must be nonempty");
            assert!(off_cycles > 0, "silent window must be nonempty");
        }
        OpenLoop {
            kind,
            rng: SimRng::seed_from_u64(seed),
            clients,
            remaining: requests,
            clock_fp: 0,
            minted: 0,
        }
    }

    /// Number of client ids in the population.
    pub fn clients(&self) -> usize {
        self.clients
    }

    /// Arrivals not yet generated.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// A unit-mean exponential sample with 53 bits of uniformity.
    fn exp_sample(&mut self) -> f64 {
        // u in (0, 1]: never zero, so ln is finite.
        let u = ((self.rng.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64;
        -u.ln()
    }

    /// The next `(time, client)` arrival, or `None` when the request
    /// budget is exhausted. Times are nondecreasing.
    pub fn next_arrival(&mut self) -> Option<(u64, usize)> {
        self.next_arrival_tagged().map(|(_, t, c)| (t, c))
    }

    /// Like [`OpenLoop::next_arrival`], but also mints the arrival's
    /// [`ReqId`] — the 0-based arrival ordinal. The id sequence is
    /// pure bookkeeping: it consumes no randomness, so a tagged and an
    /// untagged drain of the same source produce identical arrival
    /// times and clients.
    pub fn next_arrival_tagged(&mut self) -> Option<(ReqId, u64, usize)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let id = self.minted;
        self.minted += 1;
        let gap = match self.kind {
            Arrival::Poisson { mean_gap } => self.exp_sample() * mean_gap,
            Arrival::Bursty {
                mean_gap,
                on_cycles,
                off_cycles,
                ..
            } => {
                // Inside a burst the instantaneous rate is scaled up so
                // the long-run average matches `mean_gap`.
                let duty = on_cycles as f64 / (on_cycles + off_cycles) as f64;
                self.exp_sample() * mean_gap * duty
            }
        };
        // Exact fixed-point accumulation keeps the sequence bit-stable.
        let gap_fp = (gap * (1u64 << GAP_FRAC_BITS) as f64).max(0.0) as u64;
        self.clock_fp = self.clock_fp.saturating_add(gap_fp.max(1));
        if let Arrival::Bursty {
            on_cycles,
            off_cycles,
            ..
        } = self.kind
        {
            // If the sampled time falls into a silent window, slide it
            // to the start of the next burst.
            let period_fp = (on_cycles + off_cycles) << GAP_FRAC_BITS;
            let on_fp = on_cycles << GAP_FRAC_BITS;
            let phase = self.clock_fp % period_fp;
            if phase >= on_fp {
                self.clock_fp += period_fp - phase;
            }
        }
        let t = self.clock_fp >> GAP_FRAC_BITS;
        let client = self.rng.index(self.clients);
        Some((id, t, client))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_gap_is_close() {
        let n = 20_000usize;
        let mut src = OpenLoop::new(Arrival::Poisson { mean_gap: 500.0 }, 64, n, 42);
        let mut last = 0u64;
        while let Some((t, _)) = src.next_arrival() {
            assert!(t >= last);
            last = t;
        }
        let mean = last as f64 / n as f64;
        assert!(
            (425.0..575.0).contains(&mean),
            "empirical mean gap {mean}, want ~500"
        );
    }

    #[test]
    fn deterministic_for_a_seed() {
        let collect = |seed| {
            let mut src = OpenLoop::new(Arrival::Poisson { mean_gap: 120.0 }, 1000, 500, seed);
            let mut v = Vec::new();
            while let Some(a) = src.next_arrival() {
                v.push(a);
            }
            v
        };
        assert_eq!(collect(9), collect(9));
        assert_ne!(collect(9), collect(10));
    }

    #[test]
    fn clients_cover_the_population() {
        let mut src = OpenLoop::new(Arrival::Poisson { mean_gap: 10.0 }, 8, 2000, 3);
        let mut seen = [false; 8];
        while let Some((_, c)) = src.next_arrival() {
            seen[c] = true;
        }
        assert!(seen.iter().all(|&s| s), "all clients issue: {seen:?}");
    }

    #[test]
    fn bursty_avoids_silent_windows_and_keeps_the_average() {
        let n = 20_000usize;
        let (on, off) = (10_000u64, 30_000u64);
        let mut src = OpenLoop::new(
            Arrival::Bursty {
                mean_gap: 400.0,
                on_cycles: on,
                off_cycles: off,
            },
            64,
            n,
            7,
        );
        let mut last = 0u64;
        while let Some((t, _)) = src.next_arrival() {
            assert!(
                t % (on + off) < on,
                "arrival at {t} lands in a silent window"
            );
            assert!(t >= last);
            last = t;
        }
        let mean = last as f64 / n as f64;
        assert!(
            (320.0..480.0).contains(&mean),
            "long-run mean gap {mean}, want ~400"
        );
    }

    #[test]
    fn tagged_ids_are_the_arrival_ordinals() {
        let mut tagged = OpenLoop::new(Arrival::Poisson { mean_gap: 80.0 }, 16, 100, 5);
        let mut plain = OpenLoop::new(Arrival::Poisson { mean_gap: 80.0 }, 16, 100, 5);
        let mut want_id = 0u64;
        while let Some((id, t, c)) = tagged.next_arrival_tagged() {
            assert_eq!(id, want_id);
            assert_eq!(plain.next_arrival(), Some((t, c)));
            want_id += 1;
        }
        assert_eq!(plain.next_arrival(), None);
    }

    #[test]
    fn budget_is_exact() {
        let mut src = OpenLoop::new(Arrival::Poisson { mean_gap: 50.0 }, 4, 3, 1);
        assert_eq!(src.remaining(), 3);
        assert!(src.next_arrival().is_some());
        assert!(src.next_arrival().is_some());
        assert!(src.next_arrival().is_some());
        assert_eq!(src.next_arrival(), None);
        assert_eq!(src.remaining(), 0);
    }
}
