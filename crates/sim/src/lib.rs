//! # sjmp-sim — the deterministic multi-core simulation engine
//!
//! Every multi-actor experiment in the SpaceJMP reproduction — the
//! Figure 8 GUPS designs, the Figure 10 Redis closed loops, the URPC and
//! message-passing baselines — runs on the primitives in this crate
//! rather than on host threads. Host threads would measure the machine
//! the suite happens to run on; these primitives measure the *modeled*
//! machine, deterministically, so two identical runs produce bit-identical
//! results.
//!
//! The engine has two cooperating halves:
//!
//! * **Time** — [`CycleClock`] is one hardware thread's cycle counter;
//!   [`CoreClocks`] is the full machine's set of per-core counters, where
//!   *global* time is the per-core maximum and blocking interactions are
//!   expressed with [`CoreClocks::catch_up`] (a core that waits for
//!   another jumps forward to the moment the awaited work finished).
//!   [`CoreCtx`] names the hardware thread a piece of work executes on.
//! * **Events** — [`EventQueue`] orders scheduled work by
//!   `(time, insertion order)`; [`Sim`] drains it through a handler;
//!   [`Cores`] models a bounded core pool; [`SimRwLock`] models the FIFO
//!   reader/writer segment lock; [`ClosedLoop`] tracks the classic
//!   closed-loop client population used by the throughput benchmarks;
//!   [`OpenLoop`] generates Poisson or bursty open-loop arrival
//!   sequences for the overload experiments, where offered load is
//!   decoupled from service completions.
//! * **Randomness** — [`SimRng`] is the workspace's seeded PRNG;
//!   workloads, fault plans, and arrival processes all draw from it so
//!   any run can be replayed exactly.
//!
//! The crate is dependency-free and sits below `sjmp-mem`: the MMU, the
//! kernel, and the workloads all charge cycles to clocks defined here.

pub mod clock;
pub mod cores;
pub mod engine;
pub mod event;
pub mod openloop;
pub mod rng;
pub mod rwlock;

pub use clock::{CoreClocks, CoreCtx, CycleClock};
pub use cores::Cores;
pub use engine::{ClosedLoop, Sim};
pub use event::EventQueue;
pub use openloop::{Arrival, OpenLoop, ReqId};
pub use rng::SimRng;
pub use rwlock::{ActorId, LockMode, SimRwLock};
