//! The time-ordered event queue at the heart of the engine.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Time-ordered event queue. Ties break by insertion order, making runs
/// deterministic.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<EventSlot<T>>>,
    seq: u64,
}

/// One scheduled event with its ordering key.
///
/// # Determinism contract
///
/// Events are totally ordered by the key `(time, seq)`: earliest `time`
/// first, and among events scheduled for the same cycle, the one pushed
/// first pops first (`seq` is the queue's monotonically increasing
/// insertion counter). The payload `T` never participates in the
/// comparison, so it needs no `Ord` and — crucially — cannot perturb the
/// order: two runs that push the same events at the same times in the
/// same program order pop them in exactly the same order, which is what
/// keeps every benchmark bit-reproducible.
#[derive(Debug)]
struct EventSlot<T> {
    time: u64,
    seq: u64,
    payload: T,
}

impl<T> EventSlot<T> {
    fn key(&self) -> (u64, u64) {
        (self.time, self.seq)
    }
}

impl<T> PartialEq for EventSlot<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<T> Eq for EventSlot<T> {}
impl<T> PartialOrd for EventSlot<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for EventSlot<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` at absolute `time`.
    pub fn push(&mut self, time: u64, payload: T) {
        self.heap.push(Reverse(EventSlot {
            time,
            seq: self.seq,
            payload,
        }));
        self.seq += 1;
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        self.heap
            .pop()
            .map(|Reverse(slot)| (slot.time, slot.payload))
    }

    /// Next event time without popping.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(slot)| slot.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_queue_orders_by_time_then_insertion() {
        let mut q = EventQueue::new();
        q.push(10, "b");
        q.push(5, "a");
        q.push(10, "c");
        assert_eq!(q.peek_time(), Some(5));
        assert_eq!(q.pop(), Some((5, "a")));
        assert_eq!(q.pop(), Some((10, "b")));
        assert_eq!(q.pop(), Some((10, "c")));
        assert!(q.is_empty());
    }

    #[test]
    fn slot_ordering_is_key_based() {
        // The slot key drives the comparison directly (the old degenerate
        // impl compared every slot equal and leaned on the tuple wrapper);
        // same-time events must still order by insertion.
        let a = EventSlot {
            time: 5,
            seq: 0,
            payload: (),
        };
        let b = EventSlot {
            time: 5,
            seq: 1,
            payload: (),
        };
        let c = EventSlot {
            time: 6,
            seq: 0,
            payload: (),
        };
        assert!(a < b, "ties break by insertion order");
        assert!(b < c, "time dominates insertion order");
        assert_ne!(a, b);
    }

    #[test]
    fn heavy_tie_storm_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..1000 {
            q.push(42, i);
        }
        for i in 0..1000 {
            assert_eq!(q.pop(), Some((42, i)));
        }
    }
}
