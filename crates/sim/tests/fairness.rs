//! Fairness guarantees of the engine primitives the overload path leans
//! on: the admission queue is only bounded if `SimRwLock` hands the lock
//! over in strict FIFO order, and reruns are only bit-identical if
//! `EventQueue` breaks `(time, seq)` ties by insertion order under every
//! interleaving of pushes and pops.

use sjmp_sim::{EventQueue, LockMode, Sim, SimRwLock};

#[test]
fn event_queue_tie_storm_interleaved_with_pops_stays_fifo() {
    // Pushing and popping at one timestamp must preserve program order:
    // the seq counter keeps counting across pops, so later pushes sort
    // after earlier ones even when the heap has drained in between.
    let mut q = EventQueue::new();
    q.push(100, 0u32);
    q.push(100, 1);
    assert_eq!(q.pop(), Some((100, 0)));
    q.push(100, 2);
    q.push(100, 3);
    assert_eq!(q.pop(), Some((100, 1)));
    assert_eq!(q.pop(), Some((100, 2)));
    q.push(100, 4);
    assert_eq!(q.pop(), Some((100, 3)));
    assert_eq!(q.pop(), Some((100, 4)));
    assert_eq!(q.pop(), None);
}

#[test]
fn event_queue_equal_times_never_reorder_across_time_levels() {
    // A mixed workload: ties at several timestamps pushed out of time
    // order. Every tie class must pop in push order.
    let mut q = EventQueue::new();
    for (t, id) in [(5u64, "a0"), (3, "b0"), (5, "a1"), (3, "b1"), (5, "a2")] {
        q.push(t, id);
    }
    let drained: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
    assert_eq!(
        drained,
        vec![(3, "b0"), (3, "b1"), (5, "a0"), (5, "a1"), (5, "a2")]
    );
}

#[test]
fn sim_handler_scheduling_at_now_runs_after_earlier_ties() {
    // An event scheduled *at the current time* from inside the handler
    // must run after events already queued for that time (insertion
    // order), not preempt them — the property the lock-handoff events
    // of the overload engine rely on.
    let mut sim: Sim<&str> = Sim::new();
    sim.schedule(10, "first");
    sim.schedule(10, "second");
    let mut order = Vec::new();
    sim.run(|sim, t, ev| {
        order.push(ev);
        if ev == "first" {
            sim.schedule(t, "follow-on");
        }
    });
    assert_eq!(order, vec!["first", "second", "follow-on"]);
}

#[test]
fn rwlock_writers_hand_off_in_arrival_order() {
    let mut l = SimRwLock::new();
    assert!(l.acquire(0, LockMode::Exclusive));
    for w in 1..=4 {
        assert!(!l.acquire(w, LockMode::Exclusive));
    }
    // Each release wakes exactly the next writer in FIFO order, and the
    // woken writer already holds the lock (handoff semantics).
    let mut granted = Vec::new();
    let mut mode = LockMode::Exclusive;
    loop {
        let woken = l.release(mode);
        if woken.is_empty() {
            break;
        }
        assert_eq!(woken.len(), 1, "one writer at a time");
        assert!(l.has_writer(), "handoff: the woken writer holds the lock");
        granted.push(woken[0]);
        mode = LockMode::Exclusive;
    }
    assert_eq!(granted, vec![1, 2, 3, 4]);
}

#[test]
fn rwlock_no_reader_starvation_of_queued_writer() {
    // Readers arriving after a queued writer must park behind it — a
    // continuous GET stream cannot starve a SET.
    let mut l = SimRwLock::new();
    assert!(l.acquire(1, LockMode::Shared));
    assert!(!l.acquire(2, LockMode::Exclusive));
    for r in 3..=6 {
        assert!(!l.acquire(r, LockMode::Shared), "reader {r} must queue");
    }
    // The reader's release hands the lock to the writer first...
    assert_eq!(l.release(LockMode::Shared), vec![2]);
    assert!(l.has_writer());
    // ...and the writer's release wakes the whole parked reader run.
    assert_eq!(l.release(LockMode::Exclusive), vec![3, 4, 5, 6]);
    assert_eq!(l.readers(), 4);
}

#[test]
fn rwlock_alternating_classes_preserve_fifo_batches() {
    // Queue: W, R, R, W, R — wakeups must come out as [W], [R, R], [W],
    // [R]: writers singly, reader runs maximally but never past the
    // next queued writer.
    let mut l = SimRwLock::new();
    assert!(l.acquire(0, LockMode::Exclusive));
    assert!(!l.acquire(1, LockMode::Exclusive));
    assert!(!l.acquire(2, LockMode::Shared));
    assert!(!l.acquire(3, LockMode::Shared));
    assert!(!l.acquire(4, LockMode::Exclusive));
    assert!(!l.acquire(5, LockMode::Shared));
    assert_eq!(l.max_queue, 5);

    assert_eq!(l.release(LockMode::Exclusive), vec![1]);
    assert_eq!(l.release(LockMode::Exclusive), vec![2, 3]);
    assert!(
        l.release(LockMode::Shared).is_empty(),
        "run not yet drained"
    );
    assert_eq!(l.release(LockMode::Shared), vec![4]);
    assert_eq!(l.release(LockMode::Exclusive), vec![5]);
    assert_eq!(l.release(LockMode::Shared), Vec::<usize>::new());
    assert_eq!(l.queue_len(), 0);
    assert_eq!(l.readers(), 0);
    assert!(!l.has_writer());
}

#[test]
fn rwlock_queue_depth_is_the_admission_signal() {
    // The overload engine bounds admission on queue_len(); it must track
    // parks and wakeups exactly.
    let mut l = SimRwLock::new();
    assert!(l.acquire(0, LockMode::Exclusive));
    for a in 1..=8 {
        assert!(!l.acquire(a, LockMode::Shared));
        assert_eq!(l.queue_len(), a);
    }
    let woken = l.release(LockMode::Exclusive);
    assert_eq!(woken.len(), 8, "whole reader run wakes");
    assert_eq!(l.queue_len(), 0);
    assert_eq!(l.max_queue, 8, "peak depth is retained for reporting");
}
