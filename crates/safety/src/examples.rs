//! Named example IR programs: the shared corpus for tests, docs, and
//! the `sjmp_lint --ir` CI gate.
//!
//! [`healthy`] returns programs that are correct multi-VAS code — the
//! verifier must report **zero** proven-dangling findings on every one
//! of them, and each runs to completion under the interpreter.
//! [`dangling_example`] is the injected bug from the paper's motivation:
//! a VAS-private pointer escapes through a stack slot, the program
//! switches, and the reloaded pointer is dereferenced in the wrong VAS.
//! The verifier reports it with the exact
//! alloc → escape → switch → deref chain.

use crate::ir::{
    AbstractVas, BlockId, FuncId, Function, Inst, Module, Phi, SegName, Site, VasName, VasSet,
};

/// The entry VAS set all examples assume: `{v0}`.
pub fn entry_set() -> VasSet {
    [AbstractVas::Vas(VasName(0))].into_iter().collect()
}

/// All healthy example programs, by name.
pub fn healthy() -> Vec<(&'static str, Module)> {
    vec![
        ("quickstart", quickstart()),
        ("boxed-reload", boxed_reload()),
        ("windowed", windowed()),
        ("call-chain", call_chain()),
        ("phi-merge", phi_merge()),
        ("seg-protocol", seg_protocol()),
        ("producer-consumer", producer_consumer()),
        ("vcast-bridge", vcast_bridge()),
    ]
}

/// `p = malloc; *p = 42; x = *p; ret x` — the README example.
fn quickstart() -> Module {
    let mut m = Module::new();
    let mut f = Function::new("main", 0);
    let p = f.fresh_reg();
    let c = f.fresh_reg();
    let x = f.fresh_reg();
    f.push(BlockId(0), Inst::Malloc { dst: p, size: 8 });
    f.push(BlockId(0), Inst::Const { dst: c, value: 42 });
    f.push(BlockId(0), Inst::Store { addr: p, val: c });
    f.push(BlockId(0), Inst::Load { dst: x, addr: p });
    f.push(BlockId(0), Inst::Ret(Some(x)));
    m.add_function(f);
    m
}

/// A heap pointer parked in a stack slot and reloaded in the *same*
/// VAS: `Analyzed` must check the reload, provenance proves it safe.
fn boxed_reload() -> Module {
    let mut m = Module::new();
    let mut f = Function::new("main", 0);
    let p = f.fresh_reg();
    let slot = f.fresh_reg();
    let c = f.fresh_reg();
    let q = f.fresh_reg();
    let x = f.fresh_reg();
    f.push(BlockId(0), Inst::Malloc { dst: p, size: 8 });
    f.push(BlockId(0), Inst::Alloca { dst: slot, size: 8 });
    f.push(BlockId(0), Inst::Store { addr: slot, val: p });
    f.push(BlockId(0), Inst::Const { dst: c, value: 7 });
    f.push(BlockId(0), Inst::Store { addr: p, val: c });
    f.push(BlockId(0), Inst::Load { dst: q, addr: slot });
    f.push(BlockId(0), Inst::Load { dst: x, addr: q });
    f.push(BlockId(0), Inst::Ret(Some(x)));
    m.add_function(f);
    m
}

/// Two switch windows, each touching only its own VAS's memory.
fn windowed() -> Module {
    let mut m = Module::new();
    let mut f = Function::new("main", 0);
    let c = f.fresh_reg();
    f.push(BlockId(0), Inst::Const { dst: c, value: 1 });
    for vas in 1..=2 {
        let p = f.fresh_reg();
        let x = f.fresh_reg();
        f.push(BlockId(0), Inst::Switch(VasName(vas)));
        f.push(BlockId(0), Inst::Malloc { dst: p, size: 8 });
        f.push(BlockId(0), Inst::Store { addr: p, val: c });
        f.push(BlockId(0), Inst::Load { dst: x, addr: p });
    }
    f.push(BlockId(0), Inst::Ret(None));
    m.add_function(f);
    m
}

/// A heap pointer handed to a callee that dereferences it in the same
/// VAS — interprocedural propagation proves the callee's deref safe.
fn call_chain() -> Module {
    let mut m = Module::new();
    let mut main = Function::new("main", 0);
    let p = main.fresh_reg();
    let c = main.fresh_reg();
    let r = main.fresh_reg();
    main.push(BlockId(0), Inst::Switch(VasName(1)));
    main.push(BlockId(0), Inst::Malloc { dst: p, size: 8 });
    main.push(BlockId(0), Inst::Const { dst: c, value: 11 });
    main.push(BlockId(0), Inst::Store { addr: p, val: c });
    main.push(
        BlockId(0),
        Inst::Call {
            dst: Some(r),
            func: FuncId(1),
            args: vec![p],
        },
    );
    main.push(BlockId(0), Inst::Ret(Some(r)));
    let mut helper = Function::new("read", 1);
    let arg = helper.params[0];
    let x = helper.fresh_reg();
    helper.push(BlockId(0), Inst::Load { dst: x, addr: arg });
    helper.push(BlockId(0), Inst::Ret(Some(x)));
    m.add_function(main);
    m.add_function(helper);
    m
}

/// Both branches allocate in the same VAS; the phi-joined pointer is
/// dereferenced there.
fn phi_merge() -> Module {
    let mut m = Module::new();
    let mut f = Function::new("main", 0);
    let cond = f.fresh_reg();
    let p1 = f.fresh_reg();
    let p2 = f.fresh_reg();
    let p = f.fresh_reg();
    let c = f.fresh_reg();
    let x = f.fresh_reg();
    let t = f.add_block();
    let e = f.add_block();
    let j = f.add_block();
    f.push(BlockId(0), Inst::Switch(VasName(1)));
    f.push(
        BlockId(0),
        Inst::Const {
            dst: cond,
            value: 1,
        },
    );
    f.push(
        BlockId(0),
        Inst::CondBr {
            cond,
            then_bb: t,
            else_bb: e,
        },
    );
    f.push(t, Inst::Malloc { dst: p1, size: 8 });
    f.push(t, Inst::Br(j));
    f.push(e, Inst::Malloc { dst: p2, size: 8 });
    f.push(e, Inst::Br(j));
    f.push_phi(
        j,
        Phi {
            dst: p,
            incomings: vec![(t, p1), (e, p2)],
        },
    );
    f.push(j, Inst::Const { dst: c, value: 3 });
    f.push(j, Inst::Store { addr: p, val: c });
    f.push(j, Inst::Load { dst: x, addr: p });
    f.push(j, Inst::Ret(Some(x)));
    m.add_function(f);
    m
}

/// Locked access to a shared segment: all common-region, all safe.
fn seg_protocol() -> Module {
    let mut m = Module::new();
    let mut f = Function::new("main", 0);
    let seg = f.fresh_reg();
    let c = f.fresh_reg();
    let x = f.fresh_reg();
    f.push(BlockId(0), Inst::Lock(SegName(0)));
    f.push(
        BlockId(0),
        Inst::SegAddr {
            dst: seg,
            seg: SegName(0),
        },
    );
    f.push(BlockId(0), Inst::Const { dst: c, value: 5 });
    f.push(BlockId(0), Inst::Store { addr: seg, val: c });
    f.push(BlockId(0), Inst::Load { dst: x, addr: seg });
    f.push(BlockId(0), Inst::Unlock(SegName(0)));
    f.push(BlockId(0), Inst::Ret(Some(x)));
    m.add_function(f);
    m
}

/// A producer publishes a VAS-1 heap pointer through a shared segment;
/// the consumer attaches VAS 1 *before* dereferencing — the disciplined
/// version of the pattern [`dangling_example`] gets wrong.
fn producer_consumer() -> Module {
    let mut m = Module::new();
    let mut main = Function::new("main", 0);
    let seg = main.fresh_reg();
    let p = main.fresh_reg();
    let c = main.fresh_reg();
    let r = main.fresh_reg();
    main.push(BlockId(0), Inst::Switch(VasName(1)));
    main.push(BlockId(0), Inst::Malloc { dst: p, size: 8 });
    main.push(BlockId(0), Inst::Const { dst: c, value: 9 });
    main.push(BlockId(0), Inst::Store { addr: p, val: c });
    main.push(BlockId(0), Inst::Lock(SegName(1)));
    main.push(
        BlockId(0),
        Inst::SegAddr {
            dst: seg,
            seg: SegName(1),
        },
    );
    main.push(BlockId(0), Inst::Store { addr: seg, val: p });
    main.push(BlockId(0), Inst::Unlock(SegName(1)));
    main.push(
        BlockId(0),
        Inst::Call {
            dst: Some(r),
            func: FuncId(1),
            args: vec![],
        },
    );
    main.push(BlockId(0), Inst::Ret(Some(r)));
    let mut consumer = Function::new("consumer", 0);
    let seg2 = consumer.fresh_reg();
    let q = consumer.fresh_reg();
    let x = consumer.fresh_reg();
    consumer.push(BlockId(0), Inst::Switch(VasName(1)));
    consumer.push(BlockId(0), Inst::Lock(SegName(1)));
    consumer.push(
        BlockId(0),
        Inst::SegAddr {
            dst: seg2,
            seg: SegName(1),
        },
    );
    consumer.push(BlockId(0), Inst::Load { dst: q, addr: seg2 });
    consumer.push(BlockId(0), Inst::Load { dst: x, addr: q });
    consumer.push(BlockId(0), Inst::Unlock(SegName(1)));
    consumer.push(BlockId(0), Inst::Ret(Some(x)));
    m.add_function(main);
    m.add_function(consumer);
    m
}

/// `vcast` used legitimately: retagging a pointer to the VAS it really
/// belongs to, then dereferencing there.
fn vcast_bridge() -> Module {
    let mut m = Module::new();
    let mut f = Function::new("main", 0);
    let p = f.fresh_reg();
    let c = f.fresh_reg();
    let q = f.fresh_reg();
    let x = f.fresh_reg();
    f.push(BlockId(0), Inst::Switch(VasName(1)));
    f.push(BlockId(0), Inst::Malloc { dst: p, size: 8 });
    f.push(BlockId(0), Inst::Const { dst: c, value: 6 });
    f.push(BlockId(0), Inst::Store { addr: p, val: c });
    f.push(
        BlockId(0),
        Inst::VCast {
            dst: q,
            src: p,
            vas: VasName(1),
        },
    );
    f.push(BlockId(0), Inst::Load { dst: x, addr: q });
    f.push(BlockId(0), Inst::Ret(Some(x)));
    m.add_function(f);
    m
}

/// The injected bug: a VAS-0 heap pointer escapes into a stack slot,
/// the program switches to VAS 1, reloads the pointer, and both
/// dereferences it and stores through it. The verifier reports both
/// sites as proven-dangling; the load's chain is exactly
/// `alloc@0:bb0[0] -> escape@0:bb0[2] -> switch@0:bb0[3] -> load@0:bb0[5]`.
pub fn dangling_example() -> Module {
    let mut m = Module::new();
    let mut f = Function::new("main", 0);
    let p = f.fresh_reg();
    let slot = f.fresh_reg();
    let q = f.fresh_reg();
    let x = f.fresh_reg();
    let c = f.fresh_reg();
    f.push(BlockId(0), Inst::Malloc { dst: p, size: 8 }); // [0] alloc
    f.push(BlockId(0), Inst::Alloca { dst: slot, size: 8 }); // [1]
    f.push(BlockId(0), Inst::Store { addr: slot, val: p }); // [2] escape
    f.push(BlockId(0), Inst::Switch(VasName(1))); // [3] switch
    f.push(BlockId(0), Inst::Load { dst: q, addr: slot }); // [4]
    f.push(BlockId(0), Inst::Load { dst: x, addr: q }); // [5] dangling load
    f.push(BlockId(0), Inst::Const { dst: c, value: 1 }); // [6]
    f.push(BlockId(0), Inst::Store { addr: q, val: c }); // [7] dangling store
    f.push(BlockId(0), Inst::Ret(None));
    m.add_function(f);
    m
}

/// The sites of [`dangling_example`]'s chain, for tests and docs.
pub mod dangling_sites {
    use super::Site;
    /// `p = malloc` in VAS 0.
    pub const ALLOC: Site = Site {
        func: 0,
        block: 0,
        idx: 0,
    };
    /// `*slot = p` — the escape store.
    pub const ESCAPE: Site = Site {
        func: 0,
        block: 0,
        idx: 2,
    };
    /// `switch v1`.
    pub const SWITCH: Site = Site {
        func: 0,
        block: 0,
        idx: 3,
    };
    /// `x = *q` — the dangling dereference.
    pub const DEREF: Site = Site {
        func: 0,
        block: 0,
        idx: 5,
    };
    /// `*q = 1` — the dangling store.
    pub const STORE: Site = Site {
        func: 0,
        block: 0,
        idx: 7,
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;
    use crate::provenance::{verify, SiteClass};

    /// Every healthy example runs to completion and has zero findings.
    #[test]
    fn healthy_examples_run_and_verify_clean() {
        for (name, m) in healthy() {
            let mut interp = Interp::new(&m, VasName(0));
            assert!(interp.run(&[]).is_ok(), "{name} should run clean");
            let report = verify(&m, entry_set());
            assert!(
                report.findings.is_empty(),
                "{name} should have no findings: {:?}",
                report.findings
            );
        }
    }

    /// The injected bug is caught with the exact chain.
    #[test]
    fn dangling_example_reports_exact_chain() {
        let m = dangling_example();
        let report = verify(&m, entry_set());
        let load = report
            .findings
            .iter()
            .find(|f| f.site == dangling_sites::DEREF)
            .expect("dangling load finding");
        assert_eq!(load.alloc_sites, vec![dangling_sites::ALLOC]);
        assert_eq!(load.escape_sites, vec![dangling_sites::ESCAPE]);
        assert_eq!(load.switch_sites, vec![dangling_sites::SWITCH]);
        assert_eq!(
            load.chain,
            "alloc@0:bb0[0] -> escape@0:bb0[2] -> switch@0:bb0[3] -> load@0:bb0[5]: \
             pointer valid in {v0}, current VAS {v1}"
        );
        let store = report
            .findings
            .iter()
            .find(|f| f.site == dangling_sites::STORE)
            .expect("dangling store finding");
        assert_eq!(store.kind, "store");
        assert_eq!(report.count(SiteClass::ProvenDangling), 2);
    }
}
