//! Seeded IR program generator and the soundness self-validation
//! harness — the analyzer fuzzing itself, fully offline.
//!
//! [`generate`] builds a deterministic random module from a [`SimRng`]
//! seed: multiple functions (helpers drawn from small templates,
//! including a self-recursive one), branches with phi joins across
//! `switch` edges, heap/stack/segment allocation, pointer escapes
//! through common slots, shared segments and VAS memory, and `vcast`
//! reads. Programs may be safe or unsafe — both are wanted.
//!
//! One discipline is deliberate: a register used in an *address*
//! position always holds a runtime pointer (pointer containers only
//! ever receive pointer stores, and `vcast` pointers are only read
//! through, never stored through). Without it the generator would
//! trip a known imprecision of the *intraprocedural* policy — an
//! integer stored into a VAS cell can be reloaded with
//! `VASvalid = VASin` and dereferenced past an elided check — which is
//! `Analyzed`'s latent hole, not a property of the provenance pass
//! this harness is validating.
//!
//! [`validate_seed`] then closes the loop for one program:
//!
//! 1. run the **uninstrumented** program under the interpreter with a
//!    site log;
//! 2. any VAS-rule fault must land on a site where the
//!    [`CheckPolicy::Interprocedural`] plan kept a check — no
//!    statically-elided check would ever have fired;
//! 3. no proven-dangling site may execute successfully, and no
//!    proven-safe site may fault on the VAS rules;
//! 4. the instrumented program must be observationally equivalent
//!    (same result, or an inserted check catching the same fault).

use sjmp_sim::SimRng;

use crate::analysis::Analysis;
use crate::checks::{apply_plan, plan_checks, CheckPolicy};
use crate::interp::{Interp, Trap};
use crate::ir::{
    AbstractVas, BlockId, FuncId, Function, Inst, Module, Phi, Reg, SegName, VasName, VasSet,
};
use crate::provenance::{verify_with, SiteClass};

/// Entry VAS for generated programs: `{v0}`.
pub fn entry_set() -> VasSet {
    [AbstractVas::Vas(VasName(0))].into_iter().collect()
}

/// Helper templates the generator can instantiate.
#[derive(Clone, Copy, PartialEq, Eq)]
enum HelperKind {
    /// `id(p) = p`.
    Identity,
    /// `read(p) = *p`.
    Deref,
    /// `put(p) { *p = k; ret p }`.
    StoreConst,
    /// `sw(p) { switch v; ret p }`.
    Switcher,
    /// `box(p) { slot = alloca; *slot = p; ret *slot }`.
    Boxer,
    /// `rec(f, p) { if f { ret rec(0, p) } else { ret p } }`.
    Recursive,
}

struct HelperSig {
    kind: HelperKind,
    id: FuncId,
}

fn build_helper(kind: HelperKind, id: FuncId, rng: &mut SimRng) -> Function {
    match kind {
        HelperKind::Identity => {
            let mut f = Function::new("id", 1);
            let p = f.params[0];
            f.push(BlockId(0), Inst::Ret(Some(p)));
            f
        }
        HelperKind::Deref => {
            let mut f = Function::new("read", 1);
            let p = f.params[0];
            let x = f.fresh_reg();
            f.push(BlockId(0), Inst::Load { dst: x, addr: p });
            f.push(BlockId(0), Inst::Ret(Some(x)));
            f
        }
        HelperKind::StoreConst => {
            let mut f = Function::new("put", 1);
            let p = f.params[0];
            let c = f.fresh_reg();
            f.push(
                BlockId(0),
                Inst::Const {
                    dst: c,
                    value: rng.gen_range(0..100),
                },
            );
            f.push(BlockId(0), Inst::Store { addr: p, val: c });
            f.push(BlockId(0), Inst::Ret(Some(p)));
            f
        }
        HelperKind::Switcher => {
            let mut f = Function::new("sw", 1);
            let p = f.params[0];
            f.push(
                BlockId(0),
                Inst::Switch(VasName(rng.gen_range(0..3) as u32)),
            );
            f.push(BlockId(0), Inst::Ret(Some(p)));
            f
        }
        HelperKind::Boxer => {
            let mut f = Function::new("boxit", 1);
            let p = f.params[0];
            let slot = f.fresh_reg();
            let q = f.fresh_reg();
            f.push(BlockId(0), Inst::Alloca { dst: slot, size: 8 });
            f.push(BlockId(0), Inst::Store { addr: slot, val: p });
            f.push(BlockId(0), Inst::Load { dst: q, addr: slot });
            f.push(BlockId(0), Inst::Ret(Some(q)));
            f
        }
        HelperKind::Recursive => {
            let mut f = Function::new("rec", 2);
            let flag = f.params[0];
            let p = f.params[1];
            let rec = f.add_block();
            let base = f.add_block();
            f.push(
                BlockId(0),
                Inst::CondBr {
                    cond: flag,
                    then_bb: rec,
                    else_bb: base,
                },
            );
            let zero = f.fresh_reg();
            let r = f.fresh_reg();
            f.push(
                rec,
                Inst::Const {
                    dst: zero,
                    value: 0,
                },
            );
            f.push(
                rec,
                Inst::Call {
                    dst: Some(r),
                    func: id,
                    args: vec![zero, p],
                },
            );
            f.push(rec, Inst::Ret(Some(r)));
            f.push(base, Inst::Ret(Some(p)));
            f
        }
    }
}

/// Generator state for `main`.
struct Gen {
    f: Function,
    cur: BlockId,
    /// Pointers to cells holding integers (heap or vcast-readable).
    cells: Vec<Reg>,
    /// Pointers to containers that only ever receive pointer stores.
    boxes: Vec<Reg>,
    /// Common containers (alloca/segaddr) for pointer stores.
    ptr_slots: Vec<Reg>,
    /// Common containers for integer stores.
    int_slots: Vec<Reg>,
    /// Integer registers.
    ints: Vec<Reg>,
    /// `vcast` results — read-only derefs.
    vcasts: Vec<Reg>,
    diamonds: usize,
}

impl Gen {
    fn pick(rng: &mut SimRng, pool: &[Reg]) -> Option<Reg> {
        if pool.is_empty() {
            None
        } else {
            Some(pool[rng.gen_range(0..pool.len() as u64) as usize])
        }
    }

    fn push(&mut self, inst: Inst) {
        self.f.push(self.cur, inst);
    }
}

/// Generates a deterministic random module from `seed`.
pub fn generate(seed: u64) -> Module {
    let mut rng = SimRng::seed_from_u64(seed);
    let n_helpers = rng.gen_range(0..3) as usize;
    let kinds = [
        HelperKind::Identity,
        HelperKind::Deref,
        HelperKind::StoreConst,
        HelperKind::Switcher,
        HelperKind::Boxer,
        HelperKind::Recursive,
    ];
    let helpers: Vec<HelperSig> = (0..n_helpers)
        .map(|i| HelperSig {
            kind: kinds[rng.gen_range(0..kinds.len() as u64) as usize],
            id: FuncId((i + 1) as u32),
        })
        .collect();

    let mut g = Gen {
        f: Function::new("main", 0),
        cur: BlockId(0),
        cells: Vec::new(),
        boxes: Vec::new(),
        ptr_slots: Vec::new(),
        int_slots: Vec::new(),
        ints: Vec::new(),
        vcasts: Vec::new(),
        diamonds: 0,
    };
    // Seed the pools so early actions have operands.
    let c0 = g.f.fresh_reg();
    let m0 = g.f.fresh_reg();
    let s0 = g.f.fresh_reg();
    g.push(Inst::Const { dst: c0, value: 1 });
    g.push(Inst::Malloc { dst: m0, size: 8 });
    g.push(Inst::Alloca { dst: s0, size: 8 });
    g.ints.push(c0);
    g.cells.push(m0);
    g.ptr_slots.push(s0);

    let n_actions = 6 + rng.gen_range(0..20) as usize;
    for _ in 0..n_actions {
        step(&mut g, &mut rng, &helpers);
    }
    let ret = Gen::pick(&mut rng, &g.ints);
    g.push(Inst::Ret(ret));

    let mut m = Module::new();
    m.add_function(g.f);
    for h in &helpers {
        m.add_function(build_helper(h.kind, h.id, &mut rng));
    }
    m
}

fn step(g: &mut Gen, rng: &mut SimRng, helpers: &[HelperSig]) {
    match rng.gen_range(0..13) {
        // switch v
        0 => {
            let v = VasName(rng.gen_range(0..3) as u32);
            g.push(Inst::Switch(v));
        }
        // heap allocation: an int cell or a pointer box
        1 => {
            let dst = g.f.fresh_reg();
            g.push(Inst::Malloc { dst, size: 8 });
            if rng.gen_range(0..3) == 0 {
                g.boxes.push(dst);
            } else {
                g.cells.push(dst);
            }
        }
        // common container: alloca or segaddr
        2 => {
            let dst = g.f.fresh_reg();
            if rng.gen_range(0..2) == 0 {
                g.push(Inst::Alloca { dst, size: 8 });
            } else {
                g.push(Inst::SegAddr {
                    dst,
                    seg: SegName(rng.gen_range(0..2) as u32),
                });
            }
            if rng.gen_range(0..2) == 0 {
                g.ptr_slots.push(dst);
            } else {
                g.int_slots.push(dst);
            }
        }
        // integer constant
        3 => {
            let dst = g.f.fresh_reg();
            g.push(Inst::Const {
                dst,
                value: rng.gen_range(0..64),
            });
            g.ints.push(dst);
        }
        // *cell = int
        4 => {
            let addrs: Vec<Reg> = g.cells.iter().chain(&g.int_slots).copied().collect();
            if let (Some(addr), Some(val)) = (Gen::pick(rng, &addrs), Gen::pick(rng, &g.ints)) {
                g.push(Inst::Store { addr, val });
            }
        }
        // int = *cell (or through a vcast)
        5 => {
            let addrs: Vec<Reg> = g
                .cells
                .iter()
                .chain(&g.int_slots)
                .chain(&g.vcasts)
                .copied()
                .collect();
            if let Some(addr) = Gen::pick(rng, &addrs) {
                let dst = g.f.fresh_reg();
                g.push(Inst::Load { dst, addr });
                g.ints.push(dst);
            }
        }
        // *container = cell-pointer (the escape store)
        6 => {
            let addrs: Vec<Reg> = g
                .ptr_slots
                .iter()
                .chain(&g.boxes)
                .chain(&g.cells)
                .copied()
                .collect();
            if let (Some(addr), Some(val)) = (Gen::pick(rng, &addrs), Gen::pick(rng, &g.cells)) {
                g.push(Inst::Store { addr, val });
            }
        }
        // ptr = *container (reload an escaped pointer)
        7 => {
            let addrs: Vec<Reg> = g.ptr_slots.iter().chain(&g.boxes).copied().collect();
            if let Some(addr) = Gen::pick(rng, &addrs) {
                let dst = g.f.fresh_reg();
                g.push(Inst::Load { dst, addr });
                g.cells.push(dst);
            }
        }
        // copy a pointer
        8 => {
            if let Some(src) = Gen::pick(rng, &g.cells) {
                let dst = g.f.fresh_reg();
                g.push(Inst::Copy { dst, src });
                g.cells.push(dst);
            }
        }
        // vcast (read-only: stores through it would poison typing)
        9 => {
            if let Some(src) = Gen::pick(rng, &g.cells) {
                let dst = g.f.fresh_reg();
                g.push(Inst::VCast {
                    dst,
                    src,
                    vas: VasName(rng.gen_range(0..3) as u32),
                });
                g.vcasts.push(dst);
            }
        }
        // lock/unlock a segment (paired, so no leak traps)
        10 => {
            let s = SegName(rng.gen_range(0..2) as u32);
            g.push(Inst::Lock(s));
            g.push(Inst::Unlock(s));
        }
        // call a helper
        11 => {
            if helpers.is_empty() {
                return;
            }
            let h = &helpers[rng.gen_range(0..helpers.len() as u64) as usize];
            let Some(p) = Gen::pick(rng, &g.cells) else {
                return;
            };
            let dst = g.f.fresh_reg();
            let args = match h.kind {
                HelperKind::Recursive => {
                    let flag = g.f.fresh_reg();
                    g.push(Inst::Const {
                        dst: flag,
                        value: rng.gen_range(0..2),
                    });
                    vec![flag, p]
                }
                _ => vec![p],
            };
            g.push(Inst::Call {
                dst: Some(dst),
                func: h.id,
                args,
            });
            // Deref returns the loaded integer; everything else returns
            // a cell pointer.
            if h.kind == HelperKind::Deref {
                g.ints.push(dst);
            } else {
                g.cells.push(dst);
            }
        }
        // a diamond: both arms switch and allocate, phi-join the results
        _ => {
            if g.diamonds >= 2 {
                return;
            }
            g.diamonds += 1;
            let cond = g.f.fresh_reg();
            g.push(Inst::Const {
                dst: cond,
                value: rng.gen_range(0..2),
            });
            let t = g.f.add_block();
            let e = g.f.add_block();
            let j = g.f.add_block();
            g.push(Inst::CondBr {
                cond,
                then_bb: t,
                else_bb: e,
            });
            let p1 = g.f.fresh_reg();
            let p2 = g.f.fresh_reg();
            let p = g.f.fresh_reg();
            let v1 = VasName(rng.gen_range(0..3) as u32);
            let v2 = VasName(rng.gen_range(0..3) as u32);
            g.f.push(t, Inst::Switch(v1));
            g.f.push(t, Inst::Malloc { dst: p1, size: 8 });
            g.f.push(t, Inst::Br(j));
            g.f.push(e, Inst::Switch(v2));
            g.f.push(e, Inst::Malloc { dst: p2, size: 8 });
            g.f.push(e, Inst::Br(j));
            g.f.push_phi(
                j,
                Phi {
                    dst: p,
                    incomings: vec![(t, p1), (e, p2)],
                },
            );
            g.cur = j;
            g.cells.push(p);
        }
    }
}

/// Outcome of validating one generated program.
#[derive(Debug, Clone, Default)]
pub struct SeedOutcome {
    /// Program ran to completion (vs. trapped).
    pub ran_ok: bool,
    /// Memory-operation sites in the program.
    pub mem_sites: usize,
    /// Sites proven safe / dangling by the verifier.
    pub proven_safe: usize,
    /// Sites proven dangling.
    pub proven_dangling: usize,
    /// Proven-dangling sites that were reached and did fault.
    pub dangling_confirmed: usize,
    /// Checks `Interprocedural` elided beyond `Analyzed`.
    pub extra_elisions: usize,
}

/// Validates the analyzer against the interpreter for one seed.
///
/// # Errors
///
/// Returns a description of the first soundness violation found: an
/// elided check that would have fired, a proven-safe site that faulted,
/// a proven-dangling site that executed, or an instrumented run that
/// diverged from the uninstrumented one.
pub fn validate_seed(seed: u64) -> Result<SeedOutcome, String> {
    let module = generate(seed);
    let analysis = Analysis::run(&module, entry_set());
    let report = verify_with(&module, &analysis);
    let analyzed = plan_checks(&module, &analysis, CheckPolicy::Analyzed);
    let plan = plan_checks(&module, &analysis, CheckPolicy::Interprocedural);

    let mut outcome = SeedOutcome {
        mem_sites: report.mem_ops(),
        proven_safe: report.count(SiteClass::ProvenSafe),
        proven_dangling: report.count(SiteClass::ProvenDangling),
        extra_elisions: (analyzed.report.deref_checks + analyzed.report.store_checks)
            - (plan.report.deref_checks + plan.report.store_checks),
        ..SeedOutcome::default()
    };

    let mut plain = Interp::new(&module, VasName(0))
        .with_site_log()
        .with_step_limit(100_000);
    let plain_result = plain.run(&[]);
    outcome.ran_ok = plain_result.is_ok();
    let log = plain.site_log().expect("site log enabled").clone();

    // 1. No elided check may ever have fired: a VAS-rule fault must land
    //    where the plan kept the matching check.
    if let Err(trap) = &plain_result {
        if let Some(site) = log.fault {
            let decision = plan.decision_at(site);
            let covered = match trap {
                Trap::UnsafeDeref { .. } => decision.need_deref,
                Trap::UnsafeStore { .. } => decision.need_store,
                Trap::NotAPointer => decision.need_deref || decision.need_store,
                _ => true,
            };
            if !covered {
                return Err(format!(
                    "seed {seed}: {trap} at {site} but the Interprocedural plan elided the check"
                ));
            }
            // 2. Proven-safe sites must never fault on the VAS rules.
            if matches!(
                trap,
                Trap::UnsafeDeref { .. } | Trap::UnsafeStore { .. } | Trap::NotAPointer
            ) {
                if let Some(v) = report.verdict_at(site) {
                    if v.class == SiteClass::ProvenSafe {
                        return Err(format!(
                            "seed {seed}: proven-safe site {site} faulted with {trap}"
                        ));
                    }
                }
            }
        }
    }

    // 3. Proven-dangling sites must fault whenever reached.
    for verdict in &report.verdicts {
        if verdict.class == SiteClass::ProvenDangling {
            if log.executed_ok.contains(&verdict.site) {
                return Err(format!(
                    "seed {seed}: proven-dangling site {} executed successfully",
                    verdict.site
                ));
            }
            if log.fault == Some(verdict.site) {
                outcome.dangling_confirmed += 1;
            }
        }
    }

    // 4. Instrumentation must not change observable behavior.
    let mut instrumented = module.clone();
    apply_plan(&mut instrumented, &plan);
    let mut checked = Interp::new(&instrumented, VasName(0)).with_step_limit(100_000);
    let checked_result = checked.run(&[]);
    let equivalent = match (&plain_result, &checked_result) {
        (Ok(a), Ok(b)) => a == b,
        (Err(Trap::UnsafeDeref { .. }) | Err(Trap::UnsafeStore { .. }), Err(t)) => {
            matches!(t, Trap::CheckFailed { .. })
        }
        (Err(Trap::NotAPointer), Err(t)) => {
            matches!(t, Trap::CheckFailed { .. } | Trap::NotAPointer)
        }
        (Err(a), Err(b)) => a == b,
        _ => false,
    };
    if !equivalent {
        return Err(format!(
            "seed {seed}: instrumented run diverged: plain {plain_result:?} vs checked {checked_result:?}"
        ));
    }
    Ok(outcome)
}

/// Aggregate result of a [`validate_seed`] batch.
#[derive(Debug, Clone, Default)]
pub struct SoundnessReport {
    /// Programs generated and validated.
    pub programs: usize,
    /// Programs that ran to completion uninstrumented.
    pub ran_ok: usize,
    /// Total memory-operation sites across all programs.
    pub mem_sites: usize,
    /// Sites proven safe.
    pub proven_safe: usize,
    /// Sites proven dangling.
    pub proven_dangling: usize,
    /// Proven-dangling sites observed to fault at runtime.
    pub dangling_confirmed: usize,
    /// Checks elided beyond `Analyzed` across all programs.
    pub extra_elisions: usize,
    /// Soundness violations (must be empty).
    pub violations: Vec<String>,
}

/// Runs [`validate_seed`] over a seed range and aggregates.
pub fn validate_batch(seeds: std::ops::Range<u64>) -> SoundnessReport {
    let mut report = SoundnessReport::default();
    for seed in seeds {
        report.programs += 1;
        match validate_seed(seed) {
            Ok(o) => {
                report.ran_ok += usize::from(o.ran_ok);
                report.mem_sites += o.mem_sites;
                report.proven_safe += o.proven_safe;
                report.proven_dangling += o.proven_dangling;
                report.dangling_confirmed += o.dangling_confirmed;
                report.extra_elisions += o.extra_elisions;
            }
            Err(v) => report.violations.push(v),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Generation is deterministic per seed.
    #[test]
    fn generation_is_deterministic() {
        for seed in 0..16 {
            let a = format!("{}", generate(seed));
            let b = format!("{}", generate(seed));
            assert_eq!(a, b);
        }
    }

    /// A quick smoke batch (the full 500-seed run lives in the
    /// verify_soundness integration test).
    #[test]
    fn small_batch_is_sound() {
        let report = validate_batch(0..64);
        assert!(
            report.violations.is_empty(),
            "violations: {:#?}",
            report.violations
        );
        assert_eq!(report.programs, 64);
        assert!(report.mem_sites > 0);
    }
}
