//! The `VASvalid` / `VASin` / `VASout` dataflow analysis of Section 4.3.
//!
//! "The analysis begins by finding the potentially active VASes at each
//! program point and the VASes each pointer may be valid in." The transfer
//! functions follow Figure 5 exactly:
//!
//! | instruction      | impact                                            |
//! |------------------|---------------------------------------------------|
//! | `switch v`       | `VASout(i) = {v}`                                 |
//! | `x = vcast y v`  | `VASvalid(x) = {v}`                               |
//! | `x = alloca`     | `VASvalid(x) = vcommon`                           |
//! | `x = global`     | `VASvalid(x) = vcommon`                           |
//! | `x = malloc`     | `VASvalid(x) = VASin(i)`                          |
//! | `x = y`          | `VASvalid(x) = VASvalid(y)`                       |
//! | `x = phi y z...` | union of incoming `VASvalid`                      |
//! | `x = *y`         | `VASin(i)`, or `vunknown` for common-region loads |
//! | `*x = y`         | no impact                                         |
//! | `x = foo(...)`   | propagate into params / out of returns            |
//! | `ret x`          | update callee summaries                           |
//!
//! Sets only grow, so a round-robin fixpoint over the whole module
//! terminates; interprocedural propagation is context-insensitive ("VASes
//! of pointers across function boundaries are tracked via a global
//! array" — our per-function summaries play that role).

use std::collections::HashMap;

use crate::ir::{AbstractVas, BlockId, Function, Inst, Module, Reg, VasSet};

/// Analysis results for one module.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// `VASvalid` per function, per register. Registers absent from the
    /// map are not pointers.
    pub valid: Vec<HashMap<Reg, VasSet>>,
    /// `VASin` per function, per block, per instruction index.
    pub vas_in: Vec<Vec<Vec<VasSet>>>,
    /// VAS set at each function's entry (union over callsites; function 0
    /// gets the caller-provided entry set).
    pub entry: Vec<VasSet>,
    /// VAS set at each function's returns.
    pub exit: Vec<VasSet>,
    /// `VASvalid` of each function's return value.
    pub ret_valid: Vec<VasSet>,
    /// Fixpoint iterations used.
    pub iterations: u32,
}

impl Analysis {
    /// Runs the analysis with `main` entered in `entry_vas`.
    ///
    /// # Panics
    ///
    /// Panics if the fixpoint fails to converge within a generous bound
    /// (which would indicate a non-monotone transfer bug).
    pub fn run(module: &Module, entry_vas: VasSet) -> Analysis {
        let n = module.functions.len();
        let mut a = Analysis {
            valid: vec![HashMap::new(); n],
            vas_in: module
                .functions
                .iter()
                .map(|f| {
                    f.blocks
                        .iter()
                        .map(|b| vec![VasSet::new(); b.insts.len()])
                        .collect()
                })
                .collect(),
            entry: vec![VasSet::new(); n],
            exit: vec![VasSet::new(); n],
            ret_valid: vec![VasSet::new(); n],
            iterations: 0,
        };
        a.entry[0] = entry_vas;
        let limit = 64 + module.inst_count() as u32;
        loop {
            a.iterations += 1;
            assert!(a.iterations <= limit, "analysis failed to converge");
            let mut changed = false;
            for (fi, func) in module.functions.iter().enumerate() {
                changed |= a.process_function(module, fi, func);
            }
            if !changed {
                return a;
            }
        }
    }

    /// The `VASvalid` set of a register (empty = not a pointer).
    pub fn valid_of(&self, func: usize, reg: Reg) -> VasSet {
        self.valid[func].get(&reg).cloned().unwrap_or_default()
    }

    /// The `VASin` set of an instruction.
    pub fn vas_in_of(&self, func: usize, bb: BlockId, idx: usize) -> &VasSet {
        &self.vas_in[func][bb.0 as usize][idx]
    }

    fn union_into(dst: &mut VasSet, src: &VasSet) -> bool {
        let before = dst.len();
        dst.extend(src.iter().copied());
        dst.len() != before
    }

    fn add_valid(&mut self, func: usize, reg: Reg, set: &VasSet) -> bool {
        if set.is_empty() {
            return false;
        }
        let entry = self.valid[func].entry(reg).or_default();
        let before = entry.len();
        entry.extend(set.iter().copied());
        entry.len() != before
    }

    fn process_function(&mut self, module: &Module, fi: usize, func: &Function) -> bool {
        let mut changed = false;
        // Block-in sets: entry block starts from the function entry set;
        // others from the union of predecessor outs. We recompute
        // block-outs as we go, iterating blocks in order (the outer
        // fixpoint handles back edges).
        let preds = func.predecessors();
        let mut block_out: Vec<VasSet> = vec![VasSet::new(); func.blocks.len()];
        // Seed block_out from the previously recorded vas_in of each
        // block's terminator so back edges see last iteration's values.
        for (bi, b) in func.blocks.iter().enumerate() {
            if let Some(last) = b.insts.len().checked_sub(1) {
                block_out[bi] = self.vas_in[fi][bi][last].clone();
                if let Some(Inst::Switch(v)) = b.insts.last() {
                    block_out[bi] = [AbstractVas::Vas(*v)].into_iter().collect();
                }
            }
        }
        for (bi, block) in func.blocks.iter().enumerate() {
            let mut cur = if bi == 0 {
                self.entry[fi].clone()
            } else {
                let mut s = VasSet::new();
                for p in &preds[bi] {
                    s.extend(block_out[p.0 as usize].iter().copied());
                }
                s
            };
            // Phis: join incoming valid sets.
            for phi in &block.phis {
                let mut joined = VasSet::new();
                for (_, r) in &phi.incomings {
                    joined.extend(self.valid_of(fi, *r));
                }
                changed |= self.add_valid(fi, phi.dst, &joined);
            }
            for (ii, inst) in block.insts.iter().enumerate() {
                changed |= Self::union_into(&mut self.vas_in[fi][bi][ii], &cur);
                match inst {
                    Inst::Switch(v) => {
                        cur = [AbstractVas::Vas(*v)].into_iter().collect();
                    }
                    Inst::VCast { dst, vas, .. } => {
                        let s = [AbstractVas::Vas(*vas)].into_iter().collect();
                        changed |= self.add_valid(fi, *dst, &s);
                    }
                    Inst::Alloca { dst, .. } | Inst::Global { dst, .. } => {
                        let s = [AbstractVas::Common].into_iter().collect();
                        changed |= self.add_valid(fi, *dst, &s);
                    }
                    Inst::Malloc { dst, .. } => {
                        let c = cur.clone();
                        changed |= self.add_valid(fi, *dst, &c);
                    }
                    Inst::Copy { dst, src } => {
                        let s = self.valid_of(fi, *src);
                        changed |= self.add_valid(fi, *dst, &s);
                    }
                    Inst::Const { .. } => {}
                    Inst::Load { dst, addr } => {
                        let from = self.valid_of(fi, *addr);
                        let mut s = VasSet::new();
                        // Loading a pointer out of the common region gives
                        // a statically unknown pointer; out of VAS memory
                        // it must be valid in the current VAS.
                        if from.contains(&AbstractVas::Common)
                            || from.contains(&AbstractVas::Unknown)
                        {
                            s.insert(AbstractVas::Unknown);
                        }
                        if from.iter().any(|v| matches!(v, AbstractVas::Vas(_))) || from.is_empty()
                        {
                            s.extend(cur.iter().copied());
                        }
                        changed |= self.add_valid(fi, *dst, &s);
                    }
                    Inst::Store { .. } => {}
                    Inst::Call {
                        dst,
                        func: callee,
                        args,
                    } => {
                        let ci = callee.0 as usize;
                        let c = cur.clone();
                        changed |= Self::union_into(&mut self.entry[ci], &c);
                        let callee_fn = &module.functions[ci];
                        for (p, a) in callee_fn.params.iter().zip(args) {
                            let s = self.valid_of(fi, *a);
                            changed |= self.add_valid(ci, *p, &s);
                        }
                        if let Some(d) = dst {
                            let s = self.ret_valid[ci].clone();
                            changed |= self.add_valid(fi, *d, &s);
                        }
                        // Conservative: the callee may or may not switch.
                        let exit = self.exit[ci].clone();
                        cur.extend(exit.iter().copied());
                    }
                    Inst::Ret(r) => {
                        if let Some(r) = r {
                            let s = self.valid_of(fi, *r);
                            let before = self.ret_valid[fi].len();
                            self.ret_valid[fi].extend(s.iter().copied());
                            changed |= self.ret_valid[fi].len() != before;
                        }
                        let before = self.exit[fi].len();
                        self.exit[fi].extend(cur.iter().copied());
                        changed |= self.exit[fi].len() != before;
                    }
                    Inst::Br(_) | Inst::CondBr { .. } => {}
                    Inst::CheckDeref { .. } | Inst::CheckStore { .. } => {}
                    // Locking is invisible to the VAS analysis: shared
                    // segments are mapped at the same address in every
                    // attaching VAS, so a segment base is common-region
                    // valid and lock/unlock change no VAS state. The
                    // lockset analysis (sjmp-analyze) owns these.
                    Inst::Lock(_) | Inst::Unlock(_) => {}
                    Inst::SegAddr { dst, .. } => {
                        let s = [AbstractVas::Common].into_iter().collect();
                        changed |= self.add_valid(fi, *dst, &s);
                    }
                }
            }
            let out_changed = Self::union_into(&mut block_out[bi], &cur);
            changed |= out_changed;
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{FuncId, Phi, VasName};

    fn vset(items: &[AbstractVas]) -> VasSet {
        items.iter().copied().collect()
    }

    fn v(n: u32) -> AbstractVas {
        AbstractVas::Vas(VasName(n))
    }

    fn entry() -> VasSet {
        vset(&[v(0)])
    }

    #[test]
    fn malloc_tracks_current_vas() {
        let mut m = Module::new();
        let mut f = Function::new("main", 0);
        let p = f.fresh_reg();
        let q = f.fresh_reg();
        f.push(BlockId(0), Inst::Malloc { dst: p, size: 8 });
        f.push(BlockId(0), Inst::Switch(VasName(1)));
        f.push(BlockId(0), Inst::Malloc { dst: q, size: 8 });
        f.push(BlockId(0), Inst::Ret(None));
        m.add_function(f);
        let a = Analysis::run(&m, entry());
        assert_eq!(a.valid_of(0, p), vset(&[v(0)]));
        assert_eq!(a.valid_of(0, q), vset(&[v(1)]));
        assert_eq!(a.exit[0], vset(&[v(1)]));
    }

    #[test]
    fn alloca_and_global_are_common() {
        let mut m = Module::new();
        let mut f = Function::new("main", 0);
        let s = f.fresh_reg();
        let g = f.fresh_reg();
        f.push(BlockId(0), Inst::Alloca { dst: s, size: 8 });
        f.push(BlockId(0), Inst::Global { dst: g, name: "g" });
        f.push(BlockId(0), Inst::Ret(None));
        m.add_function(f);
        let a = Analysis::run(&m, entry());
        assert_eq!(a.valid_of(0, s), vset(&[AbstractVas::Common]));
        assert_eq!(a.valid_of(0, g), vset(&[AbstractVas::Common]));
    }

    #[test]
    fn vcast_overrides() {
        let mut m = Module::new();
        let mut f = Function::new("main", 0);
        let p = f.fresh_reg();
        let q = f.fresh_reg();
        f.push(BlockId(0), Inst::Malloc { dst: p, size: 8 });
        f.push(
            BlockId(0),
            Inst::VCast {
                dst: q,
                src: p,
                vas: VasName(7),
            },
        );
        f.push(BlockId(0), Inst::Ret(None));
        m.add_function(f);
        let a = Analysis::run(&m, entry());
        assert_eq!(a.valid_of(0, q), vset(&[v(7)]));
    }

    #[test]
    fn phi_joins_branches() {
        // if (c) { switch 1; p = malloc } else { switch 2; q = malloc };
        // r = phi(p, q) — valid in {1, 2}; VASin at the join is {1, 2}.
        let mut m = Module::new();
        let mut f = Function::new("main", 0);
        let c = f.fresh_reg();
        let p = f.fresh_reg();
        let q = f.fresh_reg();
        let r = f.fresh_reg();
        let t = f.add_block();
        let e = f.add_block();
        let j = f.add_block();
        f.push(BlockId(0), Inst::Const { dst: c, value: 1 });
        f.push(
            BlockId(0),
            Inst::CondBr {
                cond: c,
                then_bb: t,
                else_bb: e,
            },
        );
        f.push(t, Inst::Switch(VasName(1)));
        f.push(t, Inst::Malloc { dst: p, size: 8 });
        f.push(t, Inst::Br(j));
        f.push(e, Inst::Switch(VasName(2)));
        f.push(e, Inst::Malloc { dst: q, size: 8 });
        f.push(e, Inst::Br(j));
        f.push_phi(
            j,
            Phi {
                dst: r,
                incomings: vec![(t, p), (e, q)],
            },
        );
        f.push(j, Inst::Ret(None));
        m.add_function(f);
        let a = Analysis::run(&m, entry());
        assert_eq!(a.valid_of(0, r), vset(&[v(1), v(2)]));
        assert_eq!(a.vas_in_of(0, j, 0), &vset(&[v(1), v(2)]));
    }

    #[test]
    fn loads_from_common_are_unknown() {
        let mut m = Module::new();
        let mut f = Function::new("main", 0);
        let s = f.fresh_reg();
        let x = f.fresh_reg();
        let h = f.fresh_reg();
        let y = f.fresh_reg();
        f.push(BlockId(0), Inst::Alloca { dst: s, size: 8 });
        f.push(BlockId(0), Inst::Load { dst: x, addr: s });
        f.push(BlockId(0), Inst::Malloc { dst: h, size: 8 });
        f.push(BlockId(0), Inst::Load { dst: y, addr: h });
        f.push(BlockId(0), Inst::Ret(None));
        m.add_function(f);
        let a = Analysis::run(&m, entry());
        assert_eq!(a.valid_of(0, x), vset(&[AbstractVas::Unknown]));
        assert_eq!(
            a.valid_of(0, y),
            vset(&[v(0)]),
            "loads from VAS memory get VASin"
        );
    }

    #[test]
    fn interprocedural_propagation() {
        // main: switch 1; p = malloc; q = callee(p); callee returns its arg.
        let mut m = Module::new();
        let mut callee = Function::new("id", 1);
        let arg = callee.params[0];
        callee.push(BlockId(0), Inst::Ret(Some(arg)));
        let mut f = Function::new("main", 0);
        let p = f.fresh_reg();
        let q = f.fresh_reg();
        f.push(BlockId(0), Inst::Switch(VasName(1)));
        f.push(BlockId(0), Inst::Malloc { dst: p, size: 8 });
        f.push(
            BlockId(0),
            Inst::Call {
                dst: Some(q),
                func: FuncId(1),
                args: vec![p],
            },
        );
        f.push(BlockId(0), Inst::Ret(None));
        m.add_function(f);
        m.add_function(callee);
        let a = Analysis::run(&m, entry());
        assert_eq!(
            a.valid_of(1, arg),
            vset(&[v(1)]),
            "param inherits arg validity"
        );
        assert_eq!(a.valid_of(0, q), vset(&[v(1)]), "return value flows back");
        assert_eq!(a.entry[1], vset(&[v(1)]), "callee entered in caller's VAS");
    }

    #[test]
    fn callee_switch_makes_caller_ambiguous() {
        // callee switches to VAS 2; after the call, main may be in 1 or 2
        // (conservative union).
        let mut m = Module::new();
        let mut f = Function::new("main", 0);
        let p = f.fresh_reg();
        f.push(BlockId(0), Inst::Switch(VasName(1)));
        f.push(
            BlockId(0),
            Inst::Call {
                dst: None,
                func: FuncId(1),
                args: vec![],
            },
        );
        f.push(BlockId(0), Inst::Malloc { dst: p, size: 8 });
        f.push(BlockId(0), Inst::Ret(None));
        let mut callee = Function::new("sw", 0);
        callee.push(BlockId(0), Inst::Switch(VasName(2)));
        callee.push(BlockId(0), Inst::Ret(None));
        m.add_function(f);
        m.add_function(callee);
        let a = Analysis::run(&m, entry());
        assert!(a.valid_of(0, p).contains(&v(2)));
        assert!(
            a.valid_of(0, p).contains(&v(1)),
            "conservative: may not have switched"
        );
    }

    #[test]
    fn loop_reaches_fixpoint() {
        // A loop alternating switches; VASin at the loop head grows to
        // {0, 1} and stabilizes.
        let mut m = Module::new();
        let mut f = Function::new("main", 0);
        let c = f.fresh_reg();
        let head = f.add_block();
        let body = f.add_block();
        let done = f.add_block();
        f.push(BlockId(0), Inst::Const { dst: c, value: 1 });
        f.push(BlockId(0), Inst::Br(head));
        f.push(
            head,
            Inst::CondBr {
                cond: c,
                then_bb: body,
                else_bb: done,
            },
        );
        f.push(body, Inst::Switch(VasName(1)));
        f.push(body, Inst::Br(head));
        f.push(done, Inst::Ret(None));
        m.add_function(f);
        let a = Analysis::run(&m, entry());
        assert_eq!(a.vas_in_of(0, head, 0), &vset(&[v(0), v(1)]));
        assert!(a.iterations >= 2);
    }
}
