//! Interprocedural pointer-provenance analysis and the dangling-deref
//! verifier built on top of it.
//!
//! The `VASvalid` dataflow ([`crate::analysis`]) deliberately loses
//! information at memory: a pointer loaded from the common region becomes
//! `vunknown`, because the intraprocedural lattice has no way to say
//! *which* pointer was stored there. This module recovers that precision
//! with a provenance lattice of abstract objects:
//!
//! * every allocation site (`alloca`, `global`, `malloc`, `vcast`) mints
//!   one abstract object; `segaddr s` mints one object **per segment
//!   name** shared by every function that names it — segment-of-origin
//!   is part of provenance, which is what lets escapes through shared
//!   lockable segments be tracked across functions;
//! * each object carries the abstract-VAS set its memory belongs to
//!   (`malloc` → the final `VASin` at the site; `alloca`/`global`/
//!   `segaddr` → `{vcommon}`; `vcast y v` → `{v}`);
//! * a register's provenance is [`Pts`]: a set of objects plus
//!   "may be unknown" and "may be an integer" flags;
//! * a global abstract heap maps each object to the provenance of
//!   everything ever stored into it, so a load through object `o` yields
//!   `heap(o)` instead of `vunknown`.
//!
//! Facts propagate bottom-up through function summaries (parameter and
//! return provenance) with a worklist over the call graph; stores, loads,
//! phis, copies, calls and returns are the transfer functions. Escape
//! stores are recorded per object so a verdict can cite the full chain
//! alloc site → escape store → `switch` → dereference.
//!
//! Soundness hinges on one hazard: the interpreter's per-region bump
//! allocators hand out the *same* address sequence in every region, so a
//! `vcast` pointer (or a statically unknown one) can alias any tracked
//! object in its region. A store through such a pointer therefore
//! poisons the whole abstract heap — every later load degrades to
//! unknown — rather than silently missing the write.
//!
//! [`verify`] classifies every load/store as proven-safe /
//! proven-dangling / unknown; [`crate::checks::CheckPolicy::Interprocedural`]
//! elides checks at proven-safe sites, and the seeded soundness harness
//! ([`crate::genprog`]) validates both claims against the interpreter.

use std::collections::{BTreeSet, HashMap, VecDeque};

use crate::analysis::Analysis;
use crate::ir::{AbstractVas, BlockId, Inst, Module, Reg, SegName, Site, VasName, VasSet};

/// Index of an abstract object in [`Provenance::objects`].
pub type ObjId = u32;

/// Why an abstract object exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Origin {
    /// `x = alloca` — a stack slot in the common region.
    Alloca,
    /// `x = global` — a global cell in the common region.
    Global,
    /// `x = malloc` — heap memory in the VAS(es) active at the site.
    Malloc,
    /// `x = segaddr s` — the shared lockable segment `s`. One object per
    /// segment *name*: every function naming `s` sees the same object.
    Seg(SegName),
    /// `x = vcast y v` — a retagged pointer. Aliases anything in `v`, so
    /// loads through it are unknown and stores poison the heap.
    VCast(VasName),
}

/// An abstract object: one allocation site (or shared segment).
#[derive(Debug, Clone)]
pub struct Object {
    /// Where it was minted (for segments: the first `segaddr` seen).
    pub site: Site,
    /// What minted it.
    pub origin: Origin,
    /// Abstract VASes its memory belongs to.
    pub vas: VasSet,
}

/// Provenance lattice element for one register: which abstract objects
/// it may point to, plus escape-to-the-unknown and may-be-integer flags.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Pts {
    /// Objects the register may point to.
    pub objs: BTreeSet<ObjId>,
    /// May hold a pointer the analysis cannot attribute to any object.
    pub unknown: bool,
    /// May hold a plain integer.
    pub int: bool,
}

impl Pts {
    fn int_only() -> Pts {
        Pts {
            int: true,
            ..Pts::default()
        }
    }

    fn unknown_value() -> Pts {
        Pts {
            unknown: true,
            int: true,
            ..Pts::default()
        }
    }

    fn join(&mut self, other: &Pts) -> bool {
        let before = (self.objs.len(), self.unknown, self.int);
        self.objs.extend(other.objs.iter().copied());
        self.unknown |= other.unknown;
        self.int |= other.int;
        before != (self.objs.len(), self.unknown, self.int)
    }

    /// Bottom: no objects, no flags — an undefined or untracked value.
    pub fn is_bottom(&self) -> bool {
        self.objs.is_empty() && !self.unknown && !self.int
    }
}

/// Verdict for one memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteClass {
    /// Cannot trap on the VAS rules: every execution dereferences live,
    /// attached memory (and any stored pointer satisfies the store rule).
    ProvenSafe,
    /// Every execution that reaches it violates the Section 3.3 rules.
    ProvenDangling,
    /// Neither provable — keep the runtime check.
    Unknown,
}

/// Kind of memory operation a verdict describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOpKind {
    /// `x = *p`.
    Load,
    /// `*p = v`.
    Store,
}

/// Classification of one load/store site.
#[derive(Debug, Clone)]
pub struct SiteVerdict {
    /// Where.
    pub site: Site,
    /// Load or store.
    pub kind: MemOpKind,
    /// Verdict on dereferencing the address operand.
    pub deref: SiteClass,
    /// Verdict on the stored value obeying the store rule (stores only).
    pub store: Option<SiteClass>,
    /// Combined verdict: dangling if either aspect is, safe only if all
    /// aspects are.
    pub class: SiteClass,
}

/// A proven-dangling site with its provenance chain.
#[derive(Debug, Clone)]
pub struct DanglingFinding {
    /// The faulting load/store.
    pub site: Site,
    /// Name of the function containing it.
    pub func: String,
    /// `"load"`, `"store"`, or `"store-value"` (the stored pointer, not
    /// the address, is what violates the rule).
    pub kind: &'static str,
    /// Allocation sites of the objects the stale pointer may denote.
    pub alloc_sites: Vec<Site>,
    /// Stores through which the pointer escaped into memory.
    pub escape_sites: Vec<Site>,
    /// `switch` sites that made the dereferencing VAS current.
    pub switch_sites: Vec<Site>,
    /// VASes the pointer is valid in.
    pub pointer_vas: VasSet,
    /// VASes that may be current at the site.
    pub current_vas: VasSet,
    /// Human-readable `alloc → escape → switch → deref` chain.
    pub chain: String,
}

/// Result of [`verify`]: a verdict per memory operation plus findings
/// for every proven-dangling site.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// One verdict per load/store, in program order.
    pub verdicts: Vec<SiteVerdict>,
    /// Diagnostics for the proven-dangling sites.
    pub findings: Vec<DanglingFinding>,
    /// Worklist passes used by the provenance fixpoint.
    pub iterations: u32,
    by_site: HashMap<Site, usize>,
}

impl VerifyReport {
    /// The verdict at a site, if it is a memory operation.
    pub fn verdict_at(&self, site: Site) -> Option<&SiteVerdict> {
        self.by_site.get(&site).map(|i| &self.verdicts[*i])
    }

    /// Memory operations classified.
    pub fn mem_ops(&self) -> usize {
        self.verdicts.len()
    }

    /// Count of sites with the given combined verdict.
    pub fn count(&self, class: SiteClass) -> usize {
        self.verdicts.iter().filter(|v| v.class == class).count()
    }
}

/// Runs [`Analysis`] and then the provenance pass, classifying every
/// memory operation in `module`.
pub fn verify(module: &Module, entry_vas: VasSet) -> VerifyReport {
    let analysis = Analysis::run(module, entry_vas);
    verify_with(module, &analysis)
}

/// Like [`verify`] but reuses an existing [`Analysis`].
pub fn verify_with(module: &Module, analysis: &Analysis) -> VerifyReport {
    let prov = Provenance::run(module, analysis);
    prov.report(module, analysis)
}

/// What one `process_function` pass changed, for worklist scheduling.
#[derive(Default)]
struct Delta {
    /// A register in this function changed — revisit it.
    local: bool,
    /// Parameter provenance of these callees changed.
    callees: BTreeSet<usize>,
    /// This function's return provenance changed.
    ret: bool,
    /// The global heap (or poison flag) changed — revisit loaders.
    heap: bool,
}

/// The interprocedural provenance analysis state.
#[derive(Debug, Clone)]
pub struct Provenance {
    /// The abstract objects, indexed by [`ObjId`].
    pub objects: Vec<Object>,
    /// Provenance per function, per register.
    regs: Vec<HashMap<Reg, Pts>>,
    /// The global abstract heap: what each object's cells may contain.
    heap: HashMap<ObjId, Pts>,
    /// A store went through a `vcast` or unknown pointer: any cell in the
    /// program may have been overwritten with anything.
    pub heap_poisoned: bool,
    /// Sites where a pointer to each object was stored into memory.
    escapes: HashMap<ObjId, BTreeSet<Site>>,
    /// Return-value provenance per function.
    ret: Vec<Pts>,
    /// Object minted at each site (segaddr sites share per-name objects).
    site_obj: HashMap<Site, ObjId>,
    /// Worklist passes used.
    pub iterations: u32,
}

impl Provenance {
    /// Runs the provenance fixpoint over `module`, reusing the final
    /// `VASvalid`/`VASin` facts in `analysis` (which must come from the
    /// same module).
    ///
    /// # Panics
    ///
    /// Panics if the worklist fails to converge within a generous bound
    /// (a non-monotone transfer bug).
    pub fn run(module: &Module, analysis: &Analysis) -> Provenance {
        let n = module.functions.len();
        let mut p = Provenance {
            objects: Vec::new(),
            regs: vec![HashMap::new(); n],
            heap: HashMap::new(),
            heap_poisoned: false,
            escapes: HashMap::new(),
            ret: vec![Pts::default(); n],
            site_obj: HashMap::new(),
            iterations: 0,
        };
        p.collect_objects(module, analysis);
        // The interpreter passes integer arguments to main.
        if let Some(main) = module.functions.first() {
            for param in &main.params {
                p.regs[0].insert(*param, Pts::int_only());
            }
        }
        let callers = Self::caller_map(module);
        let mut queued = vec![true; n];
        let mut work: VecDeque<usize> = (0..n).collect();
        let limit = (module.inst_count() as u32 + 64) * (n as u32 + 2) * 8;
        while let Some(fi) = work.pop_front() {
            queued[fi] = false;
            p.iterations += 1;
            assert!(p.iterations <= limit, "provenance failed to converge");
            let delta = p.process_function(module, analysis, fi);
            let enqueue = |i: usize, queued: &mut Vec<bool>, work: &mut VecDeque<usize>| {
                if !queued[i] {
                    queued[i] = true;
                    work.push_back(i);
                }
            };
            if delta.local {
                enqueue(fi, &mut queued, &mut work);
            }
            for ci in delta.callees {
                enqueue(ci, &mut queued, &mut work);
            }
            if delta.ret {
                for c in &callers[fi] {
                    enqueue(*c, &mut queued, &mut work);
                }
            }
            if delta.heap {
                // The heap is global: any function with loads may observe
                // the new contents.
                for i in 0..n {
                    enqueue(i, &mut queued, &mut work);
                }
            }
        }
        p
    }

    /// Provenance of a register (bottom if never assigned).
    pub fn pts_of(&self, func: usize, reg: Reg) -> Pts {
        self.regs[func].get(&reg).cloned().unwrap_or_default()
    }

    /// Sites at which a pointer to `obj` was stored into memory.
    pub fn escapes_of(&self, obj: ObjId) -> Vec<Site> {
        self.escapes
            .get(&obj)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Abstract heap contents of `obj` (bottom if never stored to).
    pub fn heap_of(&self, obj: ObjId) -> Pts {
        self.heap.get(&obj).cloned().unwrap_or_default()
    }

    fn collect_objects(&mut self, module: &Module, analysis: &Analysis) {
        let mut seg_obj: HashMap<SegName, ObjId> = HashMap::new();
        for (fi, func) in module.functions.iter().enumerate() {
            for (bi, block) in func.blocks.iter().enumerate() {
                for (ii, inst) in block.insts.iter().enumerate() {
                    let site = Site::new(fi, bi, ii);
                    let (origin, vas) = match inst {
                        Inst::Alloca { .. } => (Origin::Alloca, common_set()),
                        Inst::Global { .. } => (Origin::Global, common_set()),
                        Inst::Malloc { .. } => (
                            Origin::Malloc,
                            analysis.vas_in_of(fi, BlockId(bi as u32), ii).clone(),
                        ),
                        Inst::VCast { vas, .. } => (
                            Origin::VCast(*vas),
                            [AbstractVas::Vas(*vas)].into_iter().collect(),
                        ),
                        Inst::SegAddr { seg, .. } => {
                            let id = *seg_obj.entry(*seg).or_insert_with(|| {
                                self.objects.push(Object {
                                    site,
                                    origin: Origin::Seg(*seg),
                                    vas: common_set(),
                                });
                                (self.objects.len() - 1) as ObjId
                            });
                            self.site_obj.insert(site, id);
                            continue;
                        }
                        _ => continue,
                    };
                    let id = self.objects.len() as ObjId;
                    self.objects.push(Object { site, origin, vas });
                    self.site_obj.insert(site, id);
                }
            }
        }
    }

    fn caller_map(module: &Module) -> Vec<BTreeSet<usize>> {
        let mut callers = vec![BTreeSet::new(); module.functions.len()];
        for (fi, func) in module.functions.iter().enumerate() {
            for block in &func.blocks {
                for inst in &block.insts {
                    if let Inst::Call { func: callee, .. } = inst {
                        callers[callee.0 as usize].insert(fi);
                    }
                }
            }
        }
        callers
    }

    fn join_reg(&mut self, fi: usize, reg: Reg, pts: &Pts) -> bool {
        if pts.is_bottom() {
            return false;
        }
        self.regs[fi].entry(reg).or_default().join(pts)
    }

    fn process_function(&mut self, module: &Module, _analysis: &Analysis, fi: usize) -> Delta {
        let mut delta = Delta::default();
        let func = &module.functions[fi];
        for (bi, block) in func.blocks.iter().enumerate() {
            for phi in &block.phis {
                let mut joined = Pts::default();
                for (_, r) in &phi.incomings {
                    joined.join(&self.pts_of(fi, *r));
                }
                delta.local |= self.join_reg(fi, phi.dst, &joined);
            }
            for (ii, inst) in block.insts.iter().enumerate() {
                let site = Site::new(fi, bi, ii);
                match inst {
                    Inst::Alloca { dst, .. }
                    | Inst::Global { dst, .. }
                    | Inst::Malloc { dst, .. }
                    | Inst::VCast { dst, .. }
                    | Inst::SegAddr { dst, .. } => {
                        let obj = self.site_obj[&site];
                        let pts = Pts {
                            objs: [obj].into_iter().collect(),
                            ..Pts::default()
                        };
                        delta.local |= self.join_reg(fi, *dst, &pts);
                    }
                    Inst::Copy { dst, src } => {
                        let pts = self.pts_of(fi, *src);
                        delta.local |= self.join_reg(fi, *dst, &pts);
                    }
                    Inst::Const { dst, .. } => {
                        delta.local |= self.join_reg(fi, *dst, &Pts::int_only());
                    }
                    Inst::Load { dst, addr } => {
                        let a = self.pts_of(fi, *addr);
                        let mut result = Pts::default();
                        if a.unknown || self.heap_poisoned {
                            result.join(&Pts::unknown_value());
                        }
                        for obj in &a.objs {
                            if matches!(self.objects[*obj as usize].origin, Origin::VCast(_)) {
                                // A vcast pointer can alias any cell in
                                // its region — the load may see anything.
                                result.join(&Pts::unknown_value());
                            } else {
                                result.join(&self.heap_of(*obj));
                            }
                        }
                        delta.local |= self.join_reg(fi, *dst, &result);
                    }
                    Inst::Store { addr, val } => {
                        let a = self.pts_of(fi, *addr);
                        let v = self.pts_of(fi, *val);
                        if a.unknown
                            || a.objs.iter().any(|o| {
                                matches!(self.objects[*o as usize].origin, Origin::VCast(_))
                            })
                        {
                            // Wild store: may overwrite any tracked cell.
                            if !self.heap_poisoned {
                                self.heap_poisoned = true;
                                delta.heap = true;
                            }
                        }
                        for obj in &a.objs {
                            if matches!(self.objects[*obj as usize].origin, Origin::VCast(_)) {
                                continue;
                            }
                            delta.heap |= self.heap.entry(*obj).or_default().join(&v);
                        }
                        if !a.is_bottom() {
                            for vo in &v.objs {
                                self.escapes.entry(*vo).or_default().insert(site);
                            }
                        }
                    }
                    Inst::Call {
                        dst,
                        func: callee,
                        args,
                    } => {
                        let ci = callee.0 as usize;
                        let callee_fn = &module.functions[ci];
                        for (p, a) in callee_fn.params.iter().zip(args) {
                            let pts = self.pts_of(fi, *a);
                            if ci == fi {
                                delta.local |= self.join_reg(ci, *p, &pts);
                            } else if self.join_reg(ci, *p, &pts) {
                                delta.callees.insert(ci);
                            }
                        }
                        if let Some(d) = dst {
                            let pts = self.ret[ci].clone();
                            delta.local |= self.join_reg(fi, *d, &pts);
                        }
                    }
                    Inst::Ret(Some(r)) => {
                        let pts = self.pts_of(fi, *r);
                        delta.ret |= self.ret[fi].join(&pts);
                    }
                    Inst::Ret(None)
                    | Inst::Switch(_)
                    | Inst::Br(_)
                    | Inst::CondBr { .. }
                    | Inst::CheckDeref { .. }
                    | Inst::CheckStore { .. }
                    | Inst::Lock(_)
                    | Inst::Unlock(_) => {}
                }
            }
        }
        delta
    }

    /// The union of the VAS sets of the objects in `pts`.
    fn regions_of(&self, pts: &Pts) -> VasSet {
        let mut set = VasSet::new();
        for obj in &pts.objs {
            set.extend(self.objects[*obj as usize].vas.iter().copied());
        }
        set
    }

    /// Classifies dereferencing a pointer with provenance `pts` while the
    /// current VAS is (any element of) `vas_in`.
    pub fn deref_class(&self, pts: &Pts, vas_in: &VasSet) -> SiteClass {
        if pts.unknown || pts.objs.is_empty() {
            return SiteClass::Unknown;
        }
        let regions = self.regions_of(pts);
        if regions.is_empty() || regions.contains(&AbstractVas::Unknown) || vas_in.is_empty() {
            return SiteClass::Unknown;
        }
        let safe = !pts.int
            && regions.iter().all(|r| match r {
                AbstractVas::Common => true,
                AbstractVas::Vas(_) => vas_in.len() == 1 && vas_in.contains(r),
                AbstractVas::Unknown => false,
            });
        if safe {
            return SiteClass::ProvenSafe;
        }
        let dangling = !pts.int
            && vas_in.iter().all(|v| matches!(v, AbstractVas::Vas(_)))
            && regions
                .iter()
                .all(|r| matches!(r, AbstractVas::Vas(_)) && !vas_in.contains(r));
        if dangling {
            return SiteClass::ProvenDangling;
        }
        SiteClass::Unknown
    }

    /// Classifies storing a value with provenance `val` through an
    /// address with provenance `addr` (the Section 3.3 store rule).
    pub fn store_class(&self, addr: &Pts, val: &Pts) -> SiteClass {
        if val.objs.is_empty() && !val.unknown {
            // Integers (or undefined values, which trap before the store
            // rule matters) are always storable.
            return SiteClass::ProvenSafe;
        }
        if addr.unknown || addr.objs.is_empty() {
            return SiteClass::Unknown;
        }
        let targets = self.regions_of(addr);
        let values = self.regions_of(val);
        if targets.is_empty() || targets.contains(&AbstractVas::Unknown) {
            return SiteClass::Unknown;
        }
        if !val.unknown && !values.contains(&AbstractVas::Unknown) {
            let safe = targets.iter().all(|t| match t {
                AbstractVas::Common => true,
                AbstractVas::Vas(_) => !values.is_empty() && values.iter().all(|r| r == t),
                AbstractVas::Unknown => false,
            });
            if safe {
                return SiteClass::ProvenSafe;
            }
            // Always-faulting: the value is definitely a pointer and no
            // possible (target, value) pair satisfies the store rule.
            let dangling = !val.int
                && !values.is_empty()
                && targets
                    .iter()
                    .all(|t| matches!(t, AbstractVas::Vas(_)) && values.iter().all(|r| r != t));
            if dangling {
                return SiteClass::ProvenDangling;
            }
        }
        SiteClass::Unknown
    }

    /// Builds the [`VerifyReport`] for `module`.
    pub fn report(&self, module: &Module, analysis: &Analysis) -> VerifyReport {
        // Switch sites per VAS, for chain diagnostics.
        let mut switch_sites: HashMap<VasName, Vec<Site>> = HashMap::new();
        for (fi, func) in module.functions.iter().enumerate() {
            for (bi, block) in func.blocks.iter().enumerate() {
                for (ii, inst) in block.insts.iter().enumerate() {
                    if let Inst::Switch(v) = inst {
                        switch_sites
                            .entry(*v)
                            .or_default()
                            .push(Site::new(fi, bi, ii));
                    }
                }
            }
        }
        let mut report = VerifyReport {
            verdicts: Vec::new(),
            findings: Vec::new(),
            iterations: self.iterations,
            by_site: HashMap::new(),
        };
        for (fi, func) in module.functions.iter().enumerate() {
            for (bi, block) in func.blocks.iter().enumerate() {
                for (ii, inst) in block.insts.iter().enumerate() {
                    let site = Site::new(fi, bi, ii);
                    let vas_in = analysis.vas_in_of(fi, BlockId(bi as u32), ii);
                    let (kind, addr, val) = match inst {
                        Inst::Load { addr, .. } => (MemOpKind::Load, addr, None),
                        Inst::Store { addr, val } => (MemOpKind::Store, addr, Some(val)),
                        _ => continue,
                    };
                    let addr_pts = self.pts_of(fi, *addr);
                    let deref = self.deref_class(&addr_pts, vas_in);
                    let store = val.map(|v| self.store_class(&addr_pts, &self.pts_of(fi, *v)));
                    let class = combine(deref, store);
                    if class == SiteClass::ProvenDangling {
                        let (chain_kind, culprit) = if deref == SiteClass::ProvenDangling {
                            (
                                match kind {
                                    MemOpKind::Load => "load",
                                    MemOpKind::Store => "store",
                                },
                                addr_pts.clone(),
                            )
                        } else {
                            ("store-value", self.pts_of(fi, *val.unwrap()))
                        };
                        report.findings.push(self.finding(
                            site,
                            &func.name,
                            chain_kind,
                            &culprit,
                            vas_in,
                            &switch_sites,
                        ));
                    }
                    report.by_site.insert(site, report.verdicts.len());
                    report.verdicts.push(SiteVerdict {
                        site,
                        kind,
                        deref,
                        store,
                        class,
                    });
                }
            }
        }
        report
    }

    fn finding(
        &self,
        site: Site,
        func: &str,
        kind: &'static str,
        culprit: &Pts,
        vas_in: &VasSet,
        switch_sites: &HashMap<VasName, Vec<Site>>,
    ) -> DanglingFinding {
        let mut alloc_sites: BTreeSet<Site> = BTreeSet::new();
        let mut escape_sites: BTreeSet<Site> = BTreeSet::new();
        for obj in &culprit.objs {
            alloc_sites.insert(self.objects[*obj as usize].site);
            if let Some(sites) = self.escapes.get(obj) {
                escape_sites.extend(sites.iter().copied().filter(|s| *s != site));
            }
        }
        let mut switches: BTreeSet<Site> = BTreeSet::new();
        for v in vas_in {
            if let AbstractVas::Vas(name) = v {
                if let Some(sites) = switch_sites.get(name) {
                    switches.extend(sites.iter().copied());
                }
            }
        }
        let pointer_vas = self.regions_of(culprit);
        let mut chain = String::new();
        for s in &alloc_sites {
            push_link(&mut chain, "alloc", *s);
        }
        for s in &escape_sites {
            push_link(&mut chain, "escape", *s);
        }
        for s in &switches {
            push_link(&mut chain, "switch", *s);
        }
        push_link(&mut chain, kind, site);
        chain.push_str(&format!(
            ": pointer valid in {}, current VAS {}",
            fmt_vasset(&pointer_vas),
            fmt_vasset(vas_in)
        ));
        DanglingFinding {
            site,
            func: func.to_string(),
            kind,
            alloc_sites: alloc_sites.into_iter().collect(),
            escape_sites: escape_sites.into_iter().collect(),
            switch_sites: switches.into_iter().collect(),
            pointer_vas,
            current_vas: vas_in.clone(),
            chain,
        }
    }
}

fn combine(deref: SiteClass, store: Option<SiteClass>) -> SiteClass {
    match (deref, store) {
        (SiteClass::ProvenDangling, _) | (_, Some(SiteClass::ProvenDangling)) => {
            SiteClass::ProvenDangling
        }
        (SiteClass::ProvenSafe, None) | (SiteClass::ProvenSafe, Some(SiteClass::ProvenSafe)) => {
            SiteClass::ProvenSafe
        }
        _ => SiteClass::Unknown,
    }
}

fn push_link(chain: &mut String, label: &str, site: Site) {
    if !chain.is_empty() {
        chain.push_str(" -> ");
    }
    chain.push_str(label);
    chain.push_str(&site.to_string());
}

fn common_set() -> VasSet {
    [AbstractVas::Common].into_iter().collect()
}

/// Renders a [`VasSet`] as `{v0, common}`.
pub fn fmt_vasset(set: &VasSet) -> String {
    let mut out = String::from("{");
    for (i, v) in set.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match v {
            AbstractVas::Vas(n) => out.push_str(&format!("v{}", n.0)),
            AbstractVas::Common => out.push_str("common"),
            AbstractVas::Unknown => out.push_str("unknown"),
        }
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{FuncId, Function};

    fn entry() -> VasSet {
        [AbstractVas::Vas(VasName(0))].into_iter().collect()
    }

    /// p = malloc; slot = alloca; *slot = p; q = *slot; x = *q — the
    /// boxed reload the intraprocedural analysis loses: provenance
    /// recovers that q is exactly p.
    #[test]
    fn boxed_reload_is_proven_safe() {
        let mut m = Module::new();
        let mut f = Function::new("main", 0);
        let p = f.fresh_reg();
        let slot = f.fresh_reg();
        let q = f.fresh_reg();
        let x = f.fresh_reg();
        f.push(BlockId(0), Inst::Malloc { dst: p, size: 8 });
        f.push(BlockId(0), Inst::Alloca { dst: slot, size: 8 });
        f.push(BlockId(0), Inst::Store { addr: slot, val: p });
        f.push(BlockId(0), Inst::Load { dst: q, addr: slot });
        f.push(BlockId(0), Inst::Load { dst: x, addr: q });
        f.push(BlockId(0), Inst::Ret(None));
        m.add_function(f);
        let report = verify(&m, entry());
        let deref = report.verdict_at(Site::new(0, 0, 4)).unwrap();
        assert_eq!(deref.class, SiteClass::ProvenSafe);
        assert_eq!(report.count(SiteClass::ProvenDangling), 0);
    }

    /// The classic silent bug: escape through a stack slot, switch, then
    /// reload and dereference in the wrong VAS.
    #[test]
    fn escape_then_switch_is_proven_dangling() {
        let mut m = Module::new();
        let mut f = Function::new("main", 0);
        let p = f.fresh_reg();
        let slot = f.fresh_reg();
        let q = f.fresh_reg();
        let x = f.fresh_reg();
        f.push(BlockId(0), Inst::Malloc { dst: p, size: 8 }); // [0] alloc
        f.push(BlockId(0), Inst::Alloca { dst: slot, size: 8 }); // [1]
        f.push(BlockId(0), Inst::Store { addr: slot, val: p }); // [2] escape
        f.push(BlockId(0), Inst::Switch(VasName(1))); // [3] switch
        f.push(BlockId(0), Inst::Load { dst: q, addr: slot }); // [4]
        f.push(BlockId(0), Inst::Load { dst: x, addr: q }); // [5] deref
        f.push(BlockId(0), Inst::Ret(None));
        m.add_function(f);
        let report = verify(&m, entry());
        assert_eq!(report.findings.len(), 1);
        let finding = &report.findings[0];
        assert_eq!(finding.site, Site::new(0, 0, 5));
        assert_eq!(finding.alloc_sites, vec![Site::new(0, 0, 0)]);
        assert_eq!(finding.escape_sites, vec![Site::new(0, 0, 2)]);
        assert_eq!(finding.switch_sites, vec![Site::new(0, 0, 3)]);
        assert!(finding.chain.contains("alloc@0:bb0[0]"));
        assert!(finding.chain.contains("escape@0:bb0[2]"));
        assert!(finding.chain.contains("switch@0:bb0[3]"));
        assert!(finding.chain.contains("load@0:bb0[5]"));
    }

    /// Escape through a shared segment crosses function boundaries: the
    /// producer stores into segment 0, the consumer loads from it.
    #[test]
    fn segment_escape_crosses_functions() {
        let mut m = Module::new();
        let mut main = Function::new("main", 0);
        let p = main.fresh_reg();
        let seg = main.fresh_reg();
        main.push(BlockId(0), Inst::Malloc { dst: p, size: 8 });
        main.push(
            BlockId(0),
            Inst::SegAddr {
                dst: seg,
                seg: SegName(0),
            },
        );
        main.push(BlockId(0), Inst::Store { addr: seg, val: p });
        main.push(
            BlockId(0),
            Inst::Call {
                dst: None,
                func: FuncId(1),
                args: vec![],
            },
        );
        main.push(BlockId(0), Inst::Ret(None));
        let mut consumer = Function::new("consumer", 0);
        let seg2 = consumer.fresh_reg();
        let q = consumer.fresh_reg();
        let x = consumer.fresh_reg();
        consumer.push(BlockId(0), Inst::Switch(VasName(1)));
        consumer.push(
            BlockId(0),
            Inst::SegAddr {
                dst: seg2,
                seg: SegName(0),
            },
        );
        consumer.push(BlockId(0), Inst::Load { dst: q, addr: seg2 });
        consumer.push(BlockId(0), Inst::Load { dst: x, addr: q });
        consumer.push(BlockId(0), Inst::Ret(None));
        m.add_function(main);
        m.add_function(consumer);
        let report = verify(&m, entry());
        let finding = report
            .findings
            .iter()
            .find(|f| f.site == Site::new(1, 0, 3))
            .expect("cross-function dangling deref detected");
        assert_eq!(finding.alloc_sites, vec![Site::new(0, 0, 0)]);
        assert_eq!(finding.escape_sites, vec![Site::new(0, 0, 2)]);
        assert_eq!(finding.func, "consumer");
    }

    /// A store through a vcast pointer poisons the heap: every later
    /// load degrades to unknown instead of trusting stale contents.
    #[test]
    fn vcast_store_poisons_heap() {
        let mut m = Module::new();
        let mut f = Function::new("main", 0);
        let p = f.fresh_reg();
        let slot = f.fresh_reg();
        let wild = f.fresh_reg();
        let c = f.fresh_reg();
        let q = f.fresh_reg();
        f.push(BlockId(0), Inst::Malloc { dst: p, size: 8 });
        f.push(BlockId(0), Inst::Alloca { dst: slot, size: 8 });
        f.push(BlockId(0), Inst::Store { addr: slot, val: p });
        f.push(BlockId(0), Inst::Const { dst: c, value: 7 });
        f.push(
            BlockId(0),
            Inst::VCast {
                dst: wild,
                src: c,
                vas: VasName(0),
            },
        );
        f.push(BlockId(0), Inst::Store { addr: wild, val: c });
        f.push(BlockId(0), Inst::Load { dst: q, addr: slot });
        f.push(BlockId(0), Inst::Ret(None));
        m.add_function(f);
        let a = Analysis::run(&m, entry());
        let prov = Provenance::run(&m, &a);
        assert!(prov.heap_poisoned);
        assert!(prov.pts_of(0, q).unknown, "poisoned heap degrades loads");
    }

    /// Recursion converges: a self-calling identity function.
    #[test]
    fn recursive_call_converges() {
        let mut m = Module::new();
        let mut main = Function::new("main", 0);
        let p = main.fresh_reg();
        let r = main.fresh_reg();
        main.push(BlockId(0), Inst::Malloc { dst: p, size: 8 });
        main.push(
            BlockId(0),
            Inst::Call {
                dst: Some(r),
                func: FuncId(1),
                args: vec![p],
            },
        );
        main.push(BlockId(0), Inst::Ret(None));
        let mut rec = Function::new("rec", 1);
        let arg = rec.params[0];
        let out = rec.fresh_reg();
        rec.push(
            BlockId(0),
            Inst::Call {
                dst: Some(out),
                func: FuncId(1),
                args: vec![arg],
            },
        );
        rec.push(BlockId(0), Inst::Ret(Some(arg)));
        m.add_function(main);
        m.add_function(rec);
        let a = Analysis::run(&m, entry());
        let prov = Provenance::run(&m, &a);
        assert_eq!(prov.pts_of(0, r), prov.pts_of(0, p));
    }
}
