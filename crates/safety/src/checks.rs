//! Unsafe-access detection and check insertion (Section 4.3).
//!
//! "Because checking every pointer dereference is too conservative, we
//! present a compiler analysis to prove when dereferences are safe, and a
//! transformation that only inserts checks where safety cannot be proven
//! statically."
//!
//! A load/store dereferencing `p` needs a check when any of:
//!
//! 1. `|VASvalid(p)| > 1` or `VASvalid(p) ∋ vunknown` — the target VAS is
//!    ambiguous;
//! 2. `|VASin(i)| > 1` — the current VAS is ambiguous;
//! 3. `VASvalid(p) ≠ VASin(i)` — they may differ.
//!
//! A store of pointer `v` through `p` needs a check unless
//! `VASvalid(p) = {vcommon}` (stores to the common region may hold any
//! pointer) or `|VASvalid(p)| = 1 ∧ VASvalid(p) = VASvalid(v)`.
//!
//! Pointers proven common-only are exempt from deref checks
//! ("dereferencing and storing to [stack/global pointers] is always
//! safe").

use crate::analysis::Analysis;
use crate::ir::{AbstractVas, Inst, Module, VasSet};

/// How checks are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckPolicy {
    /// Insert a check before *every* load and store (the trivial solution
    /// the paper rejects as too conservative) — the ablation baseline.
    Naive,
    /// Insert checks only where the analysis cannot prove safety.
    Analyzed,
}

/// Report of a check-insertion pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Dereference checks inserted.
    pub deref_checks: usize,
    /// Pointer-store checks inserted.
    pub store_checks: usize,
    /// Loads and stores in the module.
    pub mem_ops: usize,
    /// Memory operations proven safe (no check needed).
    pub proven_safe: usize,
}

impl CheckReport {
    /// Fraction of memory operations requiring a runtime check.
    pub fn check_ratio(&self) -> f64 {
        if self.mem_ops == 0 {
            0.0
        } else {
            (self.deref_checks + self.store_checks.min(self.mem_ops)) as f64 / self.mem_ops as f64
        }
    }
}

fn is_common_only(set: &VasSet) -> bool {
    set.len() == 1 && set.contains(&AbstractVas::Common)
}

fn deref_needs_check(valid: &VasSet, vas_in: &VasSet) -> bool {
    if is_common_only(valid) {
        return false; // stack/global pointers are always safe
    }
    if valid.is_empty() {
        // Not recognizably a pointer produced by a tracked source (e.g. a
        // constant); be conservative.
        return true;
    }
    valid.len() > 1 || valid.contains(&AbstractVas::Unknown) || vas_in.len() > 1 || valid != vas_in
}

fn store_ptr_needs_check(valid_p: &VasSet, valid_v: &VasSet) -> bool {
    if is_common_only(valid_p) {
        return false; // rule 1: store to the common region
    }
    // rule 2: both provably in the same single VAS
    !(valid_p.len() == 1 && valid_p == valid_v && !valid_p.contains(&AbstractVas::Unknown))
}

/// Inserts checks into `module` according to `policy`, using `analysis`
/// when the policy is [`CheckPolicy::Analyzed`].
///
/// Returns what was inserted. The module is modified in place: flagged
/// loads/stores get a [`Inst::CheckDeref`] (and pointer stores a
/// [`Inst::CheckStore`]) immediately before them.
pub fn insert_checks(module: &mut Module, analysis: &Analysis, policy: CheckPolicy) -> CheckReport {
    let mut report = CheckReport::default();
    for (fi, func) in module.functions.iter_mut().enumerate() {
        for (bi, block) in func.blocks.iter_mut().enumerate() {
            let mut new_insts = Vec::with_capacity(block.insts.len());
            for (ii, inst) in block.insts.iter().enumerate() {
                match inst {
                    Inst::Load { addr, .. } => {
                        report.mem_ops += 1;
                        let need = match policy {
                            CheckPolicy::Naive => true,
                            CheckPolicy::Analyzed => deref_needs_check(
                                &analysis.valid_of(fi, *addr),
                                analysis.vas_in_of(fi, crate::ir::BlockId(bi as u32), ii),
                            ),
                        };
                        if need {
                            new_insts.push(Inst::CheckDeref { addr: *addr });
                            report.deref_checks += 1;
                        } else {
                            report.proven_safe += 1;
                        }
                    }
                    Inst::Store { addr, val } => {
                        report.mem_ops += 1;
                        let vas_in = analysis.vas_in_of(fi, crate::ir::BlockId(bi as u32), ii);
                        let valid_p = analysis.valid_of(fi, *addr);
                        let valid_v = analysis.valid_of(fi, *val);
                        let (need_deref, need_store) = match policy {
                            CheckPolicy::Naive => (true, !valid_v.is_empty()),
                            CheckPolicy::Analyzed => (
                                deref_needs_check(&valid_p, vas_in),
                                // Only pointer stores need the containment
                                // rule; integer stores have no valid set.
                                !valid_v.is_empty() && store_ptr_needs_check(&valid_p, &valid_v),
                            ),
                        };
                        if need_deref {
                            new_insts.push(Inst::CheckDeref { addr: *addr });
                            report.deref_checks += 1;
                        }
                        if need_store {
                            new_insts.push(Inst::CheckStore {
                                addr: *addr,
                                val: *val,
                            });
                            report.store_checks += 1;
                        }
                        if !need_deref && !need_store {
                            report.proven_safe += 1;
                        }
                    }
                    _ => {}
                }
                new_insts.push(inst.clone());
            }
            block.insts = new_insts;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analysis;
    use crate::ir::{BlockId, Function, Module, VasName};

    fn entry() -> VasSet {
        [AbstractVas::Vas(VasName(0))].into_iter().collect()
    }

    /// p = malloc; *p = 1; x = *p — provably safe, no checks.
    #[test]
    fn straightline_same_vas_needs_no_checks() {
        let mut m = Module::new();
        let mut f = Function::new("main", 0);
        let p = f.fresh_reg();
        let one = f.fresh_reg();
        let x = f.fresh_reg();
        f.push(BlockId(0), Inst::Malloc { dst: p, size: 8 });
        f.push(BlockId(0), Inst::Const { dst: one, value: 1 });
        f.push(BlockId(0), Inst::Store { addr: p, val: one });
        f.push(BlockId(0), Inst::Load { dst: x, addr: p });
        f.push(BlockId(0), Inst::Ret(None));
        m.add_function(f);
        let a = Analysis::run(&m, entry());
        let report = insert_checks(&mut m, &a, CheckPolicy::Analyzed);
        assert_eq!(report.deref_checks + report.store_checks, 0);
        assert_eq!(report.proven_safe, 2);
        assert_eq!(m.check_count(), 0);
    }

    /// p = malloc (in VAS 0); switch 1; x = *p — dereference in the
    /// wrong VAS: check required.
    #[test]
    fn cross_vas_deref_flagged() {
        let mut m = Module::new();
        let mut f = Function::new("main", 0);
        let p = f.fresh_reg();
        let x = f.fresh_reg();
        f.push(BlockId(0), Inst::Malloc { dst: p, size: 8 });
        f.push(BlockId(0), Inst::Switch(VasName(1)));
        f.push(BlockId(0), Inst::Load { dst: x, addr: p });
        f.push(BlockId(0), Inst::Ret(None));
        m.add_function(f);
        let a = Analysis::run(&m, entry());
        let report = insert_checks(&mut m, &a, CheckPolicy::Analyzed);
        assert_eq!(report.deref_checks, 1);
    }

    /// Stack pointers are always safe to dereference.
    #[test]
    fn common_pointers_not_checked() {
        let mut m = Module::new();
        let mut f = Function::new("main", 0);
        let s = f.fresh_reg();
        let x = f.fresh_reg();
        f.push(BlockId(0), Inst::Alloca { dst: s, size: 8 });
        f.push(BlockId(0), Inst::Switch(VasName(1)));
        f.push(BlockId(0), Inst::Load { dst: x, addr: s });
        f.push(BlockId(0), Inst::Ret(None));
        m.add_function(f);
        let a = Analysis::run(&m, entry());
        let report = insert_checks(&mut m, &a, CheckPolicy::Analyzed);
        assert_eq!(report.deref_checks, 0, "common region valid in every VAS");
    }

    /// Storing a VAS pointer into common memory is fine; storing a
    /// cross-VAS pointer into VAS memory needs a store check.
    #[test]
    fn pointer_store_rules() {
        let mut m = Module::new();
        let mut f = Function::new("main", 0);
        let s = f.fresh_reg();
        let p = f.fresh_reg();
        let q = f.fresh_reg();
        f.push(BlockId(0), Inst::Alloca { dst: s, size: 8 });
        f.push(BlockId(0), Inst::Malloc { dst: p, size: 8 });
        f.push(BlockId(0), Inst::Store { addr: s, val: p }); // ptr -> common: ok
        f.push(BlockId(0), Inst::Switch(VasName(1)));
        f.push(BlockId(0), Inst::Malloc { dst: q, size: 8 });
        f.push(BlockId(0), Inst::Store { addr: q, val: p }); // VAS0 ptr -> VAS1 mem: check
        f.push(BlockId(0), Inst::Ret(None));
        m.add_function(f);
        let a = Analysis::run(&m, entry());
        let report = insert_checks(&mut m, &a, CheckPolicy::Analyzed);
        assert_eq!(report.store_checks, 1);
    }

    /// Naive policy checks everything; analysis prunes.
    #[test]
    fn analyzed_beats_naive() {
        let mut m = Module::new();
        let mut f = Function::new("main", 0);
        let p = f.fresh_reg();
        let c = f.fresh_reg();
        f.push(BlockId(0), Inst::Malloc { dst: p, size: 64 });
        f.push(BlockId(0), Inst::Const { dst: c, value: 7 });
        for _ in 0..10 {
            f.push(BlockId(0), Inst::Store { addr: p, val: c });
        }
        f.push(BlockId(0), Inst::Ret(None));
        m.add_function(f);
        let a = Analysis::run(&m, entry());
        let mut naive = m.clone();
        let naive_report = insert_checks(&mut naive, &a, CheckPolicy::Naive);
        let analyzed_report = insert_checks(&mut m, &a, CheckPolicy::Analyzed);
        assert_eq!(naive_report.deref_checks, 10);
        assert_eq!(analyzed_report.deref_checks, 0);
        assert!(analyzed_report.check_ratio() < naive_report.check_ratio());
    }

    /// Ambiguous current VAS (branch-dependent switch) forces checks even
    /// for pointers that are valid somewhere.
    #[test]
    fn ambiguous_vas_in_forces_check() {
        let mut m = Module::new();
        let mut f = Function::new("main", 0);
        let cond = f.fresh_reg();
        let p = f.fresh_reg();
        let x = f.fresh_reg();
        let t = f.add_block();
        let j = f.add_block();
        f.push(BlockId(0), Inst::Malloc { dst: p, size: 8 });
        f.push(
            BlockId(0),
            Inst::Const {
                dst: cond,
                value: 1,
            },
        );
        f.push(
            BlockId(0),
            Inst::CondBr {
                cond,
                then_bb: t,
                else_bb: j,
            },
        );
        f.push(t, Inst::Switch(VasName(1)));
        f.push(t, Inst::Br(j));
        f.push(j, Inst::Load { dst: x, addr: p });
        f.push(j, Inst::Ret(None));
        m.add_function(f);
        let a = Analysis::run(&m, entry());
        let report = insert_checks(&mut m, &a, CheckPolicy::Analyzed);
        assert_eq!(report.deref_checks, 1, "VASin at the load is {{0, 1}}");
    }
}
