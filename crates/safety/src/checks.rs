//! Unsafe-access detection and check insertion (Section 4.3).
//!
//! "Because checking every pointer dereference is too conservative, we
//! present a compiler analysis to prove when dereferences are safe, and a
//! transformation that only inserts checks where safety cannot be proven
//! statically."
//!
//! A load/store dereferencing `p` needs a check when any of:
//!
//! 1. `|VASvalid(p)| > 1` or `VASvalid(p) ∋ vunknown` — the target VAS is
//!    ambiguous;
//! 2. `|VASin(i)| > 1` — the current VAS is ambiguous;
//! 3. `VASvalid(p) ≠ VASin(i)` — they may differ.
//!
//! A store of pointer `v` through `p` needs a check unless
//! `VASvalid(p) = {vcommon}` (stores to the common region may hold any
//! pointer) or `|VASvalid(p)| = 1 ∧ VASvalid(p) = VASvalid(v)`.
//!
//! Pointers proven common-only are exempt from deref checks
//! ("dereferencing and storing to [stack/global pointers] is always
//! safe").

use std::collections::HashMap;

use crate::analysis::Analysis;
use crate::ir::{AbstractVas, BlockId, Inst, Module, Site, VasSet};
use crate::provenance::{self, SiteClass};

/// How checks are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckPolicy {
    /// Insert a check before *every* load and store (the trivial solution
    /// the paper rejects as too conservative) — the ablation baseline.
    Naive,
    /// Insert checks only where the intraprocedural `VASvalid`/`VASin`
    /// analysis cannot prove safety.
    Analyzed,
    /// [`Analyzed`](CheckPolicy::Analyzed), further pruned by the
    /// interprocedural provenance verifier: any site it proves safe
    /// drops its check. By construction this elides a superset of what
    /// `Analyzed` elides.
    Interprocedural,
}

/// Report of a check-insertion pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Dereference checks inserted.
    pub deref_checks: usize,
    /// Pointer-store checks inserted.
    pub store_checks: usize,
    /// Loads and stores in the module.
    pub mem_ops: usize,
    /// Memory operations proven safe (no check needed).
    pub proven_safe: usize,
}

impl CheckReport {
    /// Fraction of memory operations requiring a runtime check.
    pub fn check_ratio(&self) -> f64 {
        if self.mem_ops == 0 {
            0.0
        } else {
            (self.deref_checks + self.store_checks.min(self.mem_ops)) as f64 / self.mem_ops as f64
        }
    }
}

fn is_common_only(set: &VasSet) -> bool {
    set.len() == 1 && set.contains(&AbstractVas::Common)
}

fn deref_needs_check(valid: &VasSet, vas_in: &VasSet) -> bool {
    if is_common_only(valid) {
        return false; // stack/global pointers are always safe
    }
    if valid.is_empty() {
        // Not recognizably a pointer produced by a tracked source (e.g. a
        // constant); be conservative.
        return true;
    }
    valid.len() > 1 || valid.contains(&AbstractVas::Unknown) || vas_in.len() > 1 || valid != vas_in
}

fn store_ptr_needs_check(valid_p: &VasSet, valid_v: &VasSet) -> bool {
    if is_common_only(valid_p) {
        return false; // rule 1: store to the common region
    }
    // rule 2: both provably in the same single VAS
    !(valid_p.len() == 1 && valid_p == valid_v && !valid_p.contains(&AbstractVas::Unknown))
}

/// The check decision at one memory-operation site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteDecision {
    /// A [`Inst::CheckDeref`] goes before the operation.
    pub need_deref: bool,
    /// A [`Inst::CheckStore`] goes before the operation (stores only).
    pub need_store: bool,
}

/// A check-insertion plan: the per-site decisions plus the totals. The
/// plan is computed on the *uninstrumented* module, so sites keep their
/// original coordinates — the soundness harness compares them against
/// the interpreter's site log.
#[derive(Debug, Clone, Default)]
pub struct CheckPlan {
    /// Decision per load/store site.
    pub decisions: HashMap<Site, SiteDecision>,
    /// What the plan would insert.
    pub report: CheckReport,
}

impl CheckPlan {
    /// The decision at a site (no-checks if the site is not a mem op).
    pub fn decision_at(&self, site: Site) -> SiteDecision {
        self.decisions.get(&site).copied().unwrap_or_default()
    }
}

/// Computes the check-insertion plan for `module` under `policy` without
/// modifying it. [`CheckPolicy::Interprocedural`] runs the provenance
/// verifier and drops any check whose aspect it proved safe.
pub fn plan_checks(module: &Module, analysis: &Analysis, policy: CheckPolicy) -> CheckPlan {
    let verified = match policy {
        CheckPolicy::Interprocedural => Some(provenance::verify_with(module, analysis)),
        _ => None,
    };
    let mut plan = CheckPlan::default();
    for (fi, func) in module.functions.iter().enumerate() {
        for (bi, block) in func.blocks.iter().enumerate() {
            for (ii, inst) in block.insts.iter().enumerate() {
                let site = Site::new(fi, bi, ii);
                let vas_in = analysis.vas_in_of(fi, BlockId(bi as u32), ii);
                let mut decision = match inst {
                    Inst::Load { addr, .. } => {
                        let need = match policy {
                            CheckPolicy::Naive => true,
                            CheckPolicy::Analyzed | CheckPolicy::Interprocedural => {
                                deref_needs_check(&analysis.valid_of(fi, *addr), vas_in)
                            }
                        };
                        SiteDecision {
                            need_deref: need,
                            need_store: false,
                        }
                    }
                    Inst::Store { addr, val } => {
                        let valid_p = analysis.valid_of(fi, *addr);
                        let valid_v = analysis.valid_of(fi, *val);
                        let (need_deref, need_store) = match policy {
                            CheckPolicy::Naive => (true, !valid_v.is_empty()),
                            CheckPolicy::Analyzed | CheckPolicy::Interprocedural => (
                                deref_needs_check(&valid_p, vas_in),
                                // Only pointer stores need the containment
                                // rule; integer stores have no valid set.
                                !valid_v.is_empty() && store_ptr_needs_check(&valid_p, &valid_v),
                            ),
                        };
                        SiteDecision {
                            need_deref,
                            need_store,
                        }
                    }
                    _ => continue,
                };
                if let Some(report) = &verified {
                    if let Some(verdict) = report.verdict_at(site) {
                        if verdict.deref == SiteClass::ProvenSafe {
                            decision.need_deref = false;
                        }
                        if verdict.store == Some(SiteClass::ProvenSafe) {
                            decision.need_store = false;
                        }
                    }
                }
                plan.report.mem_ops += 1;
                if decision.need_deref {
                    plan.report.deref_checks += 1;
                }
                if decision.need_store {
                    plan.report.store_checks += 1;
                }
                if !decision.need_deref && !decision.need_store {
                    plan.report.proven_safe += 1;
                }
                plan.decisions.insert(site, decision);
            }
        }
    }
    plan
}

/// Inserts checks into `module` according to `policy`.
///
/// Returns what was inserted. The module is modified in place: flagged
/// loads/stores get a [`Inst::CheckDeref`] (and pointer stores a
/// [`Inst::CheckStore`]) immediately before them.
pub fn insert_checks(module: &mut Module, analysis: &Analysis, policy: CheckPolicy) -> CheckReport {
    let plan = plan_checks(module, analysis, policy);
    apply_plan(module, &plan);
    plan.report
}

/// Applies a previously computed [`CheckPlan`] to `module`.
pub fn apply_plan(module: &mut Module, plan: &CheckPlan) {
    for (fi, func) in module.functions.iter_mut().enumerate() {
        for (bi, block) in func.blocks.iter_mut().enumerate() {
            let mut new_insts = Vec::with_capacity(block.insts.len());
            for (ii, inst) in block.insts.iter().enumerate() {
                let decision = plan.decision_at(Site::new(fi, bi, ii));
                if decision.need_deref {
                    let addr = match inst {
                        Inst::Load { addr, .. } | Inst::Store { addr, .. } => *addr,
                        _ => unreachable!("deref check planned at a non-mem-op site"),
                    };
                    new_insts.push(Inst::CheckDeref { addr });
                }
                if decision.need_store {
                    let Inst::Store { addr, val } = inst else {
                        unreachable!("store check planned at a non-store site")
                    };
                    new_insts.push(Inst::CheckStore {
                        addr: *addr,
                        val: *val,
                    });
                }
                new_insts.push(inst.clone());
            }
            block.insts = new_insts;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analysis;
    use crate::ir::{BlockId, Function, Module, VasName};

    fn entry() -> VasSet {
        [AbstractVas::Vas(VasName(0))].into_iter().collect()
    }

    /// p = malloc; *p = 1; x = *p — provably safe, no checks.
    #[test]
    fn straightline_same_vas_needs_no_checks() {
        let mut m = Module::new();
        let mut f = Function::new("main", 0);
        let p = f.fresh_reg();
        let one = f.fresh_reg();
        let x = f.fresh_reg();
        f.push(BlockId(0), Inst::Malloc { dst: p, size: 8 });
        f.push(BlockId(0), Inst::Const { dst: one, value: 1 });
        f.push(BlockId(0), Inst::Store { addr: p, val: one });
        f.push(BlockId(0), Inst::Load { dst: x, addr: p });
        f.push(BlockId(0), Inst::Ret(None));
        m.add_function(f);
        let a = Analysis::run(&m, entry());
        let report = insert_checks(&mut m, &a, CheckPolicy::Analyzed);
        assert_eq!(report.deref_checks + report.store_checks, 0);
        assert_eq!(report.proven_safe, 2);
        assert_eq!(m.check_count(), 0);
    }

    /// p = malloc (in VAS 0); switch 1; x = *p — dereference in the
    /// wrong VAS: check required.
    #[test]
    fn cross_vas_deref_flagged() {
        let mut m = Module::new();
        let mut f = Function::new("main", 0);
        let p = f.fresh_reg();
        let x = f.fresh_reg();
        f.push(BlockId(0), Inst::Malloc { dst: p, size: 8 });
        f.push(BlockId(0), Inst::Switch(VasName(1)));
        f.push(BlockId(0), Inst::Load { dst: x, addr: p });
        f.push(BlockId(0), Inst::Ret(None));
        m.add_function(f);
        let a = Analysis::run(&m, entry());
        let report = insert_checks(&mut m, &a, CheckPolicy::Analyzed);
        assert_eq!(report.deref_checks, 1);
    }

    /// Stack pointers are always safe to dereference.
    #[test]
    fn common_pointers_not_checked() {
        let mut m = Module::new();
        let mut f = Function::new("main", 0);
        let s = f.fresh_reg();
        let x = f.fresh_reg();
        f.push(BlockId(0), Inst::Alloca { dst: s, size: 8 });
        f.push(BlockId(0), Inst::Switch(VasName(1)));
        f.push(BlockId(0), Inst::Load { dst: x, addr: s });
        f.push(BlockId(0), Inst::Ret(None));
        m.add_function(f);
        let a = Analysis::run(&m, entry());
        let report = insert_checks(&mut m, &a, CheckPolicy::Analyzed);
        assert_eq!(report.deref_checks, 0, "common region valid in every VAS");
    }

    /// Storing a VAS pointer into common memory is fine; storing a
    /// cross-VAS pointer into VAS memory needs a store check.
    #[test]
    fn pointer_store_rules() {
        let mut m = Module::new();
        let mut f = Function::new("main", 0);
        let s = f.fresh_reg();
        let p = f.fresh_reg();
        let q = f.fresh_reg();
        f.push(BlockId(0), Inst::Alloca { dst: s, size: 8 });
        f.push(BlockId(0), Inst::Malloc { dst: p, size: 8 });
        f.push(BlockId(0), Inst::Store { addr: s, val: p }); // ptr -> common: ok
        f.push(BlockId(0), Inst::Switch(VasName(1)));
        f.push(BlockId(0), Inst::Malloc { dst: q, size: 8 });
        f.push(BlockId(0), Inst::Store { addr: q, val: p }); // VAS0 ptr -> VAS1 mem: check
        f.push(BlockId(0), Inst::Ret(None));
        m.add_function(f);
        let a = Analysis::run(&m, entry());
        let report = insert_checks(&mut m, &a, CheckPolicy::Analyzed);
        assert_eq!(report.store_checks, 1);
    }

    /// Naive policy checks everything; analysis prunes.
    #[test]
    fn analyzed_beats_naive() {
        let mut m = Module::new();
        let mut f = Function::new("main", 0);
        let p = f.fresh_reg();
        let c = f.fresh_reg();
        f.push(BlockId(0), Inst::Malloc { dst: p, size: 64 });
        f.push(BlockId(0), Inst::Const { dst: c, value: 7 });
        for _ in 0..10 {
            f.push(BlockId(0), Inst::Store { addr: p, val: c });
        }
        f.push(BlockId(0), Inst::Ret(None));
        m.add_function(f);
        let a = Analysis::run(&m, entry());
        let mut naive = m.clone();
        let naive_report = insert_checks(&mut naive, &a, CheckPolicy::Naive);
        let analyzed_report = insert_checks(&mut m, &a, CheckPolicy::Analyzed);
        assert_eq!(naive_report.deref_checks, 10);
        assert_eq!(analyzed_report.deref_checks, 0);
        assert!(analyzed_report.check_ratio() < naive_report.check_ratio());
    }

    /// Ambiguous current VAS (branch-dependent switch) forces checks even
    /// for pointers that are valid somewhere.
    #[test]
    fn ambiguous_vas_in_forces_check() {
        let mut m = Module::new();
        let mut f = Function::new("main", 0);
        let cond = f.fresh_reg();
        let p = f.fresh_reg();
        let x = f.fresh_reg();
        let t = f.add_block();
        let j = f.add_block();
        f.push(BlockId(0), Inst::Malloc { dst: p, size: 8 });
        f.push(
            BlockId(0),
            Inst::Const {
                dst: cond,
                value: 1,
            },
        );
        f.push(
            BlockId(0),
            Inst::CondBr {
                cond,
                then_bb: t,
                else_bb: j,
            },
        );
        f.push(t, Inst::Switch(VasName(1)));
        f.push(t, Inst::Br(j));
        f.push(j, Inst::Load { dst: x, addr: p });
        f.push(j, Inst::Ret(None));
        m.add_function(f);
        let a = Analysis::run(&m, entry());
        let report = insert_checks(&mut m, &a, CheckPolicy::Analyzed);
        assert_eq!(report.deref_checks, 1, "VASin at the load is {{0, 1}}");
    }

    /// The boxed reload: `Analyzed` must check the loaded pointer (it is
    /// `vunknown`); `Interprocedural` proves it safe and elides.
    #[test]
    fn interprocedural_elides_boxed_reload() {
        let mut m = Module::new();
        let mut f = Function::new("main", 0);
        let p = f.fresh_reg();
        let slot = f.fresh_reg();
        let q = f.fresh_reg();
        let x = f.fresh_reg();
        f.push(BlockId(0), Inst::Malloc { dst: p, size: 8 });
        f.push(BlockId(0), Inst::Alloca { dst: slot, size: 8 });
        f.push(BlockId(0), Inst::Store { addr: slot, val: p });
        f.push(BlockId(0), Inst::Load { dst: q, addr: slot });
        f.push(BlockId(0), Inst::Load { dst: x, addr: q });
        f.push(BlockId(0), Inst::Ret(Some(x)));
        m.add_function(f);
        let a = Analysis::run(&m, entry());
        let analyzed = plan_checks(&m, &a, CheckPolicy::Analyzed);
        let interproc = plan_checks(&m, &a, CheckPolicy::Interprocedural);
        assert_eq!(analyzed.report.deref_checks, 1, "q is vunknown");
        assert_eq!(
            interproc.report.deref_checks, 0,
            "provenance recovers q = p"
        );
        assert!(interproc.report.proven_safe > analyzed.report.proven_safe);
    }

    /// Interprocedural elision is a superset of Analyzed elision: every
    /// check it keeps, Analyzed also keeps.
    #[test]
    fn interprocedural_is_a_refinement() {
        let mut m = Module::new();
        let mut f = Function::new("main", 0);
        let p = f.fresh_reg();
        let slot = f.fresh_reg();
        let q = f.fresh_reg();
        let x = f.fresh_reg();
        f.push(BlockId(0), Inst::Malloc { dst: p, size: 8 });
        f.push(BlockId(0), Inst::Alloca { dst: slot, size: 8 });
        f.push(BlockId(0), Inst::Store { addr: slot, val: p });
        f.push(BlockId(0), Inst::Switch(VasName(1)));
        f.push(BlockId(0), Inst::Load { dst: q, addr: slot });
        f.push(BlockId(0), Inst::Load { dst: x, addr: q });
        f.push(BlockId(0), Inst::Ret(None));
        m.add_function(f);
        let a = Analysis::run(&m, entry());
        let analyzed = plan_checks(&m, &a, CheckPolicy::Analyzed);
        let interproc = plan_checks(&m, &a, CheckPolicy::Interprocedural);
        for (site, d) in &interproc.decisions {
            let ad = analyzed.decision_at(*site);
            assert!(!d.need_deref || ad.need_deref);
            assert!(!d.need_store || ad.need_store);
        }
    }
}
