//! An IR interpreter with tagged pointers: the runtime side of the
//! safety system, and the ground truth for testing the static analysis.
//!
//! Pointers carry the region (VAS or common) they belong to — the paper
//! tracks this "via tagged pointers (using the unused bits of the
//! pointer)". Every dereference is validated against the Section 3.3
//! rules, so an *uninstrumented* unsafe program traps with
//! [`Trap::UnsafeDeref`]/[`Trap::UnsafeStore`] at the faulting access,
//! while an *instrumented* program traps earlier, at the inserted check
//! ([`Trap::CheckFailed`]) — and safe programs run to completion either
//! way. Check executions are counted so the overhead ablation can price
//! them.

use std::collections::{BTreeSet, HashMap};

use crate::ir::{BlockId, FuncId, Inst, Module, Reg, SegName, Site, VasName};

/// Base address of shared-segment memory in the common region. Far
/// above anything the bump allocator hands out, so segment cells never
/// collide with allocas/globals.
const SEG_BASE: u64 = 0x5360_0000;
/// Address span reserved per segment name.
const SEG_SPAN: u64 = 0x1_0000;

/// Where a runtime pointer points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Stack/globals — mapped in every VAS.
    Common,
    /// A specific VAS's memory.
    Vas(VasName),
}

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    /// An integer.
    Int(u64),
    /// A tagged pointer.
    Ptr {
        /// Region tag.
        region: Region,
        /// Address within the region.
        addr: u64,
    },
}

/// Runtime traps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// Dereference of a pointer whose VAS is not active (uninstrumented).
    UnsafeDeref {
        /// Region the pointer belongs to.
        region: Region,
        /// VAS that was active.
        current: VasName,
    },
    /// Store of a pointer into a region it may not be stored in.
    UnsafeStore {
        /// Region of the stored pointer.
        value_region: Region,
        /// Region of the target memory.
        target_region: Region,
    },
    /// An inserted check failed (instrumented programs).
    CheckFailed {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// Load of a never-written cell.
    UninitializedRead(u64),
    /// Use of a register before definition.
    UndefinedRegister(Reg),
    /// Dereference of an integer.
    NotAPointer,
    /// Execution exceeded the step budget.
    StepLimit,
    /// Phi had no incoming edge for the predecessor taken.
    BrokenPhi,
    /// `unlock s` of a segment lock the program does not hold.
    UnlockNotHeld(SegName),
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Trap::UnsafeDeref { region, current } => {
                write!(
                    f,
                    "unsafe dereference of {region:?} pointer while in VAS {current:?}"
                )
            }
            Trap::UnsafeStore {
                value_region,
                target_region,
            } => {
                write!(
                    f,
                    "unsafe store of {value_region:?} pointer into {target_region:?} memory"
                )
            }
            Trap::CheckFailed { reason } => write!(f, "inserted check failed: {reason}"),
            Trap::UninitializedRead(a) => write!(f, "read of uninitialized address {a:#x}"),
            Trap::UndefinedRegister(r) => write!(f, "use of undefined register {r:?}"),
            Trap::NotAPointer => write!(f, "dereference of a non-pointer value"),
            Trap::StepLimit => write!(f, "step limit exceeded"),
            Trap::BrokenPhi => write!(f, "phi without matching predecessor"),
            Trap::UnlockNotHeld(s) => write!(f, "unlock of segment {s:?} that is not held"),
        }
    }
}

impl std::error::Error for Trap {}

/// Execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InterpStats {
    /// Instructions executed.
    pub steps: u64,
    /// Check instructions executed.
    pub checks_executed: u64,
    /// VAS switches performed.
    pub switches: u64,
    /// Loads + stores performed.
    pub mem_ops: u64,
    /// Segment lock/unlock operations performed.
    pub lock_ops: u64,
}

/// Per-site execution log, for the soundness self-validation harness:
/// which memory operations completed, and where execution faulted.
#[derive(Debug, Clone, Default)]
pub struct SiteLog {
    /// Load/store sites (and check sites) that executed successfully at
    /// least once.
    pub executed_ok: BTreeSet<Site>,
    /// The memory-operation or check site whose execution trapped, if
    /// the trap happened inside one (`None` for traps elsewhere, e.g. an
    /// undefined register in a branch).
    pub fault: Option<Site>,
}

struct Frame {
    func: FuncId,
    block: BlockId,
    prev_block: Option<BlockId>,
    idx: usize,
    regs: HashMap<Reg, Value>,
    ret_to: Option<Reg>,
}

/// The interpreter.
pub struct Interp<'m> {
    module: &'m Module,
    memory: HashMap<(Region, u64), Value>,
    heap_next: HashMap<Region, u64>,
    current: VasName,
    held: BTreeSet<SegName>,
    stats: InterpStats,
    step_limit: u64,
    log: Option<SiteLog>,
    pending_site: Option<Site>,
}

impl<'m> Interp<'m> {
    /// Creates an interpreter for `module`, entering in `entry_vas`.
    pub fn new(module: &'m Module, entry_vas: VasName) -> Self {
        Interp {
            module,
            memory: HashMap::new(),
            heap_next: HashMap::new(),
            current: entry_vas,
            held: BTreeSet::new(),
            stats: InterpStats::default(),
            step_limit: 1_000_000,
            log: None,
            pending_site: None,
        }
    }

    /// Overrides the default step budget.
    pub fn with_step_limit(mut self, limit: u64) -> Self {
        self.step_limit = limit;
        self
    }

    /// Enables the per-site execution log (see [`SiteLog`]).
    pub fn with_site_log(mut self) -> Self {
        self.log = Some(SiteLog::default());
        self
    }

    /// The site log, if enabled.
    pub fn site_log(&self) -> Option<&SiteLog> {
        self.log.as_ref()
    }

    /// Execution statistics.
    pub fn stats(&self) -> InterpStats {
        self.stats
    }

    /// Segment locks currently held (for end-of-run leak assertions).
    pub fn held_locks(&self) -> &BTreeSet<SegName> {
        &self.held
    }

    fn alloc(&mut self, region: Region, size: u64) -> u64 {
        let next = self.heap_next.entry(region).or_insert(0x1000);
        let addr = *next;
        *next += size.max(8).div_ceil(16) * 16;
        addr
    }

    fn get(regs: &HashMap<Reg, Value>, r: Reg) -> Result<Value, Trap> {
        regs.get(&r).copied().ok_or(Trap::UndefinedRegister(r))
    }

    fn deref_ok(&self, region: Region) -> bool {
        match region {
            Region::Common => true,
            Region::Vas(v) => v == self.current,
        }
    }

    fn store_ok(target: Region, value: Value) -> bool {
        let Value::Ptr { region: vr, .. } = value else {
            return true;
        };
        match target {
            Region::Common => true,
            Region::Vas(t) => vr == Region::Vas(t),
        }
    }

    /// Runs `main` (function 0) with integer arguments.
    ///
    /// # Errors
    ///
    /// Returns the [`Trap`] that aborted execution.
    pub fn run(&mut self, args: &[u64]) -> Result<Option<Value>, Trap> {
        let result = self.run_inner(args);
        if result.is_err() {
            if let Some(log) = &mut self.log {
                log.fault = self.pending_site;
            }
        }
        result
    }

    fn run_inner(&mut self, args: &[u64]) -> Result<Option<Value>, Trap> {
        let main = &self.module.functions[0];
        let mut regs = HashMap::new();
        for (p, a) in main.params.iter().zip(args) {
            regs.insert(*p, Value::Int(*a));
        }
        let mut stack = vec![Frame {
            func: FuncId(0),
            block: BlockId(0),
            prev_block: None,
            idx: 0,
            regs,
            ret_to: None,
        }];
        let mut last_ret: Option<Value> = None;

        'outer: while let Some(frame) = stack.last_mut() {
            let func = &self.module.functions[frame.func.0 as usize];
            let block = &func.blocks[frame.block.0 as usize];
            // Evaluate phis when (re-)entering a block.
            if frame.idx == 0 && !block.phis.is_empty() {
                let prev = frame.prev_block.ok_or(Trap::BrokenPhi)?;
                let mut values = Vec::with_capacity(block.phis.len());
                for phi in &block.phis {
                    let (_, r) = phi
                        .incomings
                        .iter()
                        .find(|(b, _)| *b == prev)
                        .ok_or(Trap::BrokenPhi)?;
                    values.push((phi.dst, Self::get(&frame.regs, *r)?));
                }
                for (d, v) in values {
                    frame.regs.insert(d, v);
                }
            }
            while frame.idx < block.insts.len() {
                self.stats.steps += 1;
                if self.stats.steps > self.step_limit {
                    return Err(Trap::StepLimit);
                }
                let inst = &block.insts[frame.idx];
                frame.idx += 1;
                // Track the site of memory operations and checks so a
                // trap inside one can be attributed to it.
                self.pending_site = if self.log.is_some()
                    && matches!(
                        inst,
                        Inst::Load { .. }
                            | Inst::Store { .. }
                            | Inst::CheckDeref { .. }
                            | Inst::CheckStore { .. }
                    ) {
                    Some(Site {
                        func: frame.func.0,
                        block: frame.block.0,
                        idx: (frame.idx - 1) as u32,
                    })
                } else {
                    None
                };
                match inst {
                    Inst::Switch(v) => {
                        self.current = *v;
                        self.stats.switches += 1;
                    }
                    Inst::VCast { dst, src, vas } => {
                        let v = Self::get(&frame.regs, *src)?;
                        let addr = match v {
                            Value::Ptr { addr, .. } => addr,
                            Value::Int(a) => a,
                        };
                        frame.regs.insert(
                            *dst,
                            Value::Ptr {
                                region: Region::Vas(*vas),
                                addr,
                            },
                        );
                    }
                    Inst::Alloca { dst, size } => {
                        let addr = self.alloc(Region::Common, *size);
                        frame.regs.insert(
                            *dst,
                            Value::Ptr {
                                region: Region::Common,
                                addr,
                            },
                        );
                    }
                    Inst::Global { dst, .. } => {
                        let addr = self.alloc(Region::Common, 8);
                        frame.regs.insert(
                            *dst,
                            Value::Ptr {
                                region: Region::Common,
                                addr,
                            },
                        );
                    }
                    Inst::Malloc { dst, size } => {
                        let region = Region::Vas(self.current);
                        let addr = self.alloc(region, *size);
                        frame.regs.insert(*dst, Value::Ptr { region, addr });
                    }
                    Inst::Copy { dst, src } => {
                        let v = Self::get(&frame.regs, *src)?;
                        frame.regs.insert(*dst, v);
                    }
                    Inst::Const { dst, value } => {
                        frame.regs.insert(*dst, Value::Int(*value));
                    }
                    Inst::Load { dst, addr } => {
                        self.stats.mem_ops += 1;
                        let p = Self::get(&frame.regs, *addr)?;
                        let Value::Ptr { region, addr: a } = p else {
                            return Err(Trap::NotAPointer);
                        };
                        if !self.deref_ok(region) {
                            return Err(Trap::UnsafeDeref {
                                region,
                                current: self.current,
                            });
                        }
                        let v = self
                            .memory
                            .get(&(region, a))
                            .copied()
                            .ok_or(Trap::UninitializedRead(a))?;
                        frame.regs.insert(*dst, v);
                    }
                    Inst::Store { addr, val } => {
                        self.stats.mem_ops += 1;
                        let p = Self::get(&frame.regs, *addr)?;
                        let v = Self::get(&frame.regs, *val)?;
                        let Value::Ptr { region, addr: a } = p else {
                            return Err(Trap::NotAPointer);
                        };
                        if !self.deref_ok(region) {
                            return Err(Trap::UnsafeDeref {
                                region,
                                current: self.current,
                            });
                        }
                        if !Self::store_ok(region, v) {
                            let Value::Ptr { region: vr, .. } = v else {
                                unreachable!()
                            };
                            return Err(Trap::UnsafeStore {
                                value_region: vr,
                                target_region: region,
                            });
                        }
                        self.memory.insert((region, a), v);
                    }
                    Inst::CheckDeref { addr } => {
                        self.stats.checks_executed += 1;
                        let p = Self::get(&frame.regs, *addr)?;
                        let Value::Ptr { region, .. } = p else {
                            return Err(Trap::CheckFailed {
                                reason: "not a pointer",
                            });
                        };
                        if !self.deref_ok(region) {
                            return Err(Trap::CheckFailed {
                                reason: "pointer VAS is not current",
                            });
                        }
                    }
                    Inst::CheckStore { addr, val } => {
                        self.stats.checks_executed += 1;
                        let p = Self::get(&frame.regs, *addr)?;
                        let v = Self::get(&frame.regs, *val)?;
                        let Value::Ptr { region, .. } = p else {
                            return Err(Trap::CheckFailed {
                                reason: "not a pointer",
                            });
                        };
                        if !Self::store_ok(region, v) {
                            return Err(Trap::CheckFailed {
                                reason: "stored pointer escapes its VAS",
                            });
                        }
                    }
                    Inst::Lock(s) => {
                        // Runtime segment locks are re-entrant for their
                        // holder, so a repeated lock is a no-op, not a
                        // self-deadlock.
                        self.stats.lock_ops += 1;
                        self.held.insert(*s);
                    }
                    Inst::Unlock(s) => {
                        self.stats.lock_ops += 1;
                        if !self.held.remove(s) {
                            return Err(Trap::UnlockNotHeld(*s));
                        }
                    }
                    Inst::SegAddr { dst, seg } => {
                        // Shared segments live at fixed common-region
                        // addresses: the same name resolves to the same
                        // cell in every VAS, which is what makes
                        // unsynchronized cross-process access meaningful.
                        frame.regs.insert(
                            *dst,
                            Value::Ptr {
                                region: Region::Common,
                                addr: SEG_BASE + u64::from(seg.0) * SEG_SPAN,
                            },
                        );
                    }
                    Inst::Call {
                        dst,
                        func: callee,
                        args,
                    } => {
                        let callee_fn = &self.module.functions[callee.0 as usize];
                        let mut regs = HashMap::new();
                        for (p, a) in callee_fn.params.iter().zip(args) {
                            regs.insert(*p, Self::get(&frame.regs, *a)?);
                        }
                        let ret_to = *dst;
                        let new_frame = Frame {
                            func: *callee,
                            block: BlockId(0),
                            prev_block: None,
                            idx: 0,
                            regs,
                            ret_to,
                        };
                        stack.push(new_frame);
                        continue 'outer;
                    }
                    Inst::Ret(r) => {
                        let v = match r {
                            Some(r) => Some(Self::get(&frame.regs, *r)?),
                            None => None,
                        };
                        let ret_to = frame.ret_to;
                        stack.pop();
                        if let Some(caller) = stack.last_mut() {
                            if let (Some(dst), Some(v)) = (ret_to, v) {
                                caller.regs.insert(dst, v);
                            }
                        } else {
                            last_ret = v;
                        }
                        continue 'outer;
                    }
                    Inst::Br(b) => {
                        frame.prev_block = Some(frame.block);
                        frame.block = *b;
                        frame.idx = 0;
                        continue 'outer;
                    }
                    Inst::CondBr {
                        cond,
                        then_bb,
                        else_bb,
                    } => {
                        let c = Self::get(&frame.regs, *cond)?;
                        let taken = match c {
                            Value::Int(0) => *else_bb,
                            _ => *then_bb,
                        };
                        frame.prev_block = Some(frame.block);
                        frame.block = taken;
                        frame.idx = 0;
                        continue 'outer;
                    }
                }
                if let (Some(site), Some(log)) = (self.pending_site, self.log.as_mut()) {
                    log.executed_ok.insert(site);
                    self.pending_site = None;
                }
            }
            // Fell off a block without a terminator: treat as return.
            stack.pop();
        }
        Ok(last_ret)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Function, Module};

    fn v0() -> VasName {
        VasName(0)
    }

    /// p = malloc; *p = 42; x = *p; ret x.
    fn safe_program() -> Module {
        let mut m = Module::new();
        let mut f = Function::new("main", 0);
        let p = f.fresh_reg();
        let c = f.fresh_reg();
        let x = f.fresh_reg();
        f.push(BlockId(0), Inst::Malloc { dst: p, size: 8 });
        f.push(BlockId(0), Inst::Const { dst: c, value: 42 });
        f.push(BlockId(0), Inst::Store { addr: p, val: c });
        f.push(BlockId(0), Inst::Load { dst: x, addr: p });
        f.push(BlockId(0), Inst::Ret(Some(x)));
        m.add_function(f);
        m
    }

    /// p = malloc; switch 1; x = *p — unsafe.
    fn unsafe_program() -> Module {
        let mut m = Module::new();
        let mut f = Function::new("main", 0);
        let p = f.fresh_reg();
        let x = f.fresh_reg();
        f.push(BlockId(0), Inst::Malloc { dst: p, size: 8 });
        f.push(BlockId(0), Inst::Switch(VasName(1)));
        f.push(BlockId(0), Inst::Load { dst: x, addr: p });
        f.push(BlockId(0), Inst::Ret(None));
        m.add_function(f);
        m
    }

    #[test]
    fn safe_program_returns_value() {
        let m = safe_program();
        let mut i = Interp::new(&m, v0());
        assert_eq!(i.run(&[]).unwrap(), Some(Value::Int(42)));
        assert_eq!(i.stats().mem_ops, 2);
    }

    #[test]
    fn unsafe_deref_traps() {
        let m = unsafe_program();
        let mut i = Interp::new(&m, v0());
        assert_eq!(
            i.run(&[]).unwrap_err(),
            Trap::UnsafeDeref {
                region: Region::Vas(v0()),
                current: VasName(1)
            }
        );
    }

    #[test]
    fn instrumented_unsafe_traps_at_the_check() {
        use crate::analysis::Analysis;
        use crate::checks::{insert_checks, CheckPolicy};
        let mut m = unsafe_program();
        let a = Analysis::run(
            &m,
            [crate::ir::AbstractVas::Vas(v0())].into_iter().collect(),
        );
        insert_checks(&mut m, &a, CheckPolicy::Analyzed);
        let mut i = Interp::new(&m, v0());
        assert!(matches!(i.run(&[]).unwrap_err(), Trap::CheckFailed { .. }));
        assert_eq!(i.stats().checks_executed, 1);
    }

    #[test]
    fn instrumented_safe_program_still_works() {
        use crate::analysis::Analysis;
        use crate::checks::{insert_checks, CheckPolicy};
        let mut m = safe_program();
        let a = Analysis::run(
            &m,
            [crate::ir::AbstractVas::Vas(v0())].into_iter().collect(),
        );
        insert_checks(&mut m, &a, CheckPolicy::Naive);
        let mut i = Interp::new(&m, v0());
        assert_eq!(i.run(&[]).unwrap(), Some(Value::Int(42)));
        assert_eq!(i.stats().checks_executed, 2);
    }

    #[test]
    fn vcast_legitimizes_cross_vas_access() {
        // p = malloc in VAS 0; switch 1; q = vcast p 1... dereference of q
        // does not trap the check (the tag says VAS 1), but memory at
        // (VAS1, addr) is uninitialized — demonstrating vcast is an
        // escape hatch, not a teleporter.
        let mut m = Module::new();
        let mut f = Function::new("main", 0);
        let p = f.fresh_reg();
        let c = f.fresh_reg();
        let q = f.fresh_reg();
        let x = f.fresh_reg();
        f.push(BlockId(0), Inst::Malloc { dst: p, size: 8 });
        f.push(BlockId(0), Inst::Const { dst: c, value: 5 });
        f.push(BlockId(0), Inst::Store { addr: p, val: c });
        f.push(BlockId(0), Inst::Switch(VasName(1)));
        f.push(
            BlockId(0),
            Inst::VCast {
                dst: q,
                src: p,
                vas: VasName(1),
            },
        );
        f.push(BlockId(0), Inst::Load { dst: x, addr: q });
        f.push(BlockId(0), Inst::Ret(None));
        m.add_function(f);
        let mut i = Interp::new(&m, v0());
        assert!(matches!(
            i.run(&[]).unwrap_err(),
            Trap::UninitializedRead(_)
        ));
    }

    #[test]
    fn common_region_spans_switches() {
        // A stack slot written in VAS 0 is readable after switching.
        let mut m = Module::new();
        let mut f = Function::new("main", 0);
        let s = f.fresh_reg();
        let c = f.fresh_reg();
        let x = f.fresh_reg();
        f.push(BlockId(0), Inst::Alloca { dst: s, size: 8 });
        f.push(BlockId(0), Inst::Const { dst: c, value: 9 });
        f.push(BlockId(0), Inst::Store { addr: s, val: c });
        f.push(BlockId(0), Inst::Switch(VasName(1)));
        f.push(BlockId(0), Inst::Load { dst: x, addr: s });
        f.push(BlockId(0), Inst::Ret(Some(x)));
        m.add_function(f);
        let mut i = Interp::new(&m, v0());
        assert_eq!(i.run(&[]).unwrap(), Some(Value::Int(9)));
    }

    #[test]
    fn storing_vas_pointer_into_other_vas_traps() {
        let mut m = Module::new();
        let mut f = Function::new("main", 0);
        let p = f.fresh_reg();
        let q = f.fresh_reg();
        f.push(BlockId(0), Inst::Malloc { dst: p, size: 8 });
        f.push(BlockId(0), Inst::Switch(VasName(1)));
        f.push(BlockId(0), Inst::Malloc { dst: q, size: 8 });
        f.push(BlockId(0), Inst::Store { addr: q, val: p });
        f.push(BlockId(0), Inst::Ret(None));
        m.add_function(f);
        let mut i = Interp::new(&m, v0());
        assert_eq!(
            i.run(&[]).unwrap_err(),
            Trap::UnsafeStore {
                value_region: Region::Vas(v0()),
                target_region: Region::Vas(VasName(1))
            }
        );
    }

    #[test]
    fn calls_and_returns() {
        // callee(a) { return a } — main passes 7 through.
        let mut m = Module::new();
        let mut main = Function::new("main", 0);
        let c = main.fresh_reg();
        let r = main.fresh_reg();
        main.push(BlockId(0), Inst::Const { dst: c, value: 7 });
        main.push(
            BlockId(0),
            Inst::Call {
                dst: Some(r),
                func: FuncId(1),
                args: vec![c],
            },
        );
        main.push(BlockId(0), Inst::Ret(Some(r)));
        let mut callee = Function::new("id", 1);
        let a = callee.params[0];
        callee.push(BlockId(0), Inst::Ret(Some(a)));
        m.add_function(main);
        m.add_function(callee);
        let mut i = Interp::new(&m, v0());
        assert_eq!(i.run(&[]).unwrap(), Some(Value::Int(7)));
    }

    #[test]
    fn loop_with_phi_and_condbr() {
        // i = 0; while (i != 3) i++; ret i — via phi + manual "not equal".
        // We lack arithmetic, so emulate the loop with a chain of copies:
        // x = phi(entry: zero, body: three); cond chooses path once.
        let mut m = Module::new();
        let mut f = Function::new("main", 1);
        let cond = f.params[0];
        let zero = f.fresh_reg();
        let three = f.fresh_reg();
        let x = f.fresh_reg();
        let body = f.add_block();
        let join = f.add_block();
        f.push(
            BlockId(0),
            Inst::Const {
                dst: zero,
                value: 0,
            },
        );
        f.push(
            BlockId(0),
            Inst::Const {
                dst: three,
                value: 3,
            },
        );
        f.push(
            BlockId(0),
            Inst::CondBr {
                cond,
                then_bb: body,
                else_bb: join,
            },
        );
        f.push(body, Inst::Br(join));
        f.push_phi(
            join,
            crate::ir::Phi {
                dst: x,
                incomings: vec![(BlockId(0), zero), (body, three)],
            },
        );
        f.push(join, Inst::Ret(Some(x)));
        m.add_function(f);
        let mut i = Interp::new(&m, v0());
        assert_eq!(i.run(&[1]).unwrap(), Some(Value::Int(3)), "via body");
        let mut i2 = Interp::new(&m, v0());
        assert_eq!(i2.run(&[0]).unwrap(), Some(Value::Int(0)), "direct");
    }

    #[test]
    fn step_limit_guards_infinite_loops() {
        let mut m = Module::new();
        let mut f = Function::new("main", 0);
        let head = f.add_block();
        f.push(BlockId(0), Inst::Br(head));
        f.push(head, Inst::Br(head));
        m.add_function(f);
        let mut i = Interp::new(&m, v0()).with_step_limit(100);
        assert_eq!(i.run(&[]).unwrap_err(), Trap::StepLimit);
    }

    #[test]
    fn undefined_register_trap() {
        let mut m = Module::new();
        let mut f = Function::new("main", 0);
        let ghost = f.fresh_reg();
        let x = f.fresh_reg();
        f.push(
            BlockId(0),
            Inst::Load {
                dst: x,
                addr: ghost,
            },
        );
        f.push(BlockId(0), Inst::Ret(None));
        m.add_function(f);
        let mut i = Interp::new(&m, v0());
        assert_eq!(i.run(&[]).unwrap_err(), Trap::UndefinedRegister(ghost));
    }
}
