//! SSA intermediate representation for the pointer-safety analysis.
//!
//! The paper's compiler support (Sections 3.3 and 4.3) is defined over the
//! SSA instruction set of Figure 5: `switch v`, `vcast`, stack/global/heap
//! allocations, copies, phis, loads, stores, calls, and returns. This
//! module provides that IR — a small module/function/basic-block
//! structure with a builder — independent of any real compiler.

use std::collections::BTreeSet;
use std::fmt;

/// A virtual register (SSA value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u32);

/// A basic-block id within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// A function id within a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// A concrete VAS name in the program text (`switch v`, `vcast y v`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VasName(pub u32);

/// A lockable shared segment named in the program text (`lock s`,
/// `unlock s`, `x = segaddr s`). Segments are the paper's unit of
/// sharing (Section 3.2); the lockset analysis is defined over these
/// names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SegName(pub u32);

/// Abstract VAS values used by the analysis (Section 4.3):
/// concrete VAS ids, plus `vcommon` and `vunknown`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AbstractVas {
    /// A specific address space.
    Vas(VasName),
    /// The common region (stack, globals, code), mapped in every VAS.
    Common,
    /// Statically unknown.
    Unknown,
}

/// A set of abstract VASes — the lattice element for `VASvalid`/`VASin`.
pub type VasSet = BTreeSet<AbstractVas>;

/// A program point: function, block, and instruction index. The common
/// coordinate system shared by the analyses ([`crate::analysis`],
/// [`crate::provenance`]), the check planner, and the interpreter's
/// site log, so a static verdict and a runtime observation can be
/// compared site-for-site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Site {
    /// Function index within the module.
    pub func: u32,
    /// Block index within the function.
    pub block: u32,
    /// Instruction index within the block.
    pub idx: u32,
}

impl Site {
    /// Builds a site from usize coordinates.
    pub fn new(func: usize, block: usize, idx: usize) -> Site {
        Site {
            func: func as u32,
            block: block as u32,
            idx: idx as u32,
        }
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}:bb{}[{}]", self.func, self.block, self.idx)
    }
}

/// The instructions of Figure 5 plus control flow and the checks the
/// transformation inserts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// `switch v` — make VAS `v` current.
    Switch(VasName),
    /// `x = vcast y v` — reinterpret `y` as valid in `v` (unsafe escape
    /// hatch provided "to override the safety rules").
    VCast { dst: Reg, src: Reg, vas: VasName },
    /// `x = alloca` — stack allocation (common region).
    Alloca { dst: Reg, size: u64 },
    /// `x = global` — address of a global (common region).
    Global { dst: Reg, name: &'static str },
    /// `x = malloc` — heap allocation in the current VAS.
    Malloc { dst: Reg, size: u64 },
    /// `x = y` — copy / arithmetic / cast.
    Copy { dst: Reg, src: Reg },
    /// `x = c` — integer constant.
    Const { dst: Reg, value: u64 },
    /// `x = *y` — load.
    Load { dst: Reg, addr: Reg },
    /// `*x = y` — store.
    Store { addr: Reg, val: Reg },
    /// `x = foo(y, ...)` — call.
    Call {
        dst: Option<Reg>,
        func: FuncId,
        args: Vec<Reg>,
    },
    /// `ret x` — return.
    Ret(Option<Reg>),
    /// Unconditional branch.
    Br(BlockId),
    /// Conditional branch on a register (nonzero = then).
    CondBr {
        cond: Reg,
        then_bb: BlockId,
        else_bb: BlockId,
    },
    /// Inserted check: `addr` must point into the current VAS or the
    /// common region. Traps at runtime otherwise.
    CheckDeref { addr: Reg },
    /// Inserted check: storing `val` through `addr` must satisfy the
    /// Section 3.3 store rules. Traps at runtime otherwise.
    CheckStore { addr: Reg, val: Reg },
    /// `lock s` — acquire shared segment `s`'s lock (blocking).
    Lock(SegName),
    /// `unlock s` — release shared segment `s`'s lock.
    Unlock(SegName),
    /// `x = segaddr s` — base address of shared segment `s`. Shared
    /// segments are mapped at the same address in every VAS that
    /// attaches them, so the result lives in the common region for
    /// `VASvalid` purposes; whether dereferences through it are *safe*
    /// is the lockset analysis's question, not the VAS analysis's.
    SegAddr { dst: Reg, seg: SegName },
}

impl Inst {
    /// The register this instruction defines, if any.
    pub fn def(&self) -> Option<Reg> {
        match self {
            Inst::VCast { dst, .. }
            | Inst::Alloca { dst, .. }
            | Inst::Global { dst, .. }
            | Inst::Malloc { dst, .. }
            | Inst::Copy { dst, .. }
            | Inst::Const { dst, .. }
            | Inst::SegAddr { dst, .. }
            | Inst::Load { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            _ => None,
        }
    }

    /// Whether this is a block terminator.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Inst::Ret(_) | Inst::Br(_) | Inst::CondBr { .. })
    }
}

/// A phi node at a block head: `dst = phi [(pred, reg), ...]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phi {
    /// Defined register.
    pub dst: Reg,
    /// Incoming value per predecessor block.
    pub incomings: Vec<(BlockId, Reg)>,
}

/// A basic block: phis, then instructions, ending in a terminator.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Phi nodes.
    pub phis: Vec<Phi>,
    /// Instructions (last one is the terminator once sealed).
    pub insts: Vec<Inst>,
}

impl Block {
    /// Successor blocks of this block's terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self.insts.last() {
            Some(Inst::Br(b)) => vec![*b],
            Some(Inst::CondBr {
                then_bb, else_bb, ..
            }) => vec![*then_bb, *else_bb],
            _ => Vec::new(),
        }
    }
}

/// A function: parameters, blocks, entry block 0.
#[derive(Debug, Clone)]
pub struct Function {
    /// Function name (diagnostics).
    pub name: String,
    /// Parameter registers.
    pub params: Vec<Reg>,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
    next_reg: u32,
}

impl Function {
    /// Creates a function with `nparams` parameters (registers `0..n`).
    pub fn new(name: impl Into<String>, nparams: u32) -> Self {
        Function {
            name: name.into(),
            params: (0..nparams).map(Reg).collect(),
            blocks: vec![Block::default()],
            next_reg: nparams,
        }
    }

    /// Allocates a fresh register.
    pub fn fresh_reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Number of registers allocated (for dense analysis arrays).
    pub fn reg_count(&self) -> u32 {
        self.next_reg
    }

    /// Adds an empty block and returns its id.
    pub fn add_block(&mut self) -> BlockId {
        self.blocks.push(Block::default());
        BlockId(self.blocks.len() as u32 - 1)
    }

    /// Appends an instruction to a block.
    ///
    /// # Panics
    ///
    /// Panics if the block is already terminated.
    pub fn push(&mut self, bb: BlockId, inst: Inst) {
        let block = &mut self.blocks[bb.0 as usize];
        if let Some(last) = block.insts.last() {
            assert!(!last.is_terminator(), "block {bb:?} already terminated");
        }
        block.insts.push(inst);
    }

    /// Adds a phi node to a block.
    pub fn push_phi(&mut self, bb: BlockId, phi: Phi) {
        self.blocks[bb.0 as usize].phis.push(phi);
    }

    /// Predecessor map (recomputed on demand).
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, b) in self.blocks.iter().enumerate() {
            for s in b.successors() {
                preds[s.0 as usize].push(BlockId(i as u32));
            }
        }
        preds
    }
}

/// A module: a set of functions; function 0 is `main`.
#[derive(Debug, Clone, Default)]
pub struct Module {
    /// Functions; id = index.
    pub functions: Vec<Function>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Self {
        Module::default()
    }

    /// Adds a function, returning its id.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        self.functions.push(f);
        FuncId(self.functions.len() as u32 - 1)
    }

    /// The entry function (id 0).
    ///
    /// # Panics
    ///
    /// Panics if the module is empty.
    pub fn main(&self) -> &Function {
        &self.functions[0]
    }

    /// Total instruction count (for check-density reporting).
    pub fn inst_count(&self) -> usize {
        self.functions
            .iter()
            .flat_map(|f| &f.blocks)
            .map(|b| b.insts.len())
            .sum()
    }

    /// Number of inserted check instructions.
    pub fn check_count(&self) -> usize {
        self.functions
            .iter()
            .flat_map(|f| &f.blocks)
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::CheckDeref { .. } | Inst::CheckStore { .. }))
            .count()
    }

    /// Number of memory operations (loads + stores), the naive check
    /// budget.
    pub fn mem_op_count(&self) -> usize {
        self.functions
            .iter()
            .flat_map(|f| &f.blocks)
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Load { .. } | Inst::Store { .. }))
            .count()
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (fi, func) in self.functions.iter().enumerate() {
            writeln!(f, "fn @{} {}({:?}):", fi, func.name, func.params)?;
            for (bi, b) in func.blocks.iter().enumerate() {
                writeln!(f, "  bb{bi}:")?;
                for phi in &b.phis {
                    writeln!(f, "    {:?} = phi {:?}", phi.dst, phi.incomings)?;
                }
                for inst in &b.insts {
                    writeln!(f, "    {inst:?}")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_builder_basics() {
        let mut f = Function::new("main", 1);
        assert_eq!(f.params, vec![Reg(0)]);
        let r = f.fresh_reg();
        assert_eq!(r, Reg(1));
        let bb1 = f.add_block();
        f.push(BlockId(0), Inst::Br(bb1));
        f.push(bb1, Inst::Ret(None));
        assert_eq!(f.blocks[0].successors(), vec![bb1]);
        assert!(f.blocks[1].successors().is_empty());
        let preds = f.predecessors();
        assert_eq!(preds[1], vec![BlockId(0)]);
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn push_after_terminator_panics() {
        let mut f = Function::new("f", 0);
        f.push(BlockId(0), Inst::Ret(None));
        f.push(BlockId(0), Inst::Ret(None));
    }

    #[test]
    fn inst_defs() {
        let mut f = Function::new("f", 0);
        let a = f.fresh_reg();
        assert_eq!(Inst::Malloc { dst: a, size: 8 }.def(), Some(a));
        assert_eq!(Inst::Store { addr: a, val: a }.def(), None);
        assert_eq!(Inst::Switch(VasName(1)).def(), None);
        assert!(Inst::Br(BlockId(0)).is_terminator());
        assert!(!Inst::Const { dst: a, value: 1 }.is_terminator());
    }

    #[test]
    fn module_counts() {
        let mut m = Module::new();
        let mut f = Function::new("main", 0);
        let p = f.fresh_reg();
        let v = f.fresh_reg();
        f.push(BlockId(0), Inst::Malloc { dst: p, size: 8 });
        f.push(BlockId(0), Inst::Load { dst: v, addr: p });
        f.push(BlockId(0), Inst::Store { addr: p, val: v });
        f.push(BlockId(0), Inst::CheckDeref { addr: p });
        f.push(BlockId(0), Inst::Ret(None));
        m.add_function(f);
        assert_eq!(m.inst_count(), 5);
        assert_eq!(m.mem_op_count(), 2);
        assert_eq!(m.check_count(), 1);
        assert!(!format!("{m}").is_empty());
    }

    #[test]
    fn cond_br_successors() {
        let mut f = Function::new("f", 0);
        let c = f.fresh_reg();
        let t = f.add_block();
        let e = f.add_block();
        f.push(BlockId(0), Inst::Const { dst: c, value: 1 });
        f.push(
            BlockId(0),
            Inst::CondBr {
                cond: c,
                then_bb: t,
                else_bb: e,
            },
        );
        assert_eq!(f.blocks[0].successors(), vec![t, e]);
    }
}
