//! # sjmp-safety — compiler support for safe multi-VAS programming
//!
//! SpaceJMP introduces "new kinds of unsafe memory access behavior that
//! programmers must carefully avoid" (Section 3.3): dereferencing a
//! pointer while the wrong address space is active, and storing pointers
//! where other address spaces (or processes) would misinterpret them. The
//! paper provides a compiler tool that proves most accesses safe and
//! inserts runtime checks only where it cannot (Section 4.3).
//!
//! This crate is that tool, reproduced over its own SSA IR:
//!
//! * [`ir`] — the Figure 5 instruction set (`switch`, `vcast`, `alloca`,
//!   `global`, `malloc`, copies, phis, loads, stores, calls, returns)
//!   with functions, basic blocks, and a builder;
//! * [`analysis`] — the interprocedural fixpoint computing `VASvalid(p)`
//!   for every pointer and `VASin(i)`/`VASout(i)` for every instruction;
//! * [`checks`] — unsafe-access classification per the paper's three
//!   dereference conditions and two store conditions, plus the
//!   check-insertion transformation (with a naive check-everything
//!   baseline for ablation);
//! * [`interp`] — a tagged-pointer interpreter enforcing the Section 3.3
//!   rules at runtime: ground truth that instrumented unsafe programs
//!   trap at their checks and safe programs run unmodified;
//! * [`provenance`] — the interprocedural pointer-provenance pass: an
//!   abstract-object lattice (segment-of-origin × abstract-VAS set)
//!   propagated through stores/loads/calls/returns/phis with a worklist
//!   over the call graph, classifying every memory operation as
//!   proven-safe / proven-dangling / unknown with a full
//!   alloc → escape → switch → deref chain on each finding;
//! * [`examples`] — named example IR programs (healthy ones plus the
//!   classic injected dangling bug) shared by tests, docs, and the
//!   `sjmp_lint --ir` CI gate;
//! * [`genprog`] — a seeded (SimRng, fully offline) IR program generator
//!   and the soundness self-validation harness that runs generated
//!   programs under the interpreter and asserts no statically-elided
//!   check would ever have fired and every proven-dangling site that
//!   executes actually faults.
//!
//! # Examples
//!
//! ```
//! use sjmp_safety::analysis::Analysis;
//! use sjmp_safety::checks::{insert_checks, CheckPolicy};
//! use sjmp_safety::ir::{AbstractVas, BlockId, Function, Inst, Module, VasName};
//!
//! // p = malloc; switch v1; x = *p   -- an unsafe cross-VAS dereference.
//! let mut module = Module::new();
//! let mut main = Function::new("main", 0);
//! let p = main.fresh_reg();
//! let x = main.fresh_reg();
//! main.push(BlockId(0), Inst::Malloc { dst: p, size: 8 });
//! main.push(BlockId(0), Inst::Switch(VasName(1)));
//! main.push(BlockId(0), Inst::Load { dst: x, addr: p });
//! main.push(BlockId(0), Inst::Ret(None));
//! module.add_function(main);
//!
//! let entry = [AbstractVas::Vas(VasName(0))].into_iter().collect();
//! let analysis = Analysis::run(&module, entry);
//! let report = insert_checks(&mut module, &analysis, CheckPolicy::Analyzed);
//! assert_eq!(report.deref_checks, 1); // only the unsafe access is checked
//! ```

pub mod analysis;
pub mod checks;
pub mod examples;
pub mod genprog;
pub mod interp;
pub mod ir;
pub mod provenance;

pub use analysis::Analysis;
pub use checks::{insert_checks, plan_checks, CheckPlan, CheckPolicy, CheckReport};
pub use interp::{Interp, InterpStats, Region, SiteLog, Trap, Value};
pub use ir::{
    AbstractVas, Block, BlockId, FuncId, Function, Inst, Module, Phi, Reg, SegName, Site, VasName,
    VasSet,
};
pub use provenance::{
    verify, verify_with, DanglingFinding, Provenance, SiteClass, SiteVerdict, VerifyReport,
};
