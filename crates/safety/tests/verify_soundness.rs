//! Soundness self-validation of the provenance verifier and the
//! interprocedural check-elision policy, plus dataflow edge cases the
//! interprocedural pass must handle.

use sjmp_safety::genprog::{validate_batch, validate_seed};
use sjmp_safety::ir::{
    AbstractVas, BlockId, FuncId, Function, Inst, Module, Phi, SegName, Site, VasName, VasSet,
};
use sjmp_safety::provenance::{verify, SiteClass};
use sjmp_safety::{examples, insert_checks, plan_checks, Analysis, CheckPolicy, Interp, Trap};

fn entry() -> VasSet {
    [AbstractVas::Vas(VasName(0))].into_iter().collect()
}

/// 500+ seeded generator programs: no elided check would ever have
/// fired, no proven-dangling site ever executed successfully, and
/// instrumented runs are observationally identical.
#[test]
fn soundness_over_512_seeds() {
    let report = validate_batch(0..512);
    assert_eq!(report.programs, 512);
    assert!(
        report.violations.is_empty(),
        "soundness violations: {:#?}",
        report.violations
    );
    assert!(report.mem_sites > 1000, "corpus should be substantial");
    assert!(
        report.proven_safe > 0,
        "verifier should prove some sites safe"
    );
    assert!(
        report.extra_elisions > 0,
        "Interprocedural should beat Analyzed somewhere in the corpus"
    );
}

/// The injected dangling bug faults at runtime exactly where the
/// verifier proved it would.
#[test]
fn dangling_example_faults_at_the_proven_site() {
    let m = examples::dangling_example();
    let report = verify(&m, examples::entry_set());
    assert_eq!(report.count(SiteClass::ProvenDangling), 2);
    let mut interp = Interp::new(&m, VasName(0)).with_site_log();
    let err = interp.run(&[]).unwrap_err();
    assert!(matches!(err, Trap::UnsafeDeref { .. }));
    let fault = interp.site_log().unwrap().fault.expect("fault site");
    assert_eq!(fault, examples::dangling_sites::DEREF);
    assert_eq!(
        report.verdict_at(fault).unwrap().class,
        SiteClass::ProvenDangling
    );
}

/// Healthy examples: zero findings, and Interprocedural instrumentation
/// never changes the observable result.
#[test]
fn healthy_examples_clean_and_equivalent_under_interproc() {
    for (name, m) in examples::healthy() {
        let report = verify(&m, examples::entry_set());
        assert!(report.findings.is_empty(), "{name}: {:?}", report.findings);
        let plain = Interp::new(&m, VasName(0)).run(&[]).unwrap();
        let mut instrumented = m.clone();
        let a = Analysis::run(&instrumented, examples::entry_set());
        insert_checks(&mut instrumented, &a, CheckPolicy::Interprocedural);
        let checked = Interp::new(&instrumented, VasName(0)).run(&[]).unwrap();
        assert_eq!(plain, checked, "{name}: instrumentation changed result");
    }
}

/// Edge case: a phi joining pointers minted in *different* VASes. The
/// join is ambiguous — neither provable safe nor provable dangling —
/// so every policy keeps the check, and the runtime check passes on
/// the arm that matches.
#[test]
fn phi_join_of_cross_vas_pointers_stays_checked() {
    let mut m = Module::new();
    let mut f = Function::new("main", 0);
    let cond = f.fresh_reg();
    let p1 = f.fresh_reg();
    let p2 = f.fresh_reg();
    let p = f.fresh_reg();
    let x = f.fresh_reg();
    let t = f.add_block();
    let e = f.add_block();
    let j = f.add_block();
    f.push(
        BlockId(0),
        Inst::Const {
            dst: cond,
            value: 1,
        },
    );
    f.push(
        BlockId(0),
        Inst::CondBr {
            cond,
            then_bb: t,
            else_bb: e,
        },
    );
    f.push(t, Inst::Switch(VasName(1)));
    f.push(t, Inst::Malloc { dst: p1, size: 8 });
    f.push(t, Inst::Br(j));
    f.push(e, Inst::Switch(VasName(2)));
    f.push(e, Inst::Malloc { dst: p2, size: 8 });
    f.push(e, Inst::Br(j));
    f.push_phi(
        j,
        Phi {
            dst: p,
            incomings: vec![(t, p1), (e, p2)],
        },
    );
    f.push(j, Inst::Load { dst: x, addr: p });
    f.push(j, Inst::Ret(None));
    m.add_function(f);
    let report = verify(&m, entry());
    let verdict = report.verdict_at(Site::new(0, 3, 0)).unwrap();
    assert_eq!(verdict.class, SiteClass::Unknown);
    let a = Analysis::run(&m, entry());
    let plan = plan_checks(&m, &a, CheckPolicy::Interprocedural);
    assert!(plan.decision_at(Site::new(0, 3, 0)).need_deref);
    // Runtime: the taken arm (then) malloc'd in VAS 1 while VAS 1 is
    // current — the load traps UninitializedRead, not a VAS fault.
    let mut i = Interp::new(&m, VasName(0));
    assert!(matches!(
        i.run(&[]).unwrap_err(),
        Trap::UninitializedRead(_)
    ));
}

/// Edge case: `vcast` applied to an already-Unknown value. The cast
/// reasserts a concrete VAS; dereferencing it in that VAS is safe as
/// far as the VAS rules go, and nothing is proven dangling.
#[test]
fn vcast_on_unknown_value() {
    let mut m = Module::new();
    let mut f = Function::new("main", 0);
    let slot = f.fresh_reg();
    let c = f.fresh_reg();
    let u = f.fresh_reg();
    let y = f.fresh_reg();
    let x = f.fresh_reg();
    f.push(BlockId(0), Inst::Alloca { dst: slot, size: 8 });
    f.push(BlockId(0), Inst::Const { dst: c, value: 3 });
    f.push(BlockId(0), Inst::Store { addr: slot, val: c });
    // u loads from the common region: VASvalid(u) = {vunknown}.
    f.push(BlockId(0), Inst::Load { dst: u, addr: slot });
    f.push(
        BlockId(0),
        Inst::VCast {
            dst: y,
            src: u,
            vas: VasName(0),
        },
    );
    f.push(BlockId(0), Inst::Load { dst: x, addr: y });
    f.push(BlockId(0), Inst::Ret(None));
    m.add_function(f);
    let a = Analysis::run(&m, entry());
    assert_eq!(
        a.valid_of(0, u),
        [AbstractVas::Unknown].into_iter().collect::<VasSet>()
    );
    assert_eq!(
        a.valid_of(0, y),
        [AbstractVas::Vas(VasName(0))]
            .into_iter()
            .collect::<VasSet>()
    );
    let report = verify(&m, entry());
    assert_eq!(report.count(SiteClass::ProvenDangling), 0);
    // The deref through the cast is region-safe in VAS 0 (the tag says
    // v0 and v0 is current), even though what it reads is anyone's
    // guess — a check, had one run, would also have passed.
    let verdict = report.verdict_at(Site::new(0, 0, 5)).unwrap();
    assert_eq!(verdict.class, SiteClass::ProvenSafe);
}

/// Edge case: recursion. Provenance propagates through the cycle in
/// the call graph and the verifier still proves the post-call deref
/// safe.
#[test]
fn recursive_call_provenance() {
    let mut m = Module::new();
    let mut main = Function::new("main", 0);
    let p = main.fresh_reg();
    let c = main.fresh_reg();
    let one = main.fresh_reg();
    let r = main.fresh_reg();
    let x = main.fresh_reg();
    main.push(BlockId(0), Inst::Malloc { dst: p, size: 8 });
    main.push(BlockId(0), Inst::Const { dst: c, value: 8 });
    main.push(BlockId(0), Inst::Store { addr: p, val: c });
    main.push(BlockId(0), Inst::Const { dst: one, value: 1 });
    main.push(
        BlockId(0),
        Inst::Call {
            dst: Some(r),
            func: FuncId(1),
            args: vec![one, p],
        },
    );
    main.push(BlockId(0), Inst::Load { dst: x, addr: r });
    main.push(BlockId(0), Inst::Ret(Some(x)));
    let mut rec = Function::new("rec", 2);
    let flag = rec.params[0];
    let q = rec.params[1];
    let body = rec.add_block();
    let base = rec.add_block();
    rec.push(
        BlockId(0),
        Inst::CondBr {
            cond: flag,
            then_bb: body,
            else_bb: base,
        },
    );
    let zero = rec.fresh_reg();
    let inner = rec.fresh_reg();
    rec.push(
        body,
        Inst::Const {
            dst: zero,
            value: 0,
        },
    );
    rec.push(
        body,
        Inst::Call {
            dst: Some(inner),
            func: FuncId(1),
            args: vec![zero, q],
        },
    );
    rec.push(body, Inst::Ret(Some(inner)));
    rec.push(base, Inst::Ret(Some(q)));
    m.add_function(main);
    m.add_function(rec);
    let report = verify(&m, entry());
    // The deref of the recursion's return value is proven safe: the
    // returned pointer is exactly the VAS-0 malloc.
    let verdict = report.verdict_at(Site::new(0, 0, 5)).unwrap();
    assert_eq!(verdict.class, SiteClass::ProvenSafe);
    let mut i = Interp::new(&m, VasName(0));
    assert_eq!(i.run(&[]).unwrap(), Some(sjmp_safety::Value::Int(8)));
}

/// Edge case: a pointer stored to a shared segment in one function and
/// loaded in another. Same-VAS consumption is proven safe (and the
/// check elided); wrong-VAS consumption is proven dangling.
#[test]
fn segment_stored_pointer_roundtrip() {
    let build = |consumer_switch: Option<VasName>| {
        let mut m = Module::new();
        let mut main = Function::new("main", 0);
        let p = main.fresh_reg();
        let c = main.fresh_reg();
        let seg = main.fresh_reg();
        main.push(BlockId(0), Inst::Switch(VasName(1)));
        main.push(BlockId(0), Inst::Malloc { dst: p, size: 8 });
        main.push(BlockId(0), Inst::Const { dst: c, value: 4 });
        main.push(BlockId(0), Inst::Store { addr: p, val: c });
        main.push(
            BlockId(0),
            Inst::SegAddr {
                dst: seg,
                seg: SegName(0),
            },
        );
        main.push(BlockId(0), Inst::Store { addr: seg, val: p });
        main.push(
            BlockId(0),
            Inst::Call {
                dst: None,
                func: FuncId(1),
                args: vec![],
            },
        );
        main.push(BlockId(0), Inst::Ret(None));
        let mut consumer = Function::new("consumer", 0);
        let seg2 = consumer.fresh_reg();
        let q = consumer.fresh_reg();
        let x = consumer.fresh_reg();
        if let Some(v) = consumer_switch {
            consumer.push(BlockId(0), Inst::Switch(v));
        }
        consumer.push(
            BlockId(0),
            Inst::SegAddr {
                dst: seg2,
                seg: SegName(0),
            },
        );
        consumer.push(BlockId(0), Inst::Load { dst: q, addr: seg2 });
        consumer.push(BlockId(0), Inst::Load { dst: x, addr: q });
        consumer.push(BlockId(0), Inst::Ret(None));
        m.add_function(main);
        m.add_function(consumer);
        m
    };

    // Consumer stays in VAS 1 (main switched and never leaves): safe,
    // and the interprocedural policy elides the deref check Analyzed
    // must keep.
    let safe = build(None);
    let report = verify(&safe, entry());
    assert_eq!(report.count(SiteClass::ProvenDangling), 0);
    let deref = report.verdict_at(Site::new(1, 0, 2)).unwrap();
    assert_eq!(deref.class, SiteClass::ProvenSafe);
    let a = Analysis::run(&safe, entry());
    let analyzed = plan_checks(&safe, &a, CheckPolicy::Analyzed);
    let interproc = plan_checks(&safe, &a, CheckPolicy::Interprocedural);
    assert!(analyzed.decision_at(Site::new(1, 0, 2)).need_deref);
    assert!(!interproc.decision_at(Site::new(1, 0, 2)).need_deref);
    let mut i = Interp::new(&safe, VasName(0));
    assert!(i.run(&[]).is_ok());

    // Consumer switches to VAS 2 first: proven dangling, with the chain
    // crossing the function boundary.
    let bad = build(Some(VasName(2)));
    let report = verify(&bad, entry());
    let finding = report
        .findings
        .iter()
        .find(|f| f.site == Site::new(1, 0, 3))
        .expect("cross-function dangling detected");
    assert_eq!(finding.alloc_sites, vec![Site::new(0, 0, 1)]);
    assert_eq!(finding.escape_sites, vec![Site::new(0, 0, 5)]);
    assert_eq!(finding.func, "consumer");
    let mut i = Interp::new(&bad, VasName(0));
    assert!(matches!(i.run(&[]).unwrap_err(), Trap::UnsafeDeref { .. }));
}

/// Determinism: the same seed validates to the same outcome.
#[test]
fn validate_seed_deterministic() {
    for seed in [0u64, 7, 99] {
        let a = validate_seed(seed).expect("sound");
        let b = validate_seed(seed).expect("sound");
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
