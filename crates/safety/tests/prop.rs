//! Randomized test of the safety tool chain: on arbitrary
//! straight-line multi-VAS programs, the static analysis + inserted
//! checks must be *sound* — an instrumented program never commits an
//! unsafe access (it traps at a check first), and instrumentation never
//! breaks a program that is safe.
//!
//! Programs are generated from fixed seeds with [`SimRng`], so every
//! run explores the same cases and any failure replays exactly.

use sjmp_safety::analysis::Analysis;
use sjmp_safety::checks::{insert_checks, CheckPolicy};
use sjmp_safety::interp::{Interp, Trap};
use sjmp_safety::ir::{AbstractVas, BlockId, Function, Inst, Module, VasName};
use sjmp_sim::SimRng;

/// Program-generator actions: a tiny straight-line language that can
/// produce both safe and unsafe programs.
#[derive(Debug, Clone)]
enum Action {
    Switch(u32),
    Malloc,
    Alloca,
    /// Store a constant through the i-th pointer (if any).
    StoreConst(usize),
    /// Load through the i-th pointer.
    Load(usize),
    /// Store the j-th pointer through the i-th pointer.
    StorePtr(usize, usize),
    /// Copy the i-th pointer to a new register.
    CopyPtr(usize),
}

fn random_action(rng: &mut SimRng) -> Action {
    match rng.gen_range(0..7) {
        0 => Action::Switch(rng.gen_range(0..3) as u32),
        1 => Action::Malloc,
        2 => Action::Alloca,
        3 => Action::StoreConst(rng.next_u64() as usize),
        4 => Action::Load(rng.next_u64() as usize),
        5 => Action::StorePtr(rng.next_u64() as usize, rng.next_u64() as usize),
        _ => Action::CopyPtr(rng.next_u64() as usize),
    }
}

fn random_actions(rng: &mut SimRng, max: usize) -> Vec<Action> {
    (0..rng.index(max + 1))
        .map(|_| random_action(rng))
        .collect()
}

fn build(actions: &[Action]) -> Module {
    let mut m = Module::new();
    let mut f = Function::new("main", 0);
    let c = f.fresh_reg();
    f.push(BlockId(0), Inst::Const { dst: c, value: 1 });
    let mut ptrs = Vec::new();
    // Seed one pointer so index-based actions always have a target.
    let seed = f.fresh_reg();
    f.push(
        BlockId(0),
        Inst::Malloc {
            dst: seed,
            size: 64,
        },
    );
    f.push(BlockId(0), Inst::Store { addr: seed, val: c });
    ptrs.push(seed);
    for a in actions {
        match a {
            Action::Switch(v) => f.push(BlockId(0), Inst::Switch(VasName(*v))),
            Action::Malloc => {
                let p = f.fresh_reg();
                f.push(BlockId(0), Inst::Malloc { dst: p, size: 64 });
                // Initialize so later loads are defined.
                f.push(BlockId(0), Inst::Store { addr: p, val: c });
                ptrs.push(p);
            }
            Action::Alloca => {
                let p = f.fresh_reg();
                f.push(BlockId(0), Inst::Alloca { dst: p, size: 64 });
                f.push(BlockId(0), Inst::Store { addr: p, val: c });
                ptrs.push(p);
            }
            Action::StoreConst(i) => {
                let p = ptrs[i % ptrs.len()];
                f.push(BlockId(0), Inst::Store { addr: p, val: c });
            }
            Action::Load(i) => {
                let p = ptrs[i % ptrs.len()];
                let x = f.fresh_reg();
                f.push(BlockId(0), Inst::Load { dst: x, addr: p });
            }
            Action::StorePtr(i, j) => {
                let p = ptrs[i % ptrs.len()];
                let v = ptrs[j % ptrs.len()];
                f.push(BlockId(0), Inst::Store { addr: p, val: v });
            }
            Action::CopyPtr(i) => {
                let p = ptrs[i % ptrs.len()];
                let q = f.fresh_reg();
                f.push(BlockId(0), Inst::Copy { dst: q, src: p });
                ptrs.push(q);
            }
        }
    }
    f.push(BlockId(0), Inst::Ret(None));
    m.add_function(f);
    m
}

#[test]
fn instrumentation_is_sound() {
    for seed in 0..128u64 {
        let mut rng = SimRng::seed_from_u64(seed);
        let actions = random_actions(&mut rng, 59);
        let module = build(&actions);
        let entry: sjmp_safety::VasSet = [AbstractVas::Vas(VasName(0))].into_iter().collect();

        // Ground truth: run uninstrumented.
        let mut plain = Interp::new(&module, VasName(0)).with_step_limit(100_000);
        let plain_result = plain.run(&[]);

        // Instrumented run.
        let analysis = Analysis::run(&module, entry);
        let mut instrumented = module.clone();
        insert_checks(&mut instrumented, &analysis, CheckPolicy::Analyzed);
        let mut checked = Interp::new(&instrumented, VasName(0)).with_step_limit(200_000);
        let checked_result = checked.run(&[]);

        match plain_result {
            // Safe program: instrumentation must not change the outcome.
            Ok(v) => assert_eq!(checked_result, Ok(v), "seed {seed}"),
            // Unsafe program: the instrumented version must stop at a
            // check *before* committing the unsafe access.
            Err(Trap::UnsafeDeref { .. }) | Err(Trap::UnsafeStore { .. }) => {
                assert!(
                    matches!(checked_result, Err(Trap::CheckFailed { .. })),
                    "seed {seed}: unsafe access not intercepted: {checked_result:?}"
                );
            }
            // Any other trap (e.g. uninitialized read) must reproduce.
            Err(other) => assert_eq!(checked_result, Err(other), "seed {seed}"),
        }
    }
}

#[test]
fn naive_policy_is_also_sound_and_never_cheaper() {
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(seed ^ 0x5afe);
        let actions = random_actions(&mut rng, 39);
        let module = build(&actions);
        let entry: sjmp_safety::VasSet = [AbstractVas::Vas(VasName(0))].into_iter().collect();
        let analysis = Analysis::run(&module, entry);
        let mut naive = module.clone();
        let naive_report = insert_checks(&mut naive, &analysis, CheckPolicy::Naive);
        let mut analyzed = module.clone();
        let analyzed_report = insert_checks(&mut analyzed, &analysis, CheckPolicy::Analyzed);
        assert!(
            analyzed_report.deref_checks <= naive_report.deref_checks,
            "seed {seed}"
        );
        assert!(analyzed.check_count() <= naive.check_count(), "seed {seed}");
    }
}
