//! End-to-end tests of the SpaceJMP API (Figure 3) and its semantics
//! (Sections 3.1-3.2): first-class VASes, lockable segments, switching,
//! sharing, persistence beyond process lifetime, and the heap runtime.

use sjmp_mem::{KernelFlavor, MachineId, PageSize, VirtAddr};
use sjmp_os::{Creds, Kernel, Mode, Pid};
use spacejmp_core::{AttachMode, SegCtl, SjError, SpaceJmp, VasCtl, VasHeap};

const SEG_BASE: u64 = 0x1000_0000_0000;

fn setup() -> (SpaceJmp, Pid) {
    let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M2));
    let pid = sj.kernel_mut().spawn("p0", Creds::new(100, 100)).unwrap();
    sj.kernel_mut().activate(pid).unwrap();
    (sj, pid)
}

fn setup_two() -> (SpaceJmp, Pid, Pid) {
    let (mut sj, p0) = setup();
    let p1 = sj.kernel_mut().spawn("p1", Creds::new(100, 100)).unwrap();
    sj.kernel_mut().activate(p1).unwrap();
    (sj, p0, p1)
}

#[test]
fn figure4_canonical_usage() {
    // Mirrors the paper's Figure 4: create, alloc, attach, switch, use.
    let (mut sj, pid) = setup();
    let va = VirtAddr::new(SEG_BASE + 0xC0DE000);
    let vid = sj.vas_create(pid, "v0", Mode(0o660)).unwrap();
    let sid = sj.seg_alloc(pid, "s0", va, 1 << 20, Mode(0o660)).unwrap();
    sj.seg_attach(pid, vid, sid, AttachMode::ReadWrite).unwrap();
    let found = sj.vas_find("v0").unwrap();
    assert_eq!(found, vid);
    let vh = sj.vas_attach(pid, found).unwrap();
    sj.vas_switch(pid, vh).unwrap();
    sj.kernel_mut().store_u64(pid, va, 42).unwrap();
    assert_eq!(sj.kernel_mut().load_u64(pid, va).unwrap(), 42);
}

#[test]
fn data_visible_across_processes_through_shared_vas() {
    let (mut sj, p0, p1) = setup_two();
    let va = VirtAddr::new(SEG_BASE);
    let vid = sj.vas_create(p0, "shared", Mode(0o660)).unwrap();
    let sid = sj.seg_alloc(p0, "data", va, 1 << 20, Mode(0o660)).unwrap();
    sj.seg_attach(p0, vid, sid, AttachMode::ReadWrite).unwrap();

    let vh0 = sj.vas_attach(p0, vid).unwrap();
    sj.vas_switch(p0, vh0).unwrap();
    sj.kernel_mut().store_u64(p0, va.add(128), 0xfeed).unwrap();
    sj.vas_switch_home(p0).unwrap(); // release the write lock

    let vh1 = sj.vas_attach(p1, vid).unwrap();
    sj.vas_switch(p1, vh1).unwrap();
    assert_eq!(sj.kernel_mut().load_u64(p1, va.add(128)).unwrap(), 0xfeed);
}

#[test]
fn private_segments_remain_visible_after_switch() {
    // The stack/text/globals are mapped into every attached VAS
    // (the "common region" of Section 3.3).
    let (mut sj, pid) = setup();
    let stack_addr = VirtAddr::new(sjmp_os::kernel::STACK_TOP.raw() - 64);
    sj.kernel_mut().store_u64(pid, stack_addr, 0x57ac4).unwrap();

    let vid = sj.vas_create(pid, "v", Mode(0o600)).unwrap();
    let vh = sj.vas_attach(pid, vid).unwrap();
    sj.vas_switch(pid, vh).unwrap();
    assert_eq!(sj.kernel_mut().load_u64(pid, stack_addr).unwrap(), 0x57ac4);
}

#[test]
fn write_lock_excludes_second_writer() {
    let (mut sj, p0, p1) = setup_two();
    let va = VirtAddr::new(SEG_BASE);
    let vid = sj.vas_create(p0, "v", Mode(0o660)).unwrap();
    let sid = sj.seg_alloc(p0, "s", va, 1 << 20, Mode(0o660)).unwrap();
    sj.seg_attach(p0, vid, sid, AttachMode::ReadWrite).unwrap();

    let vh0 = sj.vas_attach(p0, vid).unwrap();
    let vh1 = sj.vas_attach(p1, vid).unwrap();
    sj.vas_switch(p0, vh0).unwrap();
    assert_eq!(sj.vas_switch(p1, vh1), Err(SjError::WouldBlock));
    assert_eq!(sj.stats().lock_contentions, 1);

    // p0 leaves; p1 can now enter.
    sj.vas_switch_home(p0).unwrap();
    sj.vas_switch(p1, vh1).unwrap();
}

#[test]
fn readers_share_writers_excluded() {
    let (mut sj, p0, p1) = setup_two();
    let p2 = sj.kernel_mut().spawn("p2", Creds::new(100, 100)).unwrap();
    let va = VirtAddr::new(SEG_BASE);
    let vid_ro = sj.vas_create(p0, "v-ro", Mode(0o660)).unwrap();
    let vid_rw = sj.vas_create(p0, "v-rw", Mode(0o660)).unwrap();
    let sid = sj.seg_alloc(p0, "s", va, 1 << 20, Mode(0o660)).unwrap();
    sj.seg_attach(p0, vid_ro, sid, AttachMode::ReadOnly)
        .unwrap();
    sj.seg_attach(p0, vid_rw, sid, AttachMode::ReadWrite)
        .unwrap();

    // Two readers in the read-only VAS.
    let vh0 = sj.vas_attach(p0, vid_ro).unwrap();
    let vh1 = sj.vas_attach(p1, vid_ro).unwrap();
    sj.vas_switch(p0, vh0).unwrap();
    sj.vas_switch(p1, vh1).unwrap();
    assert_eq!(sj.segment(sid).unwrap().lock().reader_count(), 2);

    // Writer blocked while readers are in.
    let vh2 = sj.vas_attach(p2, vid_rw).unwrap();
    assert_eq!(sj.vas_switch(p2, vh2), Err(SjError::WouldBlock));

    sj.vas_switch_home(p0).unwrap();
    sj.vas_switch_home(p1).unwrap();
    sj.vas_switch(p2, vh2).unwrap();
    assert_eq!(sj.segment(sid).unwrap().lock().writer(), Some(p2));
}

#[test]
fn read_only_mapping_rejects_stores() {
    let (mut sj, pid) = setup();
    let va = VirtAddr::new(SEG_BASE);
    let vid = sj.vas_create(pid, "v", Mode(0o660)).unwrap();
    let sid = sj.seg_alloc(pid, "s", va, 1 << 20, Mode(0o660)).unwrap();
    sj.seg_attach(pid, vid, sid, AttachMode::ReadOnly).unwrap();
    let vh = sj.vas_attach(pid, vid).unwrap();
    sj.vas_switch(pid, vh).unwrap();
    assert!(sj.kernel_mut().load_u64(pid, va).is_ok());
    assert!(sj.kernel_mut().store_u64(pid, va, 1).is_err());
}

#[test]
fn vas_outlives_creating_process() {
    // "A VAS can also continue to exist beyond the lifetime of its
    // creating process" — the SAMTools persistence pattern.
    let (mut sj, p0) = setup();
    let va = VirtAddr::new(SEG_BASE);
    let vid = sj.vas_create(p0, "persistent", Mode(0o660)).unwrap();
    let sid = sj.seg_alloc(p0, "pdata", va, 1 << 20, Mode(0o660)).unwrap();
    sj.seg_attach(p0, vid, sid, AttachMode::ReadWrite).unwrap();
    let vh0 = sj.vas_attach(p0, vid).unwrap();
    sj.vas_switch(p0, vh0).unwrap();
    sj.kernel_mut().store_u64(p0, va, 0x11fe).unwrap();
    sj.vas_switch_home(p0).unwrap();
    sj.vas_detach(p0, vh0).unwrap();
    sj.kernel_mut().exit(p0).unwrap();

    // A later process finds the VAS by name and sees the data.
    let p1 = sj
        .kernel_mut()
        .spawn("later", Creds::new(100, 100))
        .unwrap();
    sj.kernel_mut().activate(p1).unwrap();
    let vid2 = sj.vas_find("persistent").unwrap();
    assert_eq!(vid2, vid);
    let vh1 = sj.vas_attach(p1, vid2).unwrap();
    sj.vas_switch(p1, vh1).unwrap();
    assert_eq!(sj.kernel_mut().load_u64(p1, va).unwrap(), 0x11fe);
}

#[test]
fn seg_attach_propagates_to_attached_processes() {
    // Shared template tables: a segment attached after processes have
    // already attached the VAS becomes visible to them.
    let (mut sj, p0, p1) = setup_two();
    let vid = sj.vas_create(p0, "v", Mode(0o660)).unwrap();
    let vh1 = sj.vas_attach(p1, vid).unwrap();
    sj.vas_switch(p1, vh1).unwrap();

    let va = VirtAddr::new(SEG_BASE);
    let sid = sj.seg_alloc(p0, "late", va, 1 << 20, Mode(0o660)).unwrap();
    sj.seg_attach(p0, vid, sid, AttachMode::ReadWrite).unwrap();

    // p1, already switched in, sees the new segment (lock was not held:
    // p1 switched in before the segment existed, so no lock conflict —
    // note the lock is only taken at switch time).
    sj.kernel_mut().store_u64(p1, va, 77).unwrap();
    assert_eq!(sj.kernel_mut().load_u64(p1, va).unwrap(), 77);
    let _ = p0;
}

#[test]
fn seg_detach_removes_translations_everywhere() {
    let (mut sj, p0, p1) = setup_two();
    let va = VirtAddr::new(SEG_BASE);
    let vid = sj.vas_create(p0, "v", Mode(0o660)).unwrap();
    let sid = sj.seg_alloc(p0, "s", va, 1 << 20, Mode(0o660)).unwrap();
    sj.seg_attach(p0, vid, sid, AttachMode::ReadWrite).unwrap();
    let vh1 = sj.vas_attach(p1, vid).unwrap();
    sj.vas_switch(p1, vh1).unwrap();
    sj.kernel_mut().store_u64(p1, va, 1).unwrap();
    sj.vas_switch_home(p1).unwrap();

    sj.seg_detach(p0, vid, sid).unwrap();
    sj.vas_switch(p1, vh1).unwrap();
    assert!(
        sj.kernel_mut().load_u64(p1, va).is_err(),
        "translation must be gone"
    );
}

#[test]
fn address_conflicts_rejected() {
    let (mut sj, pid) = setup();
    let vid = sj.vas_create(pid, "v", Mode(0o660)).unwrap();
    let a = sj
        .seg_alloc(pid, "a", VirtAddr::new(SEG_BASE), 1 << 20, Mode(0o660))
        .unwrap();
    let b = sj
        .seg_alloc(
            pid,
            "b",
            VirtAddr::new(SEG_BASE + (1 << 19)),
            1 << 20,
            Mode(0o660),
        )
        .unwrap();
    sj.seg_attach(pid, vid, a, AttachMode::ReadWrite).unwrap();
    assert!(matches!(
        sj.seg_attach(pid, vid, b, AttachMode::ReadWrite),
        Err(SjError::AddressConflict(_))
    ));
    // ... but the overlapping segment is fine in a *different* VAS.
    let vid2 = sj.vas_create(pid, "v2", Mode(0o660)).unwrap();
    sj.seg_attach(pid, vid2, b, AttachMode::ReadWrite).unwrap();
}

#[test]
fn segment_outside_global_range_rejected() {
    let (mut sj, pid) = setup();
    assert!(matches!(
        sj.seg_alloc(pid, "bad", VirtAddr::new(0x1000), 4096, Mode(0o660)),
        Err(SjError::AddressConflict(_))
    ));
    assert!(matches!(
        sj.seg_alloc(pid, "bad2", VirtAddr::new(SEG_BASE + 5), 4096, Mode(0o660)),
        Err(SjError::InvalidArgument(_))
    ));
    assert!(matches!(
        sj.seg_alloc(pid, "bad3", VirtAddr::new(SEG_BASE), 0, Mode(0o660)),
        Err(SjError::InvalidArgument(_))
    ));
}

#[test]
fn acl_enforced_on_attach() {
    let (mut sj, p0) = setup();
    let stranger = sj
        .kernel_mut()
        .spawn("stranger", Creds::new(999, 999))
        .unwrap();
    let va = VirtAddr::new(SEG_BASE);
    let vid = sj.vas_create(p0, "v", Mode(0o660)).unwrap();
    let sid = sj.seg_alloc(p0, "s", va, 1 << 20, Mode(0o640)).unwrap();
    sj.seg_attach(p0, vid, sid, AttachMode::ReadWrite).unwrap();
    // Stranger may not attach the VAS at all (mode 660 = owner+group).
    assert_eq!(sj.vas_attach(stranger, vid), Err(SjError::PermissionDenied));
    // Group member may read but not write the segment.
    let group = sj
        .kernel_mut()
        .spawn("group", Creds::new(500, 100))
        .unwrap();
    // VAS maps the segment RW, and group lacks write permission.
    assert_eq!(sj.vas_attach(group, vid), Err(SjError::PermissionDenied));
}

#[test]
fn vas_clone_shares_segments() {
    let (mut sj, pid) = setup();
    let va = VirtAddr::new(SEG_BASE);
    let vid = sj.vas_create(pid, "orig", Mode(0o660)).unwrap();
    let sid = sj.seg_alloc(pid, "s", va, 1 << 20, Mode(0o660)).unwrap();
    sj.seg_attach(pid, vid, sid, AttachMode::ReadWrite).unwrap();

    let clone = sj.vas_clone(pid, vid, "copy").unwrap();
    let vh = sj.vas_attach(pid, clone).unwrap();
    sj.vas_switch(pid, vh).unwrap();
    sj.kernel_mut().store_u64(pid, va, 9).unwrap();
    sj.vas_switch_home(pid).unwrap();

    // Contents are shared (same segment object).
    let vh0 = sj.vas_attach(pid, vid).unwrap();
    sj.vas_switch(pid, vh0).unwrap();
    assert_eq!(sj.kernel_mut().load_u64(pid, va).unwrap(), 9);
}

#[test]
fn seg_clone_copies_contents() {
    let (mut sj, pid) = setup();
    let va = VirtAddr::new(SEG_BASE);
    let vid = sj.vas_create(pid, "v", Mode(0o660)).unwrap();
    let sid = sj.seg_alloc(pid, "s", va, 1 << 20, Mode(0o660)).unwrap();
    sj.seg_attach(pid, vid, sid, AttachMode::ReadWrite).unwrap();
    let vh = sj.vas_attach(pid, vid).unwrap();
    sj.vas_switch(pid, vh).unwrap();
    sj.kernel_mut().store_u64(pid, va, 0xc10e).unwrap();
    sj.vas_switch_home(pid).unwrap();

    let copy = sj.seg_clone(pid, sid, "s-copy").unwrap();
    let vid2 = sj.vas_create(pid, "v2", Mode(0o660)).unwrap();
    sj.seg_attach(pid, vid2, copy, AttachMode::ReadWrite)
        .unwrap();
    let vh2 = sj.vas_attach(pid, vid2).unwrap();
    sj.vas_switch(pid, vh2).unwrap();
    assert_eq!(
        sj.kernel_mut().load_u64(pid, va).unwrap(),
        0xc10e,
        "contents copied"
    );
    sj.kernel_mut().store_u64(pid, va, 1).unwrap();
    sj.vas_switch_home(pid).unwrap();

    // Original is unaffected (deep copy).
    sj.vas_switch(pid, vh).unwrap();
    assert_eq!(sj.kernel_mut().load_u64(pid, va).unwrap(), 0xc10e);
}

#[test]
fn ctl_destroy_lifecycle() {
    let (mut sj, pid) = setup();
    let va = VirtAddr::new(SEG_BASE);
    let vid = sj.vas_create(pid, "v", Mode(0o660)).unwrap();
    let sid = sj.seg_alloc(pid, "s", va, 1 << 20, Mode(0o660)).unwrap();
    sj.seg_attach(pid, vid, sid, AttachMode::ReadWrite).unwrap();
    let vh = sj.vas_attach(pid, vid).unwrap();

    // Attached VAS cannot be destroyed; attached segment cannot either.
    assert!(matches!(
        sj.vas_ctl(pid, VasCtl::Destroy, vid),
        Err(SjError::Busy(_))
    ));
    assert!(matches!(
        sj.seg_ctl(pid, sid, SegCtl::Destroy),
        Err(SjError::Busy(_))
    ));

    sj.vas_detach(pid, vh).unwrap();
    sj.vas_ctl(pid, VasCtl::Destroy, vid).unwrap();
    assert_eq!(sj.vas_find("v"), Err(SjError::NotFound));
    sj.seg_ctl(pid, sid, SegCtl::Destroy).unwrap();
    assert_eq!(sj.seg_find("s"), Err(SjError::NotFound));
}

#[test]
fn detach_active_vas_rejected() {
    let (mut sj, pid) = setup();
    let vid = sj.vas_create(pid, "v", Mode(0o600)).unwrap();
    let vh = sj.vas_attach(pid, vid).unwrap();
    sj.vas_switch(pid, vh).unwrap();
    assert!(matches!(sj.vas_detach(pid, vh), Err(SjError::Busy(_))));
    sj.vas_switch_home(pid).unwrap();
    sj.vas_detach(pid, vh).unwrap();
}

#[test]
fn handles_are_process_scoped() {
    let (mut sj, p0, p1) = setup_two();
    let vid = sj.vas_create(p0, "v", Mode(0o660)).unwrap();
    let vh = sj.vas_attach(p0, vid).unwrap();
    assert_eq!(sj.vas_switch(p1, vh), Err(SjError::BadHandle));
    assert_eq!(sj.vas_detach(p1, vh), Err(SjError::BadHandle));
}

#[test]
fn duplicate_names_rejected() {
    let (mut sj, pid) = setup();
    sj.vas_create(pid, "v", Mode(0o600)).unwrap();
    assert!(matches!(
        sj.vas_create(pid, "v", Mode(0o600)),
        Err(SjError::NameTaken(_))
    ));
    sj.seg_alloc(pid, "s", VirtAddr::new(SEG_BASE), 4096, Mode(0o600))
        .unwrap();
    assert!(matches!(
        sj.seg_alloc(
            pid,
            "s",
            VirtAddr::new(SEG_BASE + (1 << 30)),
            4096,
            Mode(0o600)
        ),
        Err(SjError::NameTaken(_))
    ));
}

#[test]
fn switch_costs_match_table2_per_flavor() {
    for (flavor, tagging, expect_switch) in [
        (KernelFlavor::DragonFly, false, 1127u64),
        (KernelFlavor::Barrelfish, false, 664),
    ] {
        let mut sj = SpaceJmp::new(Kernel::new(flavor, MachineId::M2));
        if tagging {
            sj.kernel_mut().set_tagging(true);
        }
        let pid = sj.kernel_mut().spawn("p", Creds::new(1, 1)).unwrap();
        sj.kernel_mut().activate(pid).unwrap();
        let vid = sj.vas_create(pid, "v", Mode(0o600)).unwrap();
        let vh = sj.vas_attach(pid, vid).unwrap();
        let t0 = sj.kernel().clock().now();
        sj.vas_switch(pid, vh).unwrap();
        // No lockable segments attached => pure switch cost.
        assert_eq!(sj.kernel().clock().since(t0), expect_switch, "{flavor:?}");
    }
}

#[test]
fn tagged_vas_keeps_tlb_entries_across_switches() {
    let (mut sj, pid) = setup();
    sj.kernel_mut().set_tagging(true);
    let va = VirtAddr::new(SEG_BASE);
    let vid = sj.vas_create(pid, "v", Mode(0o600)).unwrap();
    sj.vas_ctl(pid, VasCtl::RequestTag, vid).unwrap();
    let sid = sj.seg_alloc(pid, "s", va, 1 << 20, Mode(0o600)).unwrap();
    sj.seg_attach(pid, vid, sid, AttachMode::ReadWrite).unwrap();
    let vh = sj.vas_attach(pid, vid).unwrap();

    sj.vas_switch(pid, vh).unwrap();
    sj.kernel_mut().store_u64(pid, va, 1).unwrap();
    let core = sj.kernel().process(pid).unwrap().core();
    let walks_before = {
        let (mmu, _) = sj.kernel_mut().core_mem(core);
        mmu.stats().walks
    };
    sj.vas_switch_home(pid).unwrap();
    sj.vas_switch(pid, vh).unwrap();
    sj.kernel_mut().load_u64(pid, va).unwrap();
    let walks_after = {
        let (mmu, _) = sj.kernel_mut().core_mem(core);
        mmu.stats().walks
    };
    assert_eq!(
        walks_after, walks_before,
        "tagged entries survive the round trip"
    );
}

#[test]
fn heap_allocates_and_persists_across_processes() {
    let (mut sj, p0, p1) = setup_two();
    let va = VirtAddr::new(SEG_BASE);
    let vid = sj.vas_create(p0, "v", Mode(0o660)).unwrap();
    let sid = sj.seg_alloc(p0, "heap", va, 1 << 20, Mode(0o660)).unwrap();
    sj.seg_attach(p0, vid, sid, AttachMode::ReadWrite).unwrap();
    let vh0 = sj.vas_attach(p0, vid).unwrap();
    sj.vas_switch(p0, vh0).unwrap();

    let heap = VasHeap::format(&mut sj, p0, sid).unwrap();
    let ptr = heap.malloc(&mut sj, p0, 256).unwrap();
    sj.kernel_mut().store_u64(p0, ptr, 0xa110c).unwrap();
    assert_eq!(heap.allocation_count(&mut sj, p0).unwrap(), 1);
    sj.vas_switch_home(p0).unwrap();

    // Another process opens the same heap and sees the allocation.
    let vh1 = sj.vas_attach(p1, vid).unwrap();
    sj.vas_switch(p1, vh1).unwrap();
    let heap1 = VasHeap::open(&mut sj, p1, sid).unwrap();
    assert_eq!(sj.kernel_mut().load_u64(p1, ptr).unwrap(), 0xa110c);
    heap1.free(&mut sj, p1, ptr).unwrap();
    assert_eq!(heap1.allocation_count(&mut sj, p1).unwrap(), 0);
}

#[test]
fn heap_requires_mapping() {
    let (mut sj, pid) = setup();
    let sid = sj
        .seg_alloc(pid, "heap", VirtAddr::new(SEG_BASE), 1 << 20, Mode(0o600))
        .unwrap();
    // Not attached to any VAS / not switched in: format must fail cleanly.
    assert_eq!(
        VasHeap::format(&mut sj, pid, sid).unwrap_err(),
        SjError::NotAttached
    );
}

#[test]
fn local_segment_attach_is_private() {
    let (mut sj, p0, p1) = setup_two();
    let vid = sj.vas_create(p0, "v", Mode(0o660)).unwrap();
    let vh0 = sj.vas_attach(p0, vid).unwrap();
    let vh1 = sj.vas_attach(p1, vid).unwrap();

    // Scratch segment in a different PML4 slot than the template uses.
    let scratch_base = VirtAddr::new(SEG_BASE + (1u64 << 39));
    let sid = sj
        .seg_alloc(p0, "scratch", scratch_base, 1 << 20, Mode(0o660))
        .unwrap();
    sj.seg_attach_local(p0, vh0, sid, AttachMode::ReadWrite)
        .unwrap();

    sj.vas_switch(p0, vh0).unwrap();
    sj.kernel_mut().store_u64(p0, scratch_base, 5).unwrap();
    sj.vas_switch_home(p0).unwrap();

    sj.vas_switch(p1, vh1).unwrap();
    assert!(
        sj.kernel_mut().load_u64(p1, scratch_base).is_err(),
        "local attachment must not leak to other processes"
    );
}

#[test]
fn many_vases_per_process() {
    // The GUPS pattern: one process, many address spaces, switch between
    // all of them.
    let (mut sj, pid) = setup();
    let mut handles = Vec::new();
    for i in 0..16 {
        let vid = sj.vas_create(pid, &format!("w{i}"), Mode(0o600)).unwrap();
        let sid = sj
            .seg_alloc(
                pid,
                &format!("ws{i}"),
                VirtAddr::new(SEG_BASE),
                256 << 10,
                Mode(0o600),
            )
            .unwrap();
        sj.seg_attach(pid, vid, sid, AttachMode::ReadWrite).unwrap();
        handles.push(sj.vas_attach(pid, vid).unwrap());
    }
    // Same virtual address, sixteen different backing windows.
    for (i, vh) in handles.iter().enumerate() {
        sj.vas_switch(pid, *vh).unwrap();
        sj.kernel_mut()
            .store_u64(pid, VirtAddr::new(SEG_BASE), i as u64)
            .unwrap();
        sj.vas_switch_home(pid).unwrap();
    }
    for (i, vh) in handles.iter().enumerate() {
        sj.vas_switch(pid, *vh).unwrap();
        assert_eq!(
            sj.kernel_mut()
                .load_u64(pid, VirtAddr::new(SEG_BASE))
                .unwrap(),
            i as u64
        );
        sj.vas_switch_home(pid).unwrap();
    }
    assert_eq!(sj.stats().switches, 64);
}

#[test]
fn barrelfish_switch_is_a_capability_invocation() {
    let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::Barrelfish, MachineId::M2));
    let owner = sj.kernel_mut().spawn("owner", Creds::new(1, 1)).unwrap();
    let client = sj.kernel_mut().spawn("client", Creds::new(2, 100)).unwrap();
    sj.kernel_mut().activate(client).unwrap();
    let vid = sj.vas_create(owner, "bf", Mode(0o666)).unwrap();
    let vh = sj.vas_attach(client, vid).unwrap();
    // The attachment minted a root page-table capability; switching works.
    assert!(sj.attachment(vh).unwrap().root_cap.is_some());
    sj.vas_switch(client, vh).unwrap();
    sj.vas_switch_home(client).unwrap();
    // The VAS owner revokes the capability: switching is now barred,
    // without the client's cooperation (Section 4.2 reclamation).
    sj.revoke_attachment(owner, vh).unwrap();
    assert!(matches!(sj.vas_switch(client, vh), Err(SjError::Os(_))));
    // Non-owners cannot revoke.
    let vh2 = sj.vas_attach(owner, vid).unwrap();
    assert_eq!(
        sj.revoke_attachment(client, vh2),
        Err(SjError::PermissionDenied)
    );
}

#[test]
fn dragonfly_attachments_have_no_capability() {
    let (mut sj, pid) = setup();
    let vid = sj.vas_create(pid, "v", Mode(0o600)).unwrap();
    let vh = sj.vas_attach(pid, vid).unwrap();
    assert!(sj.attachment(vh).unwrap().root_cap.is_none());
    assert!(matches!(
        sj.revoke_attachment(pid, vh),
        Err(SjError::InvalidArgument(_))
    ));
}

#[test]
fn snapshot_is_an_independent_copy() {
    let (mut sj, pid) = setup();
    let va = VirtAddr::new(SEG_BASE);
    let vid = sj.vas_create(pid, "orig", Mode(0o660)).unwrap();
    let sid = sj.seg_alloc(pid, "data", va, 1 << 20, Mode(0o660)).unwrap();
    sj.seg_attach(pid, vid, sid, AttachMode::ReadWrite).unwrap();
    let vh = sj.vas_attach(pid, vid).unwrap();
    sj.vas_switch(pid, vh).unwrap();
    sj.kernel_mut().store_u64(pid, va, 0x0111).unwrap();
    sj.vas_switch_home(pid).unwrap();

    let snap = sj.vas_snapshot(pid, vid, "orig@v1").unwrap();

    // Mutate the original after the snapshot.
    sj.vas_switch(pid, vh).unwrap();
    sj.kernel_mut().store_u64(pid, va, 0x0222).unwrap();
    sj.vas_switch_home(pid).unwrap();

    // The snapshot still shows the old value.
    let svh = sj.vas_attach(pid, snap).unwrap();
    sj.vas_switch(pid, svh).unwrap();
    assert_eq!(sj.kernel_mut().load_u64(pid, va).unwrap(), 0x0111);
    // And writes to the snapshot do not leak back.
    sj.kernel_mut().store_u64(pid, va, 0x0333).unwrap();
    sj.vas_switch_home(pid).unwrap();
    sj.vas_switch(pid, vh).unwrap();
    assert_eq!(sj.kernel_mut().load_u64(pid, va).unwrap(), 0x0222);
}

#[test]
fn snapshot_requires_quiescent_locks() {
    let (mut sj, p0, p1) = setup_two();
    let va = VirtAddr::new(SEG_BASE);
    let vid = sj.vas_create(p0, "busy", Mode(0o660)).unwrap();
    let sid = sj.seg_alloc(p0, "bseg", va, 1 << 20, Mode(0o660)).unwrap();
    sj.seg_attach(p0, vid, sid, AttachMode::ReadWrite).unwrap();
    let vh = sj.vas_attach(p1, vid).unwrap();
    sj.vas_switch(p1, vh).unwrap();
    assert!(matches!(
        sj.vas_snapshot(p0, vid, "nope"),
        Err(SjError::Busy(_))
    ));
    sj.vas_switch_home(p1).unwrap();
    sj.vas_snapshot(p0, vid, "ok").unwrap();
}

#[test]
fn local_attach_rejects_template_slots() {
    // A process-local segment may not land in a PML4 slot shared with
    // the VAS template — private mappings in shared subtrees would leak.
    let (mut sj, pid) = setup();
    let vid = sj.vas_create(pid, "v", Mode(0o660)).unwrap();
    let global_sid = sj
        .seg_alloc(pid, "g", VirtAddr::new(SEG_BASE), 4096, Mode(0o660))
        .unwrap();
    sj.seg_attach(pid, vid, global_sid, AttachMode::ReadWrite)
        .unwrap();
    let vh = sj.vas_attach(pid, vid).unwrap();
    // Same 512 GiB slot as the global segment -> rejected.
    let clash = sj
        .seg_alloc(
            pid,
            "clash",
            VirtAddr::new(SEG_BASE + (1 << 20)),
            4096,
            Mode(0o660),
        )
        .unwrap();
    assert!(matches!(
        sj.seg_attach_local(pid, vh, clash, AttachMode::ReadWrite),
        Err(SjError::AddressConflict(_))
    ));
    // A different slot works.
    let ok = sj
        .seg_alloc(
            pid,
            "ok",
            VirtAddr::new(SEG_BASE + (1u64 << 39)),
            4096,
            Mode(0o660),
        )
        .unwrap();
    sj.seg_attach_local(pid, vh, ok, AttachMode::ReadWrite)
        .unwrap();
}

#[test]
fn non_lockable_segments_skip_locking() {
    // seg_ctl(SetLockable(false)): applications synchronizing themselves
    // can opt out; two writers may then be switched in simultaneously.
    let (mut sj, p0, p1) = setup_two();
    let va = VirtAddr::new(SEG_BASE);
    let vid = sj.vas_create(p0, "v", Mode(0o660)).unwrap();
    let sid = sj.seg_alloc(p0, "s", va, 1 << 20, Mode(0o660)).unwrap();
    sj.seg_ctl(p0, sid, SegCtl::SetLockable(false)).unwrap();
    sj.seg_attach(p0, vid, sid, AttachMode::ReadWrite).unwrap();
    let vh0 = sj.vas_attach(p0, vid).unwrap();
    let vh1 = sj.vas_attach(p1, vid).unwrap();
    sj.vas_switch(p0, vh0).unwrap();
    sj.vas_switch(p1, vh1).unwrap(); // would be WouldBlock if lockable
    assert_eq!(sj.stats().lock_acquisitions, 0);
}

#[test]
fn vas_clone_requires_read_permission() {
    let (mut sj, p0) = setup();
    let stranger = sj
        .kernel_mut()
        .spawn("stranger", Creds::new(999, 999))
        .unwrap();
    let vid = sj.vas_create(p0, "private", Mode(0o600)).unwrap();
    assert_eq!(
        sj.vas_clone(stranger, vid, "stolen"),
        Err(SjError::PermissionDenied)
    );
}

#[test]
fn seg_ctl_permission_enforced() {
    let (mut sj, p0) = setup();
    let other = sj
        .kernel_mut()
        .spawn("other", Creds::new(555, 100))
        .unwrap();
    let sid = sj
        .seg_alloc(p0, "s", VirtAddr::new(SEG_BASE), 4096, Mode(0o660))
        .unwrap();
    // Group member may use the segment but not chmod it.
    assert_eq!(
        sj.seg_ctl(other, sid, SegCtl::SetMode(Mode(0o666))),
        Err(SjError::PermissionDenied)
    );
    sj.seg_ctl(p0, sid, SegCtl::SetMode(Mode(0o666))).unwrap();
}

#[test]
fn switch_stats_and_current_tracking() {
    let (mut sj, pid) = setup();
    assert_eq!(sj.current_vas(pid), None);
    let vid = sj.vas_create(pid, "v", Mode(0o600)).unwrap();
    let vh = sj.vas_attach(pid, vid).unwrap();
    sj.vas_switch(pid, vh).unwrap();
    assert_eq!(sj.current_vas(pid), Some(vh));
    sj.vas_switch_home(pid).unwrap();
    assert_eq!(sj.current_vas(pid), None);
    assert_eq!(sj.stats().switches, 2);
}

#[test]
fn exit_process_releases_locks_and_attachments() {
    let (mut sj, p0, p1) = setup_two();
    let va = VirtAddr::new(SEG_BASE);
    let vid = sj.vas_create(p0, "v", Mode(0o660)).unwrap();
    let sid = sj.seg_alloc(p0, "s", va, 1 << 20, Mode(0o660)).unwrap();
    sj.seg_attach(p0, vid, sid, AttachMode::ReadWrite).unwrap();
    let vh0 = sj.vas_attach(p0, vid).unwrap();
    let vh1 = sj.vas_attach(p1, vid).unwrap();

    // p0 dies while switched in, holding the exclusive lock.
    sj.vas_switch(p0, vh0).unwrap();
    assert_eq!(sj.vas_switch(p1, vh1), Err(SjError::WouldBlock));
    sj.exit_process(p0).unwrap();

    // The lock is free and the VAS is usable by survivors.
    sj.vas_switch(p1, vh1).unwrap();
    sj.kernel_mut().store_u64(p1, va, 1).unwrap();
    assert!(sj.kernel().process(p0).is_err(), "process is gone");
    assert_eq!(
        sj.vas(vid).unwrap().attach_count(),
        1,
        "p0's attachment removed"
    );
}

#[test]
fn nvm_segments_cost_more_to_access() {
    use spacejmp_core::MemTier;
    let (mut sj, pid) = setup();
    sj.kernel_mut().set_nvm_tier(16 << 20);
    let vid = sj.vas_create(pid, "tiered", Mode(0o600)).unwrap();
    let dram = sj
        .seg_alloc(
            pid,
            "dram-seg",
            VirtAddr::new(SEG_BASE),
            1 << 20,
            Mode(0o600),
        )
        .unwrap();
    let nvm = sj
        .seg_alloc_tier(
            pid,
            "nvm-seg",
            VirtAddr::new(SEG_BASE + (1u64 << 39)),
            1 << 20,
            Mode(0o600),
            MemTier::Nvm,
        )
        .unwrap();
    sj.seg_attach(pid, vid, dram, AttachMode::ReadWrite)
        .unwrap();
    sj.seg_attach(pid, vid, nvm, AttachMode::ReadWrite).unwrap();
    let vh = sj.vas_attach(pid, vid).unwrap();
    sj.vas_switch(pid, vh).unwrap();

    let clock = sj.kernel().clock().clone();
    // Warm both translations first.
    sj.kernel_mut()
        .store_u64(pid, VirtAddr::new(SEG_BASE), 1)
        .unwrap();
    sj.kernel_mut()
        .store_u64(pid, VirtAddr::new(SEG_BASE + (1u64 << 39)), 1)
        .unwrap();
    let t0 = clock.now();
    for i in 0..64u64 {
        sj.kernel_mut()
            .store_u64(pid, VirtAddr::new(SEG_BASE + i * 8), i)
            .unwrap();
    }
    let dram_cost = clock.since(t0);
    let t1 = clock.now();
    for i in 0..64u64 {
        sj.kernel_mut()
            .store_u64(pid, VirtAddr::new(SEG_BASE + (1u64 << 39) + i * 8), i)
            .unwrap();
    }
    let nvm_cost = clock.since(t1);
    assert!(
        nvm_cost > 5 * dram_cost,
        "NVM writes {nvm_cost} vs DRAM {dram_cost}"
    );
    // Data is intact on both tiers.
    assert_eq!(
        sj.kernel_mut()
            .load_u64(pid, VirtAddr::new(SEG_BASE + 8))
            .unwrap(),
        1
    );
    assert_eq!(
        sj.kernel_mut()
            .load_u64(pid, VirtAddr::new(SEG_BASE + (1u64 << 39) + 8))
            .unwrap(),
        1
    );
}

#[test]
fn nvm_requires_a_configured_tier() {
    use spacejmp_core::MemTier;
    let (mut sj, pid) = setup();
    assert!(sj
        .seg_alloc_tier(
            pid,
            "no-tier",
            VirtAddr::new(SEG_BASE),
            4096,
            Mode(0o600),
            MemTier::Nvm
        )
        .is_err());
}

#[test]
fn switch_downgrades_write_hold_to_read() {
    // One process moves from a VAS mapping segment S read-write to a VAS
    // mapping S read-only. Its hold must downgrade so another writer can
    // then take the exclusive lock only after the reader leaves too.
    let (mut sj, p0, p1) = setup_two();
    let va = VirtAddr::new(SEG_BASE);
    let sid = sj.seg_alloc(p0, "s", va, 1 << 20, Mode(0o660)).unwrap();
    let v_rw = sj.vas_create(p0, "v-rw", Mode(0o660)).unwrap();
    sj.seg_attach(p0, v_rw, sid, AttachMode::ReadWrite).unwrap();
    let v_ro = sj.vas_create(p0, "v-ro", Mode(0o660)).unwrap();
    sj.seg_attach(p0, v_ro, sid, AttachMode::ReadOnly).unwrap();

    let vh_rw = sj.vas_attach(p0, v_rw).unwrap();
    let vh_ro = sj.vas_attach(p0, v_ro).unwrap();
    sj.vas_switch(p0, vh_rw).unwrap();
    assert_eq!(sj.segment(sid).unwrap().lock().writer(), Some(p0));

    // Direct RW -> RO switch: writer hold becomes a reader hold.
    sj.vas_switch(p0, vh_ro).unwrap();
    assert_eq!(sj.segment(sid).unwrap().lock().writer(), None);
    assert_eq!(sj.segment(sid).unwrap().lock().reader_count(), 1);

    // Another reader may now join...
    let p1_vh = sj.vas_attach(p1, v_ro).unwrap();
    sj.vas_switch(p1, p1_vh).unwrap();
    // ...but a writer still cannot.
    let p1_rw = sj.vas_attach(p1, v_rw).unwrap();
    sj.vas_switch_home(p1).unwrap();
    assert_eq!(sj.vas_switch(p1, p1_rw), Err(SjError::WouldBlock));
    sj.vas_switch_home(p0).unwrap();
    sj.vas_switch(p1, p1_rw).unwrap();
}

#[test]
fn switch_upgrades_read_hold_to_write_when_sole_reader() {
    let (mut sj, p0, p1) = setup_two();
    let va = VirtAddr::new(SEG_BASE);
    let sid = sj.seg_alloc(p0, "s", va, 1 << 20, Mode(0o660)).unwrap();
    let v_rw = sj.vas_create(p0, "v-rw", Mode(0o660)).unwrap();
    sj.seg_attach(p0, v_rw, sid, AttachMode::ReadWrite).unwrap();
    let v_ro = sj.vas_create(p0, "v-ro", Mode(0o660)).unwrap();
    sj.seg_attach(p0, v_ro, sid, AttachMode::ReadOnly).unwrap();

    let vh_ro0 = sj.vas_attach(p0, v_ro).unwrap();
    let vh_rw0 = sj.vas_attach(p0, v_rw).unwrap();
    sj.vas_switch(p0, vh_ro0).unwrap();
    // Sole reader upgrades RO -> RW directly.
    sj.vas_switch(p0, vh_rw0).unwrap();
    assert_eq!(sj.segment(sid).unwrap().lock().writer(), Some(p0));
    assert_eq!(sj.segment(sid).unwrap().lock().reader_count(), 0);
    sj.vas_switch_home(p0).unwrap();

    // With a second reader present, the upgrade must fail and roll back
    // to the read hold.
    let vh_ro1 = sj.vas_attach(p1, v_ro).unwrap();
    sj.vas_switch(p0, vh_ro0).unwrap();
    sj.vas_switch(p1, vh_ro1).unwrap();
    assert_eq!(sj.vas_switch(p0, vh_rw0), Err(SjError::WouldBlock));
    assert_eq!(
        sj.segment(sid).unwrap().lock().reader_count(),
        2,
        "hold preserved"
    );
    // p0 can still read through its current VAS.
    assert!(sj.kernel_mut().load_u64(p0, va).is_ok());
}

#[test]
fn segment_image_survives_a_reboot() {
    // The paper's final §7 item: "the persistency of multiple virtual
    // address spaces (for example, across reboots)". Build a pointer-rich
    // heap, save the segment, boot a brand-new machine, restore — the
    // pointers still work because the base address travels with the
    // image.
    let (mut sj, pid) = setup();
    let va = VirtAddr::new(SEG_BASE);
    let vid = sj.vas_create(pid, "persist", Mode(0o660)).unwrap();
    let sid = sj.seg_alloc(pid, "pseg", va, 1 << 20, Mode(0o660)).unwrap();
    sj.seg_attach(pid, vid, sid, AttachMode::ReadWrite).unwrap();
    let vh = sj.vas_attach(pid, vid).unwrap();
    sj.vas_switch(pid, vh).unwrap();
    let heap = VasHeap::format(&mut sj, pid, sid).unwrap();
    let node = heap.malloc(&mut sj, pid, 16).unwrap();
    sj.kernel_mut().store_u64(pid, node, 0xbeef).unwrap();
    heap.set_root(&mut sj, pid, node).unwrap();
    sj.vas_switch_home(pid).unwrap();

    // Cannot save while someone is switched in (lock held).
    sj.vas_switch(pid, vh).unwrap();
    assert!(matches!(sj.save_segment(pid, sid), Err(SjError::Busy(_))));
    sj.vas_switch_home(pid).unwrap();
    let image = sj.save_segment(pid, sid).unwrap();
    drop(sj); // "power off"

    // New machine, new kernel, new process.
    let (mut sj2, p2) = setup();
    let restored = sj2.restore_segment(p2, &image).unwrap();
    assert_eq!(sj2.seg_find("pseg").unwrap(), restored);
    let vid2 = sj2.vas_create(p2, "persist2", Mode(0o660)).unwrap();
    sj2.seg_attach(p2, vid2, restored, AttachMode::ReadWrite)
        .unwrap();
    let vh2 = sj2.vas_attach(p2, vid2).unwrap();
    sj2.vas_switch(p2, vh2).unwrap();
    let heap2 = VasHeap::open(&mut sj2, p2, restored).unwrap();
    let root = heap2.root(&mut sj2, p2).unwrap();
    assert_eq!(root, node, "pointer value identical across the reboot");
    assert_eq!(sj2.kernel_mut().load_u64(p2, root).unwrap(), 0xbeef);

    // Corrupt images are rejected.
    assert!(sj2.restore_segment(p2, b"garbage").is_err());
    assert!(sj2.restore_segment(p2, &image[..image.len() - 5]).is_err());
}

#[test]
fn superpage_segments_map_with_huge_pages_end_to_end() {
    // A 2 MiB-page segment allocated through seg_alloc_sized attaches and
    // switches like any other segment, but reaches the TLB as superpage
    // entries: one walk covers the whole 2 MiB, and interior touches hit.
    let (mut sj, pid) = setup();
    let va = VirtAddr::new(SEG_BASE); // 2 MiB-aligned by construction
    let size = 4 << 20; // two 2 MiB pages
    let vid = sj.vas_create(pid, "huge", Mode(0o660)).unwrap();
    let sid = sj
        .seg_alloc_sized(pid, "hseg", va, size, Mode(0o660), PageSize::Size2M)
        .unwrap();
    sj.seg_attach(pid, vid, sid, AttachMode::ReadWrite).unwrap();
    let vh = sj.vas_attach(pid, vid).unwrap();
    sj.vas_switch(pid, vh).unwrap();

    let core = sj.kernel_mut().process(pid).unwrap().core();
    let walks_before = {
        let (mmu, _) = sj.kernel_mut().core_mem(core);
        mmu.stats().walks
    };

    // Touch both superpages at interior offsets, then re-touch the first:
    // two walks total, and the re-touch is a TLB hit.
    sj.kernel_mut().store_u64(pid, va.add(0x12340), 1).unwrap();
    sj.kernel_mut()
        .store_u64(pid, va.add((2 << 20) + 0x998), 2)
        .unwrap();
    assert_eq!(sj.kernel_mut().load_u64(pid, va.add(0x12340)).unwrap(), 1);

    let (mmu, _) = sj.kernel_mut().core_mem(core);
    assert_eq!(mmu.stats().walks - walks_before, 2);
    assert_eq!(mmu.tlb_mut().reach_bytes(), 2 * (2 << 20));

    // Misaligned base or ragged size is rejected with the typed error.
    let skew = VirtAddr::new(SEG_BASE + 0x10_0000_0000 + 0x1000);
    let err = sj
        .seg_alloc_sized(pid, "skew", skew, 2 << 20, Mode(0o660), PageSize::Size2M)
        .unwrap_err();
    assert!(matches!(
        err,
        SjError::Os(sjmp_os::OsError::Misaligned { requested, .. }) if requested == skew.raw()
    ));
    let ragged = VirtAddr::new(SEG_BASE + 0x20_0000_0000);
    let err = sj
        .seg_alloc_sized(
            pid,
            "rag",
            ragged,
            (2 << 20) + 0x1000,
            Mode(0o660),
            PageSize::Size2M,
        )
        .unwrap_err();
    assert!(matches!(
        err,
        SjError::Os(sjmp_os::OsError::Misaligned { .. })
    ));
}
