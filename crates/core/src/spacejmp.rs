//! The SpaceJMP API: the operations of Figure 3, layered over the
//! simulated kernel.
//!
//! ```text
//! VAS API - for applications.          Segment API - for library developers.
//! vas_find(name) -> vid               seg_find(name) -> sid
//! vas_create(name, perms) -> vid      seg_alloc(name, base, size, perms) -> sid
//! vas_clone(vid) -> vid               seg_clone(sid) -> sid
//! vas_attach(vid) -> vh               seg_attach(vid|vh, sid)
//! vas_detach(vh)                      seg_detach(vid|vh, sid)
//! vas_switch(vh)                      seg_ctl(sid, cmd)
//! vas_ctl(cmd, vid[, arg])
//! ```
//!
//! Every method takes the calling [`Pid`] explicitly (the simulator has no
//! ambient "current process"). Costs are charged to the machine clock
//! following the paper's measurements: one kernel entry per call, the
//! Table 2 switch decomposition in [`SpaceJmp::vas_switch`], and one
//! uncontended lock acquisition per lockable segment.

use std::collections::{HashMap, HashSet};

use sjmp_mem::backend::TranslationBackend;
use sjmp_mem::paging::PteFlags;
use sjmp_mem::KernelFlavor;
use sjmp_mem::{Access, PageSize, VirtAddr, PAGE_SIZE};
use sjmp_os::kernel::{GLOBAL_HI, GLOBAL_LO, PRIVATE_HI};
use sjmp_os::{
    Acl, CapKind, CapRights, Capability, CoreCtx, FaultOutcome, FaultSite, Kernel, MapPolicy, Mode,
    ObjClass, OsError, Pid, Region, VmObjectId, VmspaceId,
};
use sjmp_trace::{EventKind, MetricsSnapshot, Tracer};

use sjmp_os::PageState;

use crate::error::{SjError, SjResult};
use crate::image::{Catalog, SegmentImage, VasImage};
use crate::segment::{AttachMode, SegId, Segment};
use crate::vas::{Attachment, Vas, VasHandle, VasId};

/// Which physical tier backs a segment (Section 7 heterogeneous memory:
/// "a co-packaged volatile performance tier, a persistent capacity
/// tier").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemTier {
    /// Volatile performance tier (default).
    Dram,
    /// Persistent capacity tier: larger, slower, asymmetric write cost.
    Nvm,
}

/// Commands for [`SpaceJmp::vas_ctl`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VasCtl {
    /// Change the VAS's permission mode bits.
    SetMode(Mode),
    /// Hint that this VAS should get a TLB tag ("The user has the ability
    /// to pass hints to the kernel (vas_ctl) to request a tag be assigned
    /// to an address space", Section 4.4).
    RequestTag,
    /// Drop the tag request (new attachments use the flush-always tag 0).
    ReleaseTag,
    /// Destroy the VAS (must have no attached processes).
    Destroy,
}

/// Commands for [`SpaceJmp::seg_ctl`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegCtl {
    /// Change the segment's permission mode bits.
    SetMode(Mode),
    /// Mark the segment lockable or not.
    SetLockable(bool),
    /// Destroy the segment (must be detached everywhere).
    Destroy,
}

/// SpaceJMP-layer event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SjStats {
    /// `vas_switch` calls completed.
    pub switches: u64,
    /// `vas_attach` calls completed.
    pub attaches: u64,
    /// Segment locks acquired across all switches.
    pub lock_acquisitions: u64,
    /// Switch attempts aborted because a lock was contended.
    pub lock_contentions: u64,
    /// Lock acquisitions elided by [`FaultSite::SegLock`] injection —
    /// each one is a seeded race the analyzer must find.
    pub lock_skips: u64,
    /// Switches that succeeded only after backoff ([`SpaceJmp::vas_switch_retry`]).
    pub retried_switches: u64,
    /// Switch attempts abandoned as deadlocked.
    pub deadlocks: u64,
    /// Crashed processes reclaimed with [`SpaceJmp::reap_process`].
    pub reaps: u64,
    /// Processes sacrificed by [`SpaceJmp::oom_kill`].
    pub oom_kills: u64,
}

impl SjStats {
    /// Counters accumulated since `earlier` (an older snapshot of the
    /// same instance), for phase measurements.
    pub fn delta_since(&self, earlier: &SjStats) -> SjStats {
        SjStats {
            switches: self.switches - earlier.switches,
            attaches: self.attaches - earlier.attaches,
            lock_acquisitions: self.lock_acquisitions - earlier.lock_acquisitions,
            lock_contentions: self.lock_contentions - earlier.lock_contentions,
            lock_skips: self.lock_skips - earlier.lock_skips,
            retried_switches: self.retried_switches - earlier.retried_switches,
            deadlocks: self.deadlocks - earlier.deadlocks,
            reaps: self.reaps - earlier.reaps,
            oom_kills: self.oom_kills - earlier.oom_kills,
        }
    }
}

/// Backoff schedule for [`SpaceJmp::vas_switch_retry`].
///
/// A contended switch waits `base_backoff_cycles << attempt` simulated
/// cycles (capped at `base_backoff_cycles << max_backoff_shift`) between
/// attempts, giving the holder time to switch away, and gives up with
/// [`SjError::WouldBlock`] after `max_retries` failed attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts after the first before giving up.
    pub max_retries: u32,
    /// Cycles charged before the first retry.
    pub base_backoff_cycles: u64,
    /// Exponential-backoff cap: shift never exceeds this.
    pub max_backoff_shift: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 16,
            base_backoff_cycles: 256,
            max_backoff_shift: 10,
        }
    }
}

/// The SpaceJMP service: kernel + VAS/segment registries.
///
/// # Examples
///
/// The canonical usage from the paper's Figure 4:
///
/// ```
/// use sjmp_mem::{KernelFlavor, MachineId, VirtAddr};
/// use sjmp_os::{Creds, Kernel, Mode};
/// use spacejmp_core::{AttachMode, SpaceJmp};
///
/// # fn main() -> Result<(), spacejmp_core::SjError> {
/// let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M2));
/// let pid = sj.kernel_mut().spawn("app", Creds::new(100, 100))?;
///
/// // va = 0xC0DE...; sz = 32 MiB (scaled from the paper's 1<<35).
/// let va = VirtAddr::new(0x1000_C0DE_0000);
/// let vid = sj.vas_create(pid, "v0", Mode(0o660))?;
/// let sid = sj.seg_alloc(pid, "s0", va, 32 << 20, Mode(0o660))?;
/// sj.seg_attach(pid, vid, sid, AttachMode::ReadWrite)?;
///
/// let vh = sj.vas_attach(pid, vid)?;
/// sj.vas_switch(pid, vh)?;
/// sj.kernel_mut().store_u64(pid, va, 42)?;
/// assert_eq!(sj.kernel_mut().load_u64(pid, va)?, 42);
/// # Ok(()) }
/// ```
pub struct SpaceJmp {
    kernel: Kernel,
    vases: HashMap<VasId, Vas>,
    segments: HashMap<SegId, Segment>,
    attachments: HashMap<VasHandle, Attachment>,
    vas_names: HashMap<String, VasId>,
    seg_names: HashMap<String, SegId>,
    /// The VAS each process is currently switched into (absent = its
    /// original, spawn-time address space).
    current: HashMap<Pid, VasHandle>,
    /// Processes blocked on a contended switch and the attachment they
    /// want — the nodes of the waits-for graph. A process stays
    /// registered while its switch keeps failing (including between
    /// [`SpaceJmp::vas_switch_retry`] calls that gave up) and is removed
    /// when a switch succeeds, deadlock is declared, or it dies.
    waiters: HashMap<Pid, VasHandle>,
    next_vid: u64,
    next_sid: u64,
    next_vh: u64,
    stats: SjStats,
}

impl std::fmt::Debug for SpaceJmp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpaceJmp")
            .field("vases", &self.vases.len())
            .field("segments", &self.segments.len())
            .field("attachments", &self.attachments.len())
            .finish()
    }
}

impl SpaceJmp {
    /// Wraps a booted kernel with the SpaceJMP service.
    pub fn new(kernel: Kernel) -> Self {
        SpaceJmp {
            kernel,
            vases: HashMap::new(),
            segments: HashMap::new(),
            attachments: HashMap::new(),
            vas_names: HashMap::new(),
            seg_names: HashMap::new(),
            current: HashMap::new(),
            waiters: HashMap::new(),
            next_vid: 1,
            next_sid: 1,
            next_vh: 1,
            stats: SjStats::default(),
        }
    }

    /// The underlying kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Mutable access to the kernel (spawning, memory access).
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.kernel
    }

    /// SpaceJMP-layer counters.
    pub fn stats(&self) -> SjStats {
        self.stats
    }

    /// Processes currently blocked inside `vas_switch` waiting for a
    /// contended segment lock. This is the switch-path queue depth an
    /// admission controller compares against its bound: every waiter
    /// here is a request already consuming a core while making no
    /// progress. Charges no modeled cycles.
    pub fn switch_wait_depth(&self) -> usize {
        self.waiters.len()
    }

    /// Blocked switchers whose target VAS would lock `sid` — the
    /// per-segment share of [`switch_wait_depth`](Self::switch_wait_depth).
    /// A sharded store maps each shard to one lockable store segment, so
    /// this is the shard's queue-depth health signal. Charges no modeled
    /// cycles.
    pub fn seg_wait_depth(&self, sid: SegId) -> usize {
        self.waiters
            .values()
            .filter(|&&vh| self.switch_lock_set(vh).iter().any(|&(s, _)| s == sid))
            .count()
    }

    /// Installs `tracer` on the kernel and every simulated MMU, so VAS
    /// operations, syscalls, and TLB events all land in one event stream.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.kernel.set_tracer(tracer);
    }

    /// The installed tracer (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        self.kernel.tracer()
    }

    /// Re-emits the instants describing the kernel's *current* VAS
    /// topology: `SegRegister`/`SegExtent` (segment geometry),
    /// `SegAttach` (VAS membership), and `VasEnter` for any process
    /// presently switched into a VAS. Trace replays attribute raw word
    /// addresses to segments from these events, so a harness that
    /// clears the trace ring after warm-up must call this afterwards or
    /// the retained stream opens with no address map. Charges no
    /// modeled cycles; events land on core 0 at its current clock.
    pub fn trace_topology(&self) {
        let tracer = self.kernel.tracer().clone();
        if !tracer.enabled() {
            return;
        }
        let ts = self.kernel.clocks().now_on(0);
        for sid in self.segment_ids() {
            let Ok(seg) = self.segment(sid) else { continue };
            tracer.instant(ts, 0, EventKind::SegRegister, sid.0, seg.base().raw());
            tracer.instant(ts, 0, EventKind::SegExtent, sid.0, seg.size());
        }
        for vid in self.vas_ids() {
            let Ok(vas) = self.vas(vid) else { continue };
            for &(sid, _) in vas.segments() {
                tracer.instant(ts, 0, EventKind::SegAttach, sid.0, vid.0);
            }
        }
        let mut entered: Vec<(Pid, VasHandle)> =
            self.current.iter().map(|(p, vh)| (*p, *vh)).collect();
        entered.sort_unstable();
        for (pid, vh) in entered {
            if let Ok(att) = self.attachment(vh) {
                tracer.instant(ts, 0, EventKind::VasEnter, pid.0, att.vid.0);
            }
        }
    }

    /// One consolidated metrics snapshot: the kernel's
    /// [`sjmp_os::KernelSnapshot`] counters plus the SpaceJMP-layer
    /// [`SjStats`] under `sj.*` names. Charges no kernel entry; callers
    /// wanting syscall semantics should pair it with
    /// [`sjmp_os::Kernel::sys_stats`].
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut m = self.kernel.stats_snapshot().to_metrics();
        m.set_counter("sj.switches", self.stats.switches);
        m.set_counter("sj.attaches", self.stats.attaches);
        m.set_counter("sj.lock_acquisitions", self.stats.lock_acquisitions);
        m.set_counter("sj.lock_contentions", self.stats.lock_contentions);
        m.set_counter("sj.lock_skips", self.stats.lock_skips);
        m.set_counter("sj.retried_switches", self.stats.retried_switches);
        m.set_counter("sj.deadlocks", self.stats.deadlocks);
        m.set_counter("sj.reaps", self.stats.reaps);
        m.set_counter("sj.oom_kills", self.stats.oom_kills);
        m
    }

    /// The VAS registry entry for `vid`.
    ///
    /// # Errors
    ///
    /// [`SjError::NotFound`] for unknown ids.
    pub fn vas(&self, vid: VasId) -> SjResult<&Vas> {
        self.vases.get(&vid).ok_or(SjError::NotFound)
    }

    /// The segment registry entry for `sid`.
    ///
    /// # Errors
    ///
    /// [`SjError::NotFound`] for unknown ids.
    pub fn segment(&self, sid: SegId) -> SjResult<&Segment> {
        self.segments.get(&sid).ok_or(SjError::NotFound)
    }

    fn segment_mut(&mut self, sid: SegId) -> SjResult<&mut Segment> {
        self.segments.get_mut(&sid).ok_or(SjError::NotFound)
    }

    fn vas_mut(&mut self, vid: VasId) -> SjResult<&mut Vas> {
        self.vases.get_mut(&vid).ok_or(SjError::NotFound)
    }

    /// The attachment behind a handle.
    ///
    /// # Errors
    ///
    /// [`SjError::NotFound`] for unknown handles.
    pub fn attachment(&self, vh: VasHandle) -> SjResult<&Attachment> {
        self.attachments.get(&vh).ok_or(SjError::NotFound)
    }

    /// The VAS a process is currently switched into, if any.
    pub fn current_vas(&self, pid: Pid) -> Option<VasHandle> {
        self.current.get(&pid).copied()
    }

    /// Every registered segment id, sorted. Offline audits
    /// (`sjmp-analyze`'s kernel linter) walk these; sorting keeps their
    /// findings deterministic.
    pub fn segment_ids(&self) -> Vec<SegId> {
        let mut ids: Vec<SegId> = self.segments.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Every registered VAS id, sorted (see [`Self::segment_ids`]).
    pub fn vas_ids(&self) -> Vec<VasId> {
        let mut ids: Vec<VasId> = self.vases.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Every live attachment handle, sorted (see [`Self::segment_ids`]).
    pub fn attachment_handles(&self) -> Vec<VasHandle> {
        let mut hs: Vec<VasHandle> = self.attachments.keys().copied().collect();
        hs.sort();
        hs
    }

    /// Terminates a process SpaceJMP-cleanly: switches it home (releasing
    /// every segment lock it holds), detaches all of its VAS attachments,
    /// and then exits it in the kernel. Without this, a process exiting
    /// while switched into a shared VAS would leak its segment locks.
    ///
    /// # Errors
    ///
    /// [`SjError::Os`] wrapping kernel failures.
    pub fn exit_process(&mut self, pid: Pid) -> SjResult<()> {
        if self.current.contains_key(&pid) {
            self.vas_switch_home(pid)?;
        }
        let handles: Vec<VasHandle> = self
            .attachments
            .iter()
            .filter(|(_, a)| a.pid == pid)
            .map(|(h, _)| *h)
            .collect();
        for vh in handles {
            self.vas_detach(pid, vh)?;
        }
        self.waiters.remove(&pid);
        self.kernel.exit(pid)?;
        Ok(())
    }

    /// Reclaims a process that died *without* cooperating — crashed mid
    /// system call ([`OsError::Crashed`]) or was killed while switched
    /// into a shared VAS. Unlike [`Self::exit_process`] this never runs
    /// code "as" the dead process: it force-releases every segment lock
    /// the process holds, unwinds its attachment bookkeeping, and then
    /// has the kernel reclaim its vmspaces, frames, and ASIDs
    /// ([`sjmp_os::Kernel::kill`]). Other processes blocked on the dead
    /// process's locks can switch in afterwards.
    ///
    /// # Errors
    ///
    /// [`OsError::NoSuchProcess`] if `pid` is unknown (e.g. reaped
    /// twice).
    pub fn reap_process(&mut self, pid: Pid) -> SjResult<()> {
        // Reaping is kernel housekeeping — it never runs "as" the dead
        // process — so, like reclaim, it executes on the boot core.
        let ctx = CoreCtx::BOOT;
        let tracer = self.kernel.tracer().clone();
        tracer.begin(self.now_on(ctx), ctx.core as u32, EventKind::Reap, pid.0);
        let r = self.reap_process_inner(pid);
        tracer.end(self.now_on(ctx), ctx.core as u32, EventKind::Reap, pid.0);
        r
    }

    fn reap_process_inner(&mut self, pid: Pid) -> SjResult<()> {
        self.kernel.process(pid)?;
        // 1. Revoke the corpse's segment locks so blocked switchers can
        //    make progress.
        for seg in self.segments.values_mut() {
            seg.lock_mut().release(pid);
        }
        // 2. Unwind SpaceJMP bookkeeping: attachments, VAS membership,
        //    local segment attach counts, switch/waiter state.
        let handles: Vec<VasHandle> = self
            .attachments
            .iter()
            .filter(|(_, a)| a.pid == pid)
            .map(|(h, _)| *h)
            .collect();
        for vh in handles {
            let att = self.attachments.remove(&vh).expect("collected above");
            if let Some(v) = self.vases.get_mut(&att.vid) {
                v.remove_attachment(pid);
            }
            for (sid, _) in &att.local_segments {
                if let Some(seg) = self.segments.get_mut(sid) {
                    seg.drop_attach();
                }
            }
        }
        self.current.remove(&pid);
        self.waiters.remove(&pid);
        // 3. Kernel-level reclamation of vmspaces, frames, and ASIDs.
        self.kernel.kill(pid)?;
        self.stats.reaps += 1;
        Ok(())
    }

    /// The OOM killer: invoked when reclaim cannot satisfy an allocation
    /// ([`OsError::OutOfMemory`]). Selects the victim with the largest
    /// resident set ([`sjmp_os::Kernel::select_oom_victim`]), skipping the
    /// processes in `protect`, and reclaims it through
    /// [`Self::reap_process`] — so a victim switched into a shared VAS
    /// releases its segment locks and blocked switchers make progress.
    /// Returns the victim, or `None` when no eligible process holds any
    /// resident frames (killing would free nothing).
    ///
    /// # Errors
    ///
    /// Propagates [`Self::reap_process`] failures.
    pub fn oom_kill(&mut self, protect: &[Pid]) -> SjResult<Option<Pid>> {
        let Some(victim) = self.kernel.select_oom_victim(protect) else {
            return Ok(None);
        };
        let tracer = self.kernel.tracer().clone();
        // Badness is the selection criterion itself: the victim's resident
        // set. Captured before the reap so the decision is auditable.
        let (badness, free_before) = if tracer.enabled() {
            (
                self.kernel.resident_frames_of(victim),
                self.kernel.stats_snapshot().phys.free_frames,
            )
        } else {
            (0, 0)
        };
        self.reap_process(victim)?;
        self.stats.oom_kills += 1;
        if tracer.enabled() {
            let freed = self
                .kernel
                .stats_snapshot()
                .phys
                .free_frames
                .saturating_sub(free_before);
            // Like the reap it triggers, the OOM killer is boot-core
            // housekeeping.
            let ctx = CoreCtx::BOOT;
            tracer.instant(
                self.now_on(ctx),
                ctx.core as u32,
                EventKind::OomKill,
                victim.0,
                badness,
            );
            tracer.add("oom.kills", 1);
            tracer.add(&format!("oom.pages_freed.pid{}", victim.0), freed);
            tracer.add(&format!("oom.badness.pid{}", victim.0), badness);
        }
        Ok(Some(victim))
    }

    /// Full-system consistency audit: the kernel-level checks of
    /// [`sjmp_os::Kernel::check_invariants`] (with every live VAS's
    /// template root declared as an external page-table tree) plus the
    /// SpaceJMP-layer invariants. Returns one line per violation; an
    /// empty vector means the system is consistent. The crash-injection
    /// harness calls this after every injected fault and reap.
    pub fn check_invariants(&mut self) -> Vec<String> {
        let roots: Vec<sjmp_mem::Pfn> = self.vases.values().map(Vas::template_root).collect();
        let mut problems = self.kernel.check_invariants(&roots);

        // Segment locks may only be held by registered processes (a
        // reaped process must not leave holds behind; a zombie is still
        // registered, so its holds are legal until the reap).
        for seg in self.segments.values() {
            let lock = seg.lock();
            let holders = lock
                .writer()
                .into_iter()
                .chain(lock.readers().iter().copied());
            for pid in holders {
                if self.kernel.process(pid).is_err() {
                    problems.push(format!(
                        "segment {:?} lock held by dead process {pid:?}",
                        seg.sid()
                    ));
                }
            }
        }

        // Attachment bookkeeping must be mutually consistent.
        let mut attach_counts: HashMap<SegId, u64> = HashMap::new();
        for v in self.vases.values() {
            for (sid, _) in v.segments() {
                *attach_counts.entry(*sid).or_insert(0) += 1;
            }
            for pid in v.attached_pids() {
                let vh = v.handle_of(pid).expect("attached_pids yields mapped keys");
                match self.attachments.get(&vh) {
                    None => problems.push(format!(
                        "VAS {:?} records attachment {vh:?} for {pid:?} with no attachment entry",
                        v.vid()
                    )),
                    Some(a) if a.pid != pid || a.vid != v.vid() => problems.push(format!(
                        "attachment {vh:?} disagrees with VAS {:?} about its owner",
                        v.vid()
                    )),
                    Some(_) => {}
                }
            }
        }
        for (vh, a) in &self.attachments {
            if self.kernel.process(a.pid).is_err() {
                problems.push(format!(
                    "attachment {vh:?} belongs to dead process {:?}",
                    a.pid
                ));
            }
            if !self.vases.contains_key(&a.vid) {
                problems.push(format!(
                    "attachment {vh:?} references destroyed VAS {:?}",
                    a.vid
                ));
            }
            for (sid, _) in &a.local_segments {
                *attach_counts.entry(*sid).or_insert(0) += 1;
            }
        }
        for seg in self.segments.values() {
            let expected = attach_counts.get(&seg.sid()).copied().unwrap_or(0);
            if seg.attach_count() != expected {
                problems.push(format!(
                    "segment {:?} attach count {} but {} attachments reference it",
                    seg.sid(),
                    seg.attach_count(),
                    expected
                ));
            }
        }

        // Switch and waiter state must point at real attachments of live
        // processes.
        for (pid, vh) in self.current.iter().chain(self.waiters.iter()) {
            match self.attachments.get(vh) {
                None => problems.push(format!("{pid:?} tracks missing attachment {vh:?}")),
                Some(a) if a.pid != *pid => {
                    problems.push(format!(
                        "{pid:?} tracks attachment {vh:?} owned by {:?}",
                        a.pid
                    ));
                }
                Some(_) => {}
            }
        }

        problems
    }

    // ---- VAS API ---------------------------------------------------------

    /// `vas_create(name, perms) -> vid`.
    ///
    /// # Errors
    ///
    /// [`SjError::NameTaken`] if `name` is registered.
    pub fn vas_create(&mut self, pid: Pid, name: &str, mode: Mode) -> SjResult<VasId> {
        self.kernel.charge_entry_on(self.ctx(pid));
        if self.vas_names.contains_key(name) {
            return Err(SjError::NameTaken(name.to_string()));
        }
        let creds = self.kernel.process(pid)?.creds();
        let backend = self.kernel.backend().clone();
        let root = backend
            .new_root(self.kernel.phys_mut())
            .map_err(OsError::from)?;
        let vid = VasId(self.next_vid);
        self.next_vid += 1;
        self.vases
            .insert(vid, Vas::new(vid, name, Acl::new(creds, mode), root));
        self.vas_names.insert(name.to_string(), vid);
        if self.kernel.flavor() == KernelFlavor::Barrelfish {
            // Barrelfish: the creator receives an object capability from
            // the user-level SpaceJMP service.
            let cap = Capability::new(
                CapKind::Object {
                    class: ObjClass::Vas,
                    id: vid.0,
                },
                CapRights::ALL,
            );
            self.kernel
                .process_mut(pid)?
                .cspace_mut()
                .insert(cap)
                .map_err(OsError::from)?;
        }
        Ok(vid)
    }

    /// `vas_find(name) -> vid`.
    ///
    /// # Errors
    ///
    /// [`SjError::NotFound`] if no VAS has that name.
    pub fn vas_find(&mut self, name: &str) -> SjResult<VasId> {
        // No calling pid in the paper's signature: the lookup is billed to
        // the boot core.
        self.kernel.charge_entry();
        self.vas_names.get(name).copied().ok_or(SjError::NotFound)
    }

    /// `vas_clone(vid) -> vid`: a new VAS sharing the same segments (used
    /// to derive a differently-permissioned view; contents are shared).
    ///
    /// # Errors
    ///
    /// Name collisions and permission failures.
    pub fn vas_clone(&mut self, pid: Pid, vid: VasId, new_name: &str) -> SjResult<VasId> {
        let (segs, src_acl) = {
            let v = self.vas(vid)?;
            (v.segments().to_vec(), v.acl().clone())
        };
        let creds = self.kernel.process(pid)?.creds();
        if !src_acl.allows(creds, Access::Read) {
            return Err(SjError::PermissionDenied);
        }
        let new_vid = self.vas_create(pid, new_name, src_acl.mode())?;
        for (sid, mode) in segs {
            self.seg_attach(pid, new_vid, sid, mode)?;
        }
        Ok(new_vid)
    }

    /// `vas_attach(vid) -> vh`: instantiates a process-private vmspace for
    /// the VAS — private segments (text, globals, stack) are remapped, and
    /// the VAS's shared page-table subtrees are linked in.
    ///
    /// # Errors
    ///
    /// Permission failures; resource exhaustion.
    pub fn vas_attach(&mut self, pid: Pid, vid: VasId) -> SjResult<VasHandle> {
        let ctx = self.ctx(pid);
        let tracer = self.kernel.tracer().clone();
        tracer.begin(
            self.now_on(ctx),
            ctx.core as u32,
            EventKind::VasAttach,
            vid.0,
        );
        let r = self.vas_attach_inner(pid, vid);
        tracer.end(
            self.now_on(ctx),
            ctx.core as u32,
            EventKind::VasAttach,
            vid.0,
        );
        r
    }

    fn vas_attach_inner(&mut self, pid: Pid, vid: VasId) -> SjResult<VasHandle> {
        self.kernel.charge_entry_on(self.ctx(pid));
        let creds = self.kernel.process(pid)?.creds();
        {
            let v = self.vas(vid)?;
            if !v.acl().allows(creds, Access::Read) {
                return Err(SjError::PermissionDenied);
            }
            if v.handle_of(pid).is_some() {
                return Err(SjError::Busy("process already attached to this VAS"));
            }
            // ACL check per segment: the process must be able to use every
            // segment in the mode the VAS maps it.
            for (sid, mode) in v.segments() {
                let seg = self.segments.get(sid).ok_or(SjError::NotFound)?;
                if !seg.acl().allows(creds, mode.required_access()) {
                    return Err(SjError::PermissionDenied);
                }
            }
        }
        // Build the per-process vmspace instance. A failure mid-build
        // (resource exhaustion, injected fault) must not leak the
        // half-built vmspace or its object references.
        let space = self.kernel.create_vmspace()?;
        let root_cap = match self.vas_attach_build(pid, vid, space) {
            Ok(cap) => cap,
            Err(e) => {
                if let Ok(p) = self.kernel.process_mut(pid) {
                    p.remove_space(space);
                }
                let _ = self.kernel.destroy_vmspace(space);
                return Err(e);
            }
        };
        let vh = VasHandle(self.next_vh);
        self.next_vh += 1;
        self.attachments.insert(
            vh,
            Attachment {
                pid,
                vid,
                vmspace: space,
                local_segments: Vec::new(),
                root_cap,
            },
        );
        self.vas_mut(vid)?.add_attachment(pid, vh);
        self.stats.attaches += 1;
        Ok(vh)
    }

    /// Populates a freshly created vmspace for an attachment: private
    /// regions, shared subtree links, the optional ASID, and (Barrelfish)
    /// the root-table capability. [`Self::vas_attach`] unwinds the
    /// vmspace if any step fails.
    fn vas_attach_build(
        &mut self,
        pid: Pid,
        vid: VasId,
        space: VmspaceId,
    ) -> SjResult<Option<sjmp_os::CapSlot>> {
        self.remap_private_regions(pid, space)?;
        let (template_root, segs, tag_requested) = {
            let v = self.vas(vid)?;
            (v.template_root(), v.segments().to_vec(), v.tag_requested())
        };
        let ctx = self.ctx(pid);
        for (sid, mode) in &segs {
            self.link_segment(ctx, space, template_root, *sid, *mode)?;
        }
        if tag_requested && self.kernel.tagging() {
            let asid = self.kernel.alloc_asid()?;
            self.kernel.vmspace_mut(space)?.set_asid(asid);
        }
        self.kernel.process_mut(pid)?.add_space(space);
        // Barrelfish: hand the process a capability to its new root page
        // table; vas_switch will be an invocation of this capability.
        if self.kernel.flavor() == KernelFlavor::Barrelfish {
            let root = self.kernel.vmspace(space)?.root();
            let cap = Capability::new(
                CapKind::PageTable {
                    frame: root,
                    level: 4,
                },
                CapRights::ALL,
            );
            Ok(Some(
                self.kernel
                    .process_mut(pid)?
                    .cspace_mut()
                    .insert(cap)
                    .map_err(OsError::from)?,
            ))
        } else {
            Ok(None)
        }
    }

    /// `vas_detach(vh)`: drops the attachment and destroys the private
    /// vmspace instance. The process must not be switched into the VAS.
    ///
    /// # Errors
    ///
    /// [`SjError::Busy`] if currently switched in; [`SjError::BadHandle`]
    /// if `vh` is not `pid`'s.
    pub fn vas_detach(&mut self, pid: Pid, vh: VasHandle) -> SjResult<()> {
        let ctx = self.ctx(pid);
        let tracer = self.kernel.tracer().clone();
        tracer.begin(
            self.now_on(ctx),
            ctx.core as u32,
            EventKind::VasDetach,
            vh.0,
        );
        let r = self.vas_detach_inner(pid, vh);
        tracer.end(
            self.now_on(ctx),
            ctx.core as u32,
            EventKind::VasDetach,
            vh.0,
        );
        r
    }

    fn vas_detach_inner(&mut self, pid: Pid, vh: VasHandle) -> SjResult<()> {
        self.kernel.charge_entry_on(self.ctx(pid));
        let att = self.attachment(vh)?.clone();
        if att.pid != pid {
            return Err(SjError::BadHandle);
        }
        if self.current.get(&pid) == Some(&vh) {
            return Err(SjError::Busy("cannot detach the active VAS"));
        }
        self.attachments.remove(&vh);
        if let Some(slot) = att.root_cap {
            self.kernel.process_mut(pid)?.cspace_mut().delete(slot);
        }
        self.vas_mut(att.vid)?.remove_attachment(pid);
        for (sid, _) in &att.local_segments {
            if let Ok(seg) = self.segment_mut(*sid) {
                seg.drop_attach();
            }
        }
        self.kernel.process_mut(pid)?.remove_space(att.vmspace);
        self.kernel.destroy_vmspace(att.vmspace)?;
        Ok(())
    }

    /// `vas_switch(vh)`: acquire every lockable segment's lock in the
    /// mapped mode, release the previous VAS's locks, and load the new
    /// translation root (Table 2's kernel entry + bookkeeping + CR3).
    ///
    /// # Errors
    ///
    /// [`SjError::WouldBlock`] if any segment lock is contended; no locks
    /// are held on return in that case.
    pub fn vas_switch(&mut self, pid: Pid, vh: VasHandle) -> SjResult<()> {
        let ctx = self.ctx(pid);
        let tracer = self.kernel.tracer().clone();
        tracer.begin(
            self.now_on(ctx),
            ctx.core as u32,
            EventKind::VasSwitch,
            pid.0,
        );
        let r = self.vas_switch_inner(pid, vh);
        tracer.end(
            self.now_on(ctx),
            ctx.core as u32,
            EventKind::VasSwitch,
            pid.0,
        );
        r
    }

    fn vas_switch_inner(&mut self, pid: Pid, vh: VasHandle) -> SjResult<()> {
        let ctx = self.ctx(pid);
        let tracer = self.kernel.tracer().clone();
        let att = self.attachments.get(&vh).ok_or(SjError::NotFound)?.clone();
        if att.pid != pid {
            return Err(SjError::BadHandle);
        }
        // Barrelfish: switching replaces the thread's root page table via
        // a checked capability invocation; a revoked capability bars the
        // switch ("revoking the process' root page table prohibits the
        // process from switching into the VAS").
        if let Some(slot) = att.root_cap {
            self.kernel
                .process(pid)?
                .cspace()
                .check(
                    slot,
                    CapRights {
                        read: true,
                        write: true,
                        grant: false,
                    },
                )
                .map_err(|e| SjError::Os(OsError::Cap(e)))?;
        }
        // Collect the lock set for the target VAS.
        let mut lock_set: Vec<(SegId, AttachMode)> = Vec::new();
        for (sid, mode) in self.vas(att.vid)?.segments() {
            if self.segment(*sid)?.lockable() {
                lock_set.push((*sid, *mode));
            }
        }
        for (sid, mode) in &att.local_segments {
            if self.segment(*sid)?.lockable() {
                lock_set.push((*sid, *mode));
            }
        }
        // Seeded race injection: a `Fail` at the SegLock site *elides*
        // that segment's acquisition — the switch proceeds, the process
        // runs in the shared VAS without the lock, and the downstream
        // release/downgrade paths never see the segment. The LockSkip
        // instant is a diagnostic for test harnesses; the race detector
        // must find the resulting unguarded accesses on its own.
        lock_set.retain(|(sid, _)| {
            if self.kernel.fault_outcome(FaultSite::SegLock) == FaultOutcome::Fail {
                self.stats.lock_skips += 1;
                tracer.instant(
                    self.kernel.clocks().now_on(ctx.core),
                    ctx.core as u32,
                    EventKind::LockSkip,
                    sid.0,
                    pid.0,
                );
                false
            } else {
                true
            }
        });
        // Try-acquire all; roll back on contention. `try_acquire` is
        // re-entrant, so segments also held for the previous VAS succeed
        // (including upgrades when no other reader is present).
        let mut acquired = Vec::new();
        for (sid, mode) in &lock_set {
            let lock_cost = self.kernel.cost().lock_uncontended;
            let seg = self.segment_mut(*sid)?;
            if seg.lock_mut().try_acquire(pid, *mode) {
                acquired.push(*sid);
                self.kernel.clocks().advance(ctx.core, lock_cost);
                tracer.instant(
                    self.now_on(ctx),
                    ctx.core as u32,
                    EventKind::LockAcquire,
                    sid.0,
                    pid.0,
                );
            } else {
                tracer.instant(
                    self.now_on(ctx),
                    ctx.core as u32,
                    EventKind::LockContention,
                    sid.0,
                    pid.0,
                );
                for a in acquired {
                    // Roll back: restore the hold the previous VAS needs,
                    // or release entirely.
                    match self.previous_mode(pid, a) {
                        Some(prev) => {
                            let lock = self.segment_mut(a)?.lock_mut();
                            lock.downgrade_to(pid, prev);
                        }
                        None => self.segment_mut(a)?.lock_mut().release(pid),
                    }
                }
                self.stats.lock_contentions += 1;
                return Err(SjError::WouldBlock);
            }
        }
        self.stats.lock_acquisitions += acquired.len() as u64;
        // Load the new translation root *before* touching the previous
        // VAS's lock holds: a mid-switch kernel fault then unwinds exactly
        // like contention. If the process crashed inside the kernel, its
        // corpse keeps every lock it holds until `reap_process` runs.
        if let Err(e) = self.kernel.switch_vmspace(pid, att.vmspace) {
            if e != OsError::Crashed {
                for a in acquired {
                    match self.previous_mode(pid, a) {
                        Some(prev) => self.segment_mut(a)?.lock_mut().downgrade_to(pid, prev),
                        None => self.segment_mut(a)?.lock_mut().release(pid),
                    }
                }
            }
            return Err(e.into());
        }
        // Release locks of the VAS we are leaving (those not re-acquired),
        // and narrow re-acquired holds to the new mode.
        self.release_current_locks(pid, &lock_set)?;
        for (sid, mode) in &lock_set {
            self.segment_mut(*sid)?.lock_mut().downgrade_to(pid, *mode);
        }
        self.current.insert(pid, vh);
        self.waiters.remove(&pid);
        self.stats.switches += 1;
        tracer.instant(
            self.now_on(ctx),
            ctx.core as u32,
            EventKind::VasEnter,
            pid.0,
            att.vid.0,
        );
        Ok(())
    }

    /// [`Self::vas_switch`] with bounded exponential backoff: the policy
    /// of every SpaceJMP application that must make progress against
    /// writers (RedisJMP's client switches, multi-process GUPS).
    ///
    /// On contention the caller is registered in the waits-for graph and
    /// the backoff is charged to the machine clock (the simulated analog
    /// of sleeping). Before each backoff the graph is checked for cycles.
    ///
    /// # Errors
    ///
    /// * [`SjError::Deadlock`] if the blocked switchers wait on each
    ///   other in a cycle — retrying can never succeed; the application
    ///   must release something (switch home) or a crashed holder must
    ///   be reaped.
    /// * [`SjError::WouldBlock`] once `policy.max_retries` attempts all
    ///   failed; the caller stays registered as a waiter.
    /// * Everything [`Self::vas_switch`] returns.
    pub fn vas_switch_retry(
        &mut self,
        pid: Pid,
        vh: VasHandle,
        policy: &RetryPolicy,
    ) -> SjResult<()> {
        let mut attempt = 0u32;
        loop {
            match self.vas_switch(pid, vh) {
                Err(SjError::WouldBlock) => {
                    self.waiters.insert(pid, vh);
                    if self.wait_cycle_exists(pid) {
                        self.waiters.remove(&pid);
                        self.stats.deadlocks += 1;
                        return Err(SjError::Deadlock);
                    }
                    if attempt >= policy.max_retries {
                        // Give up but stay in the waits-for graph: the
                        // process is still logically blocked, and other
                        // waiters must be able to see the edge.
                        return Err(SjError::WouldBlock);
                    }
                    let ctx = self.ctx(pid);
                    let shift = attempt.min(policy.max_backoff_shift);
                    self.kernel
                        .clocks()
                        .advance(ctx.core, policy.base_backoff_cycles << shift);
                    attempt += 1;
                    self.kernel.tracer().instant(
                        self.now_on(ctx),
                        ctx.core as u32,
                        EventKind::SwitchRetry,
                        pid.0,
                        u64::from(attempt),
                    );
                }
                other => {
                    if other.is_ok() && attempt > 0 {
                        self.stats.retried_switches += 1;
                    }
                    return other;
                }
            }
        }
    }

    /// The lockable segments (and modes) a switch to `vh` must acquire.
    fn switch_lock_set(&self, vh: VasHandle) -> Vec<(SegId, AttachMode)> {
        let Some(att) = self.attachments.get(&vh) else {
            return Vec::new();
        };
        let mut set: Vec<(SegId, AttachMode)> = Vec::new();
        if let Some(v) = self.vases.get(&att.vid) {
            set.extend(v.segments().iter().copied());
        }
        set.extend(att.local_segments.iter().copied());
        set.retain(|(sid, _)| self.segments.get(sid).is_some_and(Segment::lockable));
        set
    }

    /// Processes whose current hold on `sid` blocks `pid` acquiring in
    /// `mode` (the edges of the waits-for graph).
    fn conflicting_holders(&self, pid: Pid, sid: SegId, mode: AttachMode) -> Vec<Pid> {
        let Some(seg) = self.segments.get(&sid) else {
            return Vec::new();
        };
        let lock = seg.lock();
        let mut out = Vec::new();
        if let Some(w) = lock.writer() {
            if w != pid {
                out.push(w);
            }
        }
        if mode == AttachMode::ReadWrite {
            out.extend(lock.readers().iter().copied().filter(|&r| r != pid));
        }
        out
    }

    /// Whether following waits-for edges from `start` reaches a cycle:
    /// waiter → conflicting lock holder → (if that holder is itself
    /// blocked) the locks *it* wants, and so on. A process that reaches a
    /// cycle can never be unblocked by waiting.
    fn wait_cycle_exists(&self, start: Pid) -> bool {
        fn visit(sj: &SpaceJmp, node: Pid, stack: &mut Vec<Pid>, done: &mut HashSet<Pid>) -> bool {
            if stack.contains(&node) {
                return true;
            }
            if !done.insert(node) {
                return false;
            }
            let Some(&vh) = sj.waiters.get(&node) else {
                return false;
            };
            stack.push(node);
            for (sid, mode) in sj.switch_lock_set(vh) {
                for holder in sj.conflicting_holders(node, sid, mode) {
                    if visit(sj, holder, stack, done) {
                        stack.pop();
                        return true;
                    }
                }
            }
            stack.pop();
            false
        }
        visit(self, start, &mut Vec::new(), &mut HashSet::new())
    }

    /// Switches `pid` back to its original (spawn-time) address space,
    /// releasing all segment locks.
    ///
    /// # Errors
    ///
    /// Kernel switch errors.
    pub fn vas_switch_home(&mut self, pid: Pid) -> SjResult<()> {
        self.release_current_locks(pid, &[])?;
        let home = self.kernel.process(pid)?.initial_space();
        self.kernel.switch_vmspace(pid, home)?;
        self.current.remove(&pid);
        self.waiters.remove(&pid);
        self.stats.switches += 1;
        let ctx = self.ctx(pid);
        self.kernel.tracer().instant(
            self.now_on(ctx),
            ctx.core as u32,
            EventKind::VasEnter,
            pid.0,
            0,
        );
        Ok(())
    }

    /// `vas_ctl(cmd, vid)`.
    ///
    /// # Errors
    ///
    /// Permission failures; [`SjError::Busy`] destroying an attached VAS.
    pub fn vas_ctl(&mut self, pid: Pid, cmd: VasCtl, vid: VasId) -> SjResult<()> {
        self.kernel.charge_entry_on(self.ctx(pid));
        let creds = self.kernel.process(pid)?.creds();
        {
            let v = self.vas(vid)?;
            let owner = v.acl().owner();
            if creds.uid != 0 && creds.uid != owner.uid {
                return Err(SjError::PermissionDenied);
            }
        }
        match cmd {
            VasCtl::SetMode(mode) => self.vas_mut(vid)?.acl_mut().set_mode(mode),
            VasCtl::RequestTag => self.vas_mut(vid)?.set_tag_requested(true),
            VasCtl::ReleaseTag => self.vas_mut(vid)?.set_tag_requested(false),
            VasCtl::Destroy => {
                if self.vas(vid)?.attach_count() > 0 {
                    return Err(SjError::Busy("VAS still attached"));
                }
                let v = self.vases.remove(&vid).expect("checked above");
                self.vas_names.remove(v.name());
                for (sid, _) in v.segments() {
                    let object = self.segments.get_mut(sid).map(|seg| {
                        seg.drop_attach();
                        seg.object()
                    });
                    // The template tree is about to be freed; a swappable
                    // segment's eviction hook must not walk it afterwards.
                    if let Some(object) = object {
                        self.kernel
                            .unregister_external_mapping(object, v.template_root());
                    }
                }
                let backend = self.kernel.backend().clone();
                backend.free_tables(self.kernel.phys_mut(), v.template_root(), &[]);
                // Freed table frames may be recycled under a new root;
                // stale host-side walks must not survive that.
                self.kernel.flush_host_walk_caches();
            }
        }
        Ok(())
    }

    /// Revokes a process's attachment capability (Barrelfish flavor):
    /// the owner of a VAS can bar an attached process from switching in
    /// without its cooperation, the reclamation mechanism of Section 4.2.
    ///
    /// # Errors
    ///
    /// * [`SjError::PermissionDenied`] if `owner` does not own the VAS
    ///   (root excepted) or the kernel is not the Barrelfish flavor.
    pub fn revoke_attachment(&mut self, owner: Pid, vh: VasHandle) -> SjResult<()> {
        self.kernel.charge_entry_on(self.ctx(owner));
        let att = self.attachment(vh)?.clone();
        let creds = self.kernel.process(owner)?.creds();
        {
            let v = self.vas(att.vid)?;
            if creds.uid != 0 && creds.uid != v.acl().owner().uid {
                return Err(SjError::PermissionDenied);
            }
        }
        let Some(slot) = att.root_cap else {
            return Err(SjError::InvalidArgument(
                "revocation requires the Barrelfish flavor",
            ));
        };
        self.kernel
            .process_mut(att.pid)?
            .cspace_mut()
            .revoke(slot)
            .map_err(|e| SjError::Os(OsError::Cap(e)))?;
        Ok(())
    }

    /// Snapshots a VAS (Section 7 "ongoing work": snapshotting and
    /// versioning): deep-copies every attached segment and assembles a
    /// new, independent VAS over the copies. Later writes to either the
    /// original or the snapshot do not affect the other.
    ///
    /// # Errors
    ///
    /// Name collisions (`new_name` itself and `new_name/<segment>` names
    /// must be free), permission failures, allocation failures.
    pub fn vas_snapshot(&mut self, pid: Pid, vid: VasId, new_name: &str) -> SjResult<VasId> {
        let (segs, mode) = {
            let v = self.vas(vid)?;
            let creds = self.kernel.process(pid)?.creds();
            if !v.acl().allows(creds, Access::Read) {
                return Err(SjError::PermissionDenied);
            }
            (v.segments().to_vec(), v.acl().mode())
        };
        // Segment locks must be quiescent for a consistent snapshot.
        for (sid, _) in &segs {
            if !self.segment(*sid)?.lock().is_free() {
                return Err(SjError::Busy("segment lock held during snapshot"));
            }
        }
        let new_vid = self.vas_create(pid, new_name, mode)?;
        for (sid, seg_mode) in segs {
            let seg_name = self.segment(sid)?.name().to_string();
            let copy = self.seg_clone(pid, sid, &format!("{new_name}/{seg_name}"))?;
            self.seg_attach(pid, new_vid, copy, seg_mode)?;
        }
        Ok(new_vid)
    }

    /// Serializes a segment to a self-describing byte image: name, fixed
    /// base, size, mode, and raw contents. Together with
    /// [`Self::restore_segment`] this implements the paper's final
    /// future-work item — "the persistency of multiple virtual address
    /// spaces (for example, across reboots)" (Section 7). Because all
    /// pointers inside a segment are plain virtual addresses and the
    /// segment's base is part of its identity, an image restored on a
    /// fresh machine is immediately usable, pointers intact.
    ///
    /// # Errors
    ///
    /// Permission failures; [`SjError::Busy`] while the lock is held.
    pub fn save_segment(&mut self, pid: Pid, sid: SegId) -> SjResult<Vec<u8>> {
        self.kernel.charge_entry_on(self.ctx(pid));
        let creds = self.kernel.process(pid)?.creds();
        let (name, base, size, mode, object) = {
            let seg = self.segment(sid)?;
            if !seg.acl().allows(creds, Access::Read) {
                return Err(SjError::PermissionDenied);
            }
            if !seg.lock().is_free() {
                return Err(SjError::Busy("segment lock held during save"));
            }
            (
                seg.name().to_string(),
                seg.base(),
                seg.size(),
                seg.acl().mode(),
                seg.object(),
            )
        };
        let mut out = Vec::with_capacity(size as usize + 64);
        out.extend_from_slice(b"SJMPSEG1");
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&base.raw().to_le_bytes());
        out.extend_from_slice(&size.to_le_bytes());
        out.extend_from_slice(&(mode.0 as u32).to_le_bytes());
        let start = out.len();
        out.resize(start + size as usize, 0);
        // Page-by-page read handles every backing uniformly: contiguous
        // segments read straight from their frames, demand-paged ones
        // fill zero pages with zeros and fetch evicted pages back
        // through the swap device without faulting them in.
        for index in 0..size / PAGE_SIZE {
            let at = start + (index * PAGE_SIZE) as usize;
            self.kernel
                .read_object_page(object, index, &mut out[at..at + PAGE_SIZE as usize])?;
        }
        Ok(out)
    }

    /// Restores a segment image produced by [`Self::save_segment`] —
    /// typically into a *different* [`SpaceJmp`] instance ("after a
    /// reboot"). The segment reappears under its original name, at its
    /// original base, with `pid`'s credentials owning it.
    ///
    /// # Errors
    ///
    /// [`SjError::InvalidArgument`] for corrupt images;
    /// [`SjError::NameTaken`] if the name is already registered.
    pub fn restore_segment(&mut self, pid: Pid, image: &[u8]) -> SjResult<SegId> {
        let err = || SjError::InvalidArgument("corrupt segment image");
        if image.len() < 12 || &image[..8] != b"SJMPSEG1" {
            return Err(err());
        }
        let name_len = u32::from_le_bytes(image[8..12].try_into().expect("4 bytes")) as usize;
        let rest = &image[12..];
        if rest.len() < name_len + 20 {
            return Err(err());
        }
        let name = std::str::from_utf8(&rest[..name_len])
            .map_err(|_| err())?
            .to_string();
        let rest = &rest[name_len..];
        let base = VirtAddr::new(u64::from_le_bytes(rest[..8].try_into().expect("8 bytes")));
        let size = u64::from_le_bytes(rest[8..16].try_into().expect("8 bytes"));
        let mode = Mode(u32::from_le_bytes(rest[16..20].try_into().expect("4 bytes")) as u16);
        let contents = &rest[20..];
        if contents.len() as u64 != size {
            return Err(err());
        }
        let sid = self.seg_alloc(pid, &name, base, size, mode)?;
        let pa = {
            let object = self.segment(sid)?.object();
            self.kernel.vmobject(object)?.base()
        };
        self.kernel
            .phys_mut()
            .write_bytes(pa, contents)
            .map_err(OsError::from)?;
        Ok(sid)
    }

    /// `vas_save(vid)`: persists a VAS to the kernel's snapshot disk,
    /// completing the paper's Section 7 future-work item — "the
    /// persistency of multiple virtual address spaces (for example,
    /// across reboots)". The whole VAS (permission mode, every attached
    /// segment's geometry, flags, and contents — including pages
    /// currently evicted to swap, which are read back through the swap
    /// device) is serialized into a sparse [`VasImage`], merged into
    /// the disk's [`Catalog`] under the VAS's name, and committed as a
    /// new snapshot generation through the write-ahead journal. The
    /// commit is atomic under power loss: after a crash at *any* block
    /// boundary, recovery yields either the previous catalog or this
    /// one, never a hybrid. Returns the committed generation.
    ///
    /// # Errors
    ///
    /// Permission failures; [`SjError::Busy`] while any segment lock is
    /// held (the image must be quiescent);
    /// [`sjmp_os::OsError::Crashed`] when an injected block-IO crash
    /// fault aborts the commit mid-sequence.
    pub fn vas_save(&mut self, pid: Pid, vid: VasId) -> SjResult<u64> {
        self.kernel.charge_entry_on(self.ctx(pid));
        let ctx = self.ctx(pid);
        let tracer = self.kernel.tracer().clone();
        tracer.begin(
            self.now_on(ctx),
            ctx.core as u32,
            EventKind::SnapshotSave,
            vid.0,
        );
        let result = self.vas_save_inner(pid, vid, ctx);
        tracer.end(
            self.now_on(ctx),
            ctx.core as u32,
            EventKind::SnapshotSave,
            vid.0,
        );
        result
    }

    fn vas_save_inner(&mut self, pid: Pid, vid: VasId, ctx: CoreCtx) -> SjResult<u64> {
        let creds = self.kernel.process(pid)?.creds();
        let (name, mode, segs) = {
            let v = self.vas(vid)?;
            if !v.acl().allows(creds, Access::Read) {
                return Err(SjError::PermissionDenied);
            }
            (v.name().to_string(), v.acl().mode(), v.segments().to_vec())
        };
        // As vas_snapshot: locks must be quiescent for a consistent image.
        for (sid, _) in &segs {
            if !self.segment(*sid)?.lock().is_free() {
                return Err(SjError::Busy("segment lock held during save"));
            }
        }
        let mut segments = Vec::with_capacity(segs.len());
        for (sid, attach_mode) in segs {
            segments.push(self.serialize_segment(ctx, sid, attach_mode)?);
        }
        let image = VasImage {
            mode: mode.0,
            segments,
        };
        // Read-modify-write the catalog so other saved VASes survive
        // this save; the snapshot store's generation machinery makes
        // the whole read-back + commit copy-on-write.
        let payload = self.kernel.disk_read(ctx);
        let mut catalog = Catalog::decode(&payload)
            .ok_or(SjError::InvalidArgument("corrupt snapshot catalog on disk"))?;
        catalog.upsert(&name, image.encode());
        let generation = self.kernel.disk_commit(ctx, &catalog.encode())?;
        Ok(generation)
    }

    /// Serializes one attached segment into a sparse [`SegmentImage`].
    /// Zero pages are elided; pages evicted to swap are read back
    /// through the swap device (charged and traced as swap-ins) without
    /// disturbing their evicted state.
    fn serialize_segment(
        &mut self,
        ctx: CoreCtx,
        sid: SegId,
        attach_mode: AttachMode,
    ) -> SjResult<SegmentImage> {
        let (name, base, size, mode, lockable, object) = {
            let s = self.segment(sid)?;
            (
                s.name().to_string(),
                s.base(),
                s.size(),
                s.acl().mode(),
                s.lockable(),
                s.object(),
            )
        };
        let swappable = self.kernel.vmobject(object)?.swappable();
        let mut pages = Vec::new();
        let mut buf = vec![0u8; PAGE_SIZE as usize];
        for index in 0..size / PAGE_SIZE {
            if let PageState::Swapped { .. } = self.kernel.vmobject(object)?.page_state(index) {
                let tracer = self.kernel.tracer().clone();
                tracer.begin(
                    self.now_on(ctx),
                    ctx.core as u32,
                    EventKind::SwapIn,
                    object.0,
                );
                let cycles = self.kernel.cost().swap_in_page;
                self.kernel.clocks().advance(ctx.core, cycles);
                tracer.end(
                    self.now_on(ctx),
                    ctx.core as u32,
                    EventKind::SwapIn,
                    object.0,
                );
            }
            self.kernel.read_object_page(object, index, &mut buf)?;
            if buf.iter().all(|&b| b == 0) {
                continue;
            }
            pages.push((index, buf.clone()));
        }
        Ok(SegmentImage {
            name,
            base: base.raw(),
            size,
            writable: attach_mode == AttachMode::ReadWrite,
            mode: mode.0,
            lockable,
            swappable,
            pages,
        })
    }

    /// `vas_load(name)`: reattaches a VAS saved with [`Self::vas_save`]
    /// from the kernel's snapshot disk — typically on a freshly booted
    /// machine whose kernel was handed the surviving [`sjmp_blk::BlockDev`]
    /// via [`Kernel::attach_disk`]. The VAS, its segments (at their
    /// original bases, with their original names, modes, lockability,
    /// and swappability), and all saved page contents reappear; because
    /// segment bases are part of their identity, pointers stored inside
    /// the segments are valid immediately. Returns the new [`VasId`].
    ///
    /// # Errors
    ///
    /// [`SjError::NotFound`] when no saved VAS has that name;
    /// [`SjError::InvalidArgument`] for corrupt catalog bytes;
    /// [`SjError::NameTaken`] when the VAS or one of its segment names
    /// is already registered; allocation failures.
    pub fn vas_load(&mut self, pid: Pid, name: &str) -> SjResult<VasId> {
        self.kernel.charge_entry_on(self.ctx(pid));
        let ctx = self.ctx(pid);
        let tracer = self.kernel.tracer().clone();
        tracer.begin(
            self.now_on(ctx),
            ctx.core as u32,
            EventKind::SnapshotLoad,
            pid.0,
        );
        let result = self.vas_load_inner(pid, name, ctx);
        tracer.end(
            self.now_on(ctx),
            ctx.core as u32,
            EventKind::SnapshotLoad,
            pid.0,
        );
        result
    }

    fn vas_load_inner(&mut self, pid: Pid, name: &str, ctx: CoreCtx) -> SjResult<VasId> {
        let payload = self.kernel.disk_read(ctx);
        let catalog = Catalog::decode(&payload)
            .ok_or(SjError::InvalidArgument("corrupt snapshot catalog on disk"))?;
        let bytes = catalog.get(name).ok_or(SjError::NotFound)?;
        let image = VasImage::decode(bytes)
            .ok_or(SjError::InvalidArgument("corrupt VAS image in catalog"))?;
        let vid = self.vas_create(pid, name, Mode(image.mode))?;
        for seg in &image.segments {
            let base = VirtAddr::new(seg.base);
            let sid = if seg.swappable {
                self.seg_alloc_swappable(pid, &seg.name, base, seg.size, Mode(seg.mode))?
            } else {
                self.seg_alloc(pid, &seg.name, base, seg.size, Mode(seg.mode))?
            };
            if !seg.lockable {
                self.segment_mut(sid)?.set_lockable(false);
            }
            let object = self.segment(sid)?.object();
            for (index, data) in &seg.pages {
                self.kernel.write_object_page(object, *index, data)?;
            }
            let mode = if seg.writable {
                AttachMode::ReadWrite
            } else {
                AttachMode::ReadOnly
            };
            self.seg_attach(pid, vid, sid, mode)?;
        }
        Ok(vid)
    }

    // ---- Segment API -------------------------------------------------------

    /// `seg_alloc(name, base, size, perms) -> sid`: reserves physical
    /// memory for a segment with a fixed virtual base in the global range.
    ///
    /// # Errors
    ///
    /// * [`SjError::AddressConflict`] for bases outside
    ///   `[GLOBAL_LO, GLOBAL_HI)` (they would collide with process-private
    ///   mappings — Section 4.1's disjoint-range rule).
    /// * [`SjError::NameTaken`] / alignment / allocation failures.
    pub fn seg_alloc(
        &mut self,
        pid: Pid,
        name: &str,
        base: VirtAddr,
        size: u64,
        mode: Mode,
    ) -> SjResult<SegId> {
        self.seg_alloc_tier(pid, name, base, size, mode, MemTier::Dram)
    }

    /// Like [`Self::seg_alloc`], choosing the backing memory tier. NVM
    /// segments pair naturally with persistent VASes: the data they hold
    /// survives in the capacity tier, at higher per-access cost.
    ///
    /// # Errors
    ///
    /// As [`Self::seg_alloc`]; additionally fails if the kernel has no
    /// NVM tier configured.
    pub fn seg_alloc_tier(
        &mut self,
        pid: Pid,
        name: &str,
        base: VirtAddr,
        size: u64,
        mode: Mode,
        tier: MemTier,
    ) -> SjResult<SegId> {
        self.kernel.charge_entry_on(self.ctx(pid));
        let size = self.seg_validate(name, base, size)?;
        self.kernel.process(pid)?;
        let object = match tier {
            MemTier::Dram => self.kernel.alloc_object(size)?,
            MemTier::Nvm => self.kernel.alloc_object_nvm(size)?,
        };
        // "Physical pages are reserved at the time a segment is created":
        // the backing object outlives any process mapping it, so process
        // teardown must never reclaim it.
        self.kernel.vmobject_mut(object)?.set_pinned(true);
        self.seg_register(pid, name, base, size, object, mode)
    }

    /// Like [`Self::seg_alloc`], but mapping the segment with superpages
    /// (2 MiB or 1 GiB) wherever it is attached. The virtual base and the
    /// size must be naturally aligned to `page_size`, and the backing
    /// physical range is allocated aligned so every leaf can be a real
    /// superpage entry. Fewer, shallower leaves make attachment cheaper
    /// to construct and give each TLB entry `page_size` bytes of reach —
    /// the Section 6 mitigation for translation cost, as a first-class
    /// segment property.
    ///
    /// # Errors
    ///
    /// As [`Self::seg_alloc`], plus [`OsError::Misaligned`] (wrapped in
    /// [`SjError::Os`]) when `base` or `size` breaks the alignment rule.
    pub fn seg_alloc_sized(
        &mut self,
        pid: Pid,
        name: &str,
        base: VirtAddr,
        size: u64,
        mode: Mode,
        page_size: PageSize,
    ) -> SjResult<SegId> {
        self.kernel.charge_entry_on(self.ctx(pid));
        let size = self.seg_validate(name, base, size)?;
        if page_size != PageSize::Size4K {
            if !base.is_aligned(page_size.bytes()) {
                return Err(SjError::Os(OsError::Misaligned {
                    requested: base.raw(),
                    page_size,
                }));
            }
            if !size.is_multiple_of(page_size.bytes()) {
                return Err(SjError::Os(OsError::Misaligned {
                    requested: size,
                    page_size,
                }));
            }
        }
        self.kernel.process(pid)?;
        let object = self.kernel.alloc_object_aligned(None, size, page_size)?;
        self.kernel.vmobject_mut(object)?.set_pinned(true);
        let sid = self.seg_register(pid, name, base, size, object, mode)?;
        self.segment_mut(sid)?.set_page_size(page_size);
        Ok(sid)
    }

    /// Like [`Self::seg_alloc`], but demand-paged and **swappable**: no
    /// physical frames are reserved up front, pages materialize on first
    /// touch, and under memory pressure the kernel's clock reclaimer may
    /// evict them to the swap device. This deliberately relaxes the
    /// paper's "physical pages are reserved at the time a segment is
    /// created" rule, making pinning a measurable trade-off: a pinned
    /// segment never swaps but aborts allocation when memory is
    /// exhausted, a swappable one survives oversubscription at swap-in
    /// cost. The backing object is owned by the creator (for quota
    /// accounting and OOM badness) and marked *preserved*, so like any
    /// segment it outlives process teardown until `seg_ctl(Destroy)`.
    ///
    /// Swappable segments clone ([`Self::seg_clone`] copies page states,
    /// swap slots included), save, and persist ([`Self::vas_save`])
    /// like any other segment; evicted pages are read back through the
    /// swap device as needed.
    ///
    /// # Errors
    ///
    /// As [`Self::seg_alloc`].
    pub fn seg_alloc_swappable(
        &mut self,
        pid: Pid,
        name: &str,
        base: VirtAddr,
        size: u64,
        mode: Mode,
    ) -> SjResult<SegId> {
        self.kernel.charge_entry_on(self.ctx(pid));
        let size = self.seg_validate(name, base, size)?;
        self.kernel.process(pid)?;
        let object = self.kernel.alloc_object_demand(Some(pid), size)?;
        self.kernel.vmobject_mut(object)?.set_preserved(true);
        self.seg_register(pid, name, base, size, object, mode)
    }

    /// Shared argument validation for segment allocation; returns the
    /// page-rounded size.
    fn seg_validate(&self, name: &str, base: VirtAddr, size: u64) -> SjResult<u64> {
        if self.seg_names.contains_key(name) {
            return Err(SjError::NameTaken(name.to_string()));
        }
        if size == 0 {
            return Err(SjError::InvalidArgument("zero-length segment"));
        }
        if !base.is_aligned(PAGE_SIZE) {
            return Err(SjError::InvalidArgument(
                "segment base must be page aligned",
            ));
        }
        let size = size.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        if base < GLOBAL_LO || base.add(size) > GLOBAL_HI {
            return Err(SjError::AddressConflict(format!(
                "segment [{base}, {}) outside the global range [{GLOBAL_LO}, {GLOBAL_HI})",
                base.add(size)
            )));
        }
        Ok(size)
    }

    /// Registers a segment descriptor over an allocated backing object
    /// and (Barrelfish) hands the creator its object capability.
    fn seg_register(
        &mut self,
        pid: Pid,
        name: &str,
        base: VirtAddr,
        size: u64,
        object: VmObjectId,
        mode: Mode,
    ) -> SjResult<SegId> {
        let creds = self.kernel.process(pid)?.creds();
        let sid = SegId(self.next_sid);
        self.next_sid += 1;
        self.segments.insert(
            sid,
            Segment::new(sid, name, base, size, object, Acl::new(creds, mode)),
        );
        self.seg_names.insert(name.to_string(), sid);
        // Announce the segment's geometry so trace replays can map raw
        // word addresses back to segments. Two instants because an event
        // carries only two argument words: SegRegister = (sid, base),
        // SegExtent = (sid, size).
        let tracer = self.kernel.tracer().clone();
        if tracer.enabled() {
            let ctx = self.ctx(pid);
            let (ts, core) = (self.now_on(ctx), ctx.core as u32);
            tracer.instant(ts, core, EventKind::SegRegister, sid.0, base.raw());
            tracer.instant(ts, core, EventKind::SegExtent, sid.0, size);
        }
        if self.kernel.flavor() == KernelFlavor::Barrelfish {
            let cap = Capability::new(
                CapKind::Object {
                    class: ObjClass::Segment,
                    id: sid.0,
                },
                CapRights::ALL,
            );
            self.kernel
                .process_mut(pid)?
                .cspace_mut()
                .insert(cap)
                .map_err(OsError::from)?;
        }
        Ok(sid)
    }

    /// `seg_find(name) -> sid`.
    ///
    /// # Errors
    ///
    /// [`SjError::NotFound`] if no segment has that name.
    pub fn seg_find(&mut self, name: &str) -> SjResult<SegId> {
        // As vas_find: no calling pid, billed to the boot core.
        self.kernel.charge_entry();
        self.seg_names.get(name).copied().ok_or(SjError::NotFound)
    }

    /// `seg_clone(sid) -> sid`: deep-copies a segment (contents and
    /// metadata) so permissions can be changed independently.
    ///
    /// # Errors
    ///
    /// Permission and allocation failures.
    pub fn seg_clone(&mut self, pid: Pid, sid: SegId, new_name: &str) -> SjResult<SegId> {
        self.kernel.charge_entry_on(self.ctx(pid));
        let creds = self.kernel.process(pid)?.creds();
        let (base, size, mode, src_obj) = {
            let s = self.segment(sid)?;
            if !s.acl().allows(creds, Access::Read) {
                return Err(SjError::PermissionDenied);
            }
            (s.base(), s.size(), s.acl().mode(), s.object())
        };
        if self.seg_names.contains_key(new_name) {
            return Err(SjError::NameTaken(new_name.to_string()));
        }
        let new_obj = if self.kernel.vmobject(src_obj)?.is_contiguous() {
            let new_obj = self.kernel.alloc_object(size)?;
            self.kernel.vmobject_mut(new_obj)?.set_pinned(true);
            // Copy contents frame by frame.
            let (src_pa, dst_pa) = {
                let src = self.kernel.vmobject(src_obj)?.base();
                let dst = self.kernel.vmobject(new_obj)?.base();
                (src, dst)
            };
            let phys = self.kernel.phys_mut();
            let mut buf = vec![0u8; PAGE_SIZE as usize];
            for page in 0..size / PAGE_SIZE {
                phys.read_bytes(src_pa.add(page * PAGE_SIZE), &mut buf)
                    .map_err(OsError::from)?;
                phys.write_bytes(dst_pa.add(page * PAGE_SIZE), &buf)
                    .map_err(OsError::from)?;
            }
            new_obj
        } else {
            // Demand-paged (swappable) segment: duplicate page by page,
            // preserving each page's state — zero pages stay sparse,
            // evicted pages are copied swap-slot to swap-slot — so the
            // clone neither faults pages in nor disturbs memory
            // pressure. Flags mirror seg_alloc_swappable's backing.
            let new_obj = self.kernel.duplicate_paged_object(src_obj)?;
            let o = self.kernel.vmobject_mut(new_obj)?;
            o.set_preserved(true);
            o.set_swappable(true);
            o.set_owner(Some(pid));
            new_obj
        };
        let new_sid = SegId(self.next_sid);
        self.next_sid += 1;
        self.segments.insert(
            new_sid,
            Segment::new(
                new_sid,
                new_name,
                base,
                size,
                new_obj,
                Acl::new(creds, mode),
            ),
        );
        self.seg_names.insert(new_name.to_string(), new_sid);
        Ok(new_sid)
    }

    /// `seg_attach(vid, sid)`: attaches a segment **globally** to a VAS so
    /// that every attaching process sees it, mapped in `mode`.
    ///
    /// Mappings are installed in the VAS's shared template tables, so they
    /// propagate instantly to already-attached processes (Section 4.2's
    /// shared page tables).
    ///
    /// # Errors
    ///
    /// Permission failures and address conflicts within the VAS.
    pub fn seg_attach(
        &mut self,
        pid: Pid,
        vid: VasId,
        sid: SegId,
        mode: AttachMode,
    ) -> SjResult<()> {
        self.kernel.charge_entry_on(self.ctx(pid));
        let creds = self.kernel.process(pid)?.creds();
        let (base, size, object, page_size) = {
            let seg = self.segment(sid)?;
            if !seg.acl().allows(creds, mode.required_access()) {
                return Err(SjError::PermissionDenied);
            }
            (seg.base(), seg.size(), seg.object(), seg.page_size())
        };
        {
            let v = self.vas(vid)?;
            if !v.acl().allows(creds, Access::Write) {
                return Err(SjError::PermissionDenied);
            }
            if v.segment_mode(sid).is_some() {
                return Err(SjError::Busy("segment already attached to this VAS"));
            }
            // Address-conflict check against segments already in the VAS.
            for (other, _) in v.segments() {
                let o = self.segment(*other)?;
                if base < o.end() && o.base() < base.add(size) {
                    return Err(SjError::AddressConflict(format!(
                        "segment {sid:?} overlaps {other:?} in VAS {vid:?}"
                    )));
                }
            }
        }
        // Map into the template tables.
        let template_root = self.vas(vid)?.template_root();
        let flags = attach_flags(mode);
        if self.kernel.vmobject(object)?.is_contiguous() {
            let pa = self.kernel.vmobject(object)?.base();
            let backend = self.kernel.backend().clone();
            backend
                .map_region(
                    self.kernel.phys_mut(),
                    template_root,
                    base,
                    pa,
                    size,
                    page_size,
                    flags,
                )
                .map_err(OsError::from)?;
        } else {
            // Demand-paged (swappable) segment: there is nothing to map
            // yet — leaves are installed by the major-fault path as pages
            // materialize. Populate the PML4 slot(s) so subtree sharing
            // has a tree to link, and register the template root so the
            // reclaimer can clear evicted leaves once for every process
            // sharing this tree.
            let first = base.pml4_index();
            let last = base.add(size - 1).pml4_index();
            let backend = self.kernel.backend().clone();
            for slot in first..=last {
                backend
                    .ensure_root_slot(self.kernel.phys_mut(), template_root, slot)
                    .map_err(OsError::from)?;
            }
            self.kernel
                .register_external_mapping(object, template_root, base);
        }
        self.segment_mut(sid)?.add_attach();
        self.vas_mut(vid)?.add_segment(sid, mode);
        // Propagate to attached processes: link any new PML4 slots and
        // record the region for bookkeeping.
        let spaces: Vec<VmspaceId> = {
            let v = self.vas(vid)?;
            v.attached_pids()
                .filter_map(|p| v.handle_of(p))
                .filter_map(|h| self.attachments.get(&h).map(|a| a.vmspace))
                .collect()
        };
        let ctx = self.ctx(pid);
        for space in spaces {
            self.link_segment(ctx, space, template_root, sid, mode)?;
        }
        self.kernel.tracer().instant(
            self.now_on(ctx),
            ctx.core as u32,
            EventKind::SegAttach,
            sid.0,
            vid.0,
        );
        Ok(())
    }

    /// `seg_attach(vh, sid)`: attaches a segment **process-locally** into
    /// one attachment's vmspace (the paper's `vh` variant; RedisJMP uses
    /// this for per-client scratch heaps).
    ///
    /// # Errors
    ///
    /// As the global variant, plus [`SjError::AddressConflict`] if the
    /// segment's PML4 slot is occupied by a shared subtree.
    pub fn seg_attach_local(
        &mut self,
        pid: Pid,
        vh: VasHandle,
        sid: SegId,
        mode: AttachMode,
    ) -> SjResult<()> {
        self.kernel.charge_entry_on(self.ctx(pid));
        let att = self.attachment(vh)?.clone();
        if att.pid != pid {
            return Err(SjError::BadHandle);
        }
        let creds = self.kernel.process(pid)?.creds();
        let (base, size, object) = {
            let seg = self.segment(sid)?;
            if !seg.acl().allows(creds, mode.required_access()) {
                return Err(SjError::PermissionDenied);
            }
            (seg.base(), seg.size(), seg.object())
        };
        // The segment must not fall into a PML4 slot shared with the VAS
        // template: private mappings in shared subtrees would leak to
        // other processes.
        {
            let vs = self.kernel.vmspace(att.vmspace)?;
            let first = base.pml4_index();
            let last = base.add(size - 1).pml4_index();
            for slot in first..=last {
                if vs.shared_slots().contains(&slot) {
                    return Err(SjError::AddressConflict(format!(
                        "PML4 slot {slot} is shared with the VAS template"
                    )));
                }
            }
        }
        let flags = attach_flags(mode);
        self.kernel
            .map_object(
                att.vmspace,
                object,
                base,
                0,
                size,
                flags,
                MapPolicy::Eager,
                None,
            )
            .map_err(|e| match e {
                OsError::Mem(sjmp_mem::MemError::AlreadyMapped(va)) => {
                    SjError::AddressConflict(format!("address {va} already mapped"))
                }
                other => SjError::Os(other),
            })?;
        self.segment_mut(sid)?.add_attach();
        self.attachments
            .get_mut(&vh)
            .expect("validated above")
            .local_segments
            .push((sid, mode));
        Ok(())
    }

    /// `seg_detach(vid, sid)`: removes a global segment from a VAS. The
    /// translations vanish from every attached process (shared subtree),
    /// with a TLB shootdown.
    ///
    /// # Errors
    ///
    /// Permission failures; [`SjError::Busy`] if the segment's lock is
    /// held by anyone switched into this VAS.
    pub fn seg_detach(&mut self, pid: Pid, vid: VasId, sid: SegId) -> SjResult<()> {
        self.kernel.charge_entry_on(self.ctx(pid));
        let creds = self.kernel.process(pid)?.creds();
        {
            let v = self.vas(vid)?;
            if !v.acl().allows(creds, Access::Write) {
                return Err(SjError::PermissionDenied);
            }
            if v.segment_mode(sid).is_none() {
                return Err(SjError::NotFound);
            }
        }
        if !self.segment(sid)?.lock().is_free() {
            return Err(SjError::Busy("segment lock held"));
        }
        let (base, size, object) = {
            let s = self.segment(sid)?;
            (s.base(), s.size(), s.object())
        };
        let template_root = self.vas(vid)?.template_root();
        let backend = self.kernel.backend().clone();
        backend
            .unmap_region(self.kernel.phys_mut(), template_root, base, size)
            .map_err(OsError::from)?;
        self.kernel
            .unregister_external_mapping(object, template_root);
        self.kernel.flush_all_tlbs();
        self.vas_mut(vid)?.remove_segment(sid);
        self.segment_mut(sid)?.drop_attach();
        // Remove bookkeeping regions from attached vmspaces.
        let spaces: Vec<VmspaceId> = {
            let v = self.vas(vid)?;
            v.attached_pids()
                .filter_map(|p| v.handle_of(p))
                .filter_map(|h| self.attachments.get(&h).map(|a| a.vmspace))
                .collect()
        };
        for space in spaces {
            if self
                .kernel
                .vmspace_mut(space)?
                .remove_region(base)
                .is_some()
            {
                let obj = self.segment(sid)?.object();
                self.kernel.vmobject_mut(obj)?.drop_ref();
            }
        }
        Ok(())
    }

    /// `seg_ctl(sid, cmd)`.
    ///
    /// # Errors
    ///
    /// Permission failures; [`SjError::Busy`] destroying an attached or
    /// locked segment.
    pub fn seg_ctl(&mut self, pid: Pid, sid: SegId, cmd: SegCtl) -> SjResult<()> {
        self.kernel.charge_entry_on(self.ctx(pid));
        let creds = self.kernel.process(pid)?.creds();
        {
            let s = self.segment(sid)?;
            let owner = s.acl().owner();
            if creds.uid != 0 && creds.uid != owner.uid {
                return Err(SjError::PermissionDenied);
            }
        }
        match cmd {
            SegCtl::SetMode(mode) => self.segment_mut(sid)?.acl_mut().set_mode(mode),
            SegCtl::SetLockable(lockable) => self.segment_mut(sid)?.set_lockable(lockable),
            SegCtl::Destroy => {
                {
                    let s = self.segment(sid)?;
                    if s.attach_count() > 0 {
                        return Err(SjError::Busy("segment attached to a VAS"));
                    }
                    if !s.lock().is_free() {
                        return Err(SjError::Busy("segment lock held"));
                    }
                }
                let s = self.segments.remove(&sid).expect("checked above");
                self.seg_names.remove(s.name());
                self.kernel.free_object(s.object())?;
            }
        }
        Ok(())
    }

    // ---- helpers ----------------------------------------------------------

    /// The hardware thread `pid` executes on (its pinned core), falling
    /// back to the boot core when the process is unknown (e.g. already
    /// mid-reap) — the caller still needs a truthful core to charge and
    /// stamp.
    fn ctx(&self, pid: Pid) -> CoreCtx {
        self.kernel.ctx_of(pid).unwrap_or(CoreCtx::BOOT)
    }

    /// Core `ctx`'s current cycle count (trace timestamps must come from
    /// the clock of the core an event is stamped with).
    fn now_on(&self, ctx: CoreCtx) -> u64 {
        self.kernel.clocks().now_on(ctx.core)
    }

    /// Maps the process's private regions (text/data/stack/heap) into a
    /// new vmspace instance — the runtime-library bookkeeping of
    /// Section 4.1.
    fn remap_private_regions(&mut self, pid: Pid, space: VmspaceId) -> SjResult<()> {
        let initial = self.kernel.process(pid)?.initial_space();
        let regions: Vec<Region> = self
            .kernel
            .vmspace(initial)?
            .regions()
            .filter(|r| r.start < PRIVATE_HI)
            .cloned()
            .collect();
        for r in regions {
            self.kernel.map_object(
                space,
                r.object,
                r.start,
                r.object_offset,
                r.len,
                r.flags,
                MapPolicy::Eager,
                None,
            )?;
        }
        Ok(())
    }

    /// Links a segment's shared subtrees into a process vmspace and
    /// records the region.
    fn link_segment(
        &mut self,
        ctx: CoreCtx,
        space: VmspaceId,
        template_root: sjmp_mem::Pfn,
        sid: SegId,
        mode: AttachMode,
    ) -> SjResult<()> {
        let (base, size, object, slots) = {
            let s = self.segment(sid)?;
            (
                s.base(),
                s.size(),
                s.object(),
                s.pml4_slots().collect::<Vec<_>>(),
            )
        };
        let root = self.kernel.vmspace(space)?.root();
        let backend = self.kernel.backend().clone();
        for slot in slots {
            backend
                .link_subtree(self.kernel.phys_mut(), root, template_root, slot)
                .map_err(OsError::from)?;
            self.kernel.vmspace_mut(space)?.mark_shared_slot(slot);
            let splice = self.kernel.cost().table_splice;
            self.kernel.clocks().advance(ctx.core, splice);
        }
        let vs = self.kernel.vmspace_mut(space)?;
        vs.insert_region(Region {
            start: base,
            len: size,
            object,
            object_offset: 0,
            flags: attach_flags(mode),
            policy: MapPolicy::Lazy,
        })
        .map_err(OsError::from)?;
        self.kernel.vmobject_mut(object)?.add_ref();
        Ok(())
    }

    /// The mode in which `pid`'s *current* VAS maps `sid`, if it does
    /// (used during rollback to restore held locks).
    fn previous_mode(&self, pid: Pid, sid: SegId) -> Option<AttachMode> {
        let vh = self.current.get(&pid)?;
        let att = self.attachments.get(vh)?;
        if let Some((_, m)) = att.local_segments.iter().find(|(s, _)| *s == sid) {
            return Some(*m);
        }
        self.vases.get(&att.vid).and_then(|v| v.segment_mode(sid))
    }

    /// Releases locks held for the current VAS, except those in `keep`.
    fn release_current_locks(&mut self, pid: Pid, keep: &[(SegId, AttachMode)]) -> SjResult<()> {
        let Some(vh) = self.current.get(&pid).copied() else {
            return Ok(());
        };
        let Some(att) = self.attachments.get(&vh).cloned() else {
            return Ok(());
        };
        let ctx = self.ctx(pid);
        let tracer = self.kernel.tracer().clone();
        let mut held: Vec<SegId> = Vec::new();
        if let Some(v) = self.vases.get(&att.vid) {
            held.extend(v.segments().iter().map(|(s, _)| *s));
        }
        held.extend(att.local_segments.iter().map(|(s, _)| *s));
        for sid in held {
            if keep.iter().any(|(k, _)| *k == sid) {
                continue;
            }
            if let Some(seg) = self.segments.get_mut(&sid) {
                let lock = seg.lock_mut();
                let held = lock.writer() == Some(pid) || lock.readers().contains(&pid);
                lock.release(pid);
                if held {
                    tracer.instant(
                        self.now_on(ctx),
                        ctx.core as u32,
                        EventKind::LockRelease,
                        sid.0,
                        pid.0,
                    );
                }
            }
        }
        Ok(())
    }
}

/// Leaf PTE flags for a segment mapped in `mode`.
fn attach_flags(mode: AttachMode) -> PteFlags {
    match mode {
        AttachMode::ReadOnly => PteFlags::USER | PteFlags::NO_EXECUTE,
        AttachMode::ReadWrite => PteFlags::USER | PteFlags::WRITABLE | PteFlags::NO_EXECUTE,
    }
}
