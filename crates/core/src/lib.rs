//! # spacejmp-core — first-class virtual address spaces
//!
//! This crate implements the primary contribution of *SpaceJMP:
//! Programming with Multiple Virtual Address Spaces* (ASPLOS 2016) over
//! the simulated kernel of [`sjmp_os`]:
//!
//! * **Virtual address spaces as first-class objects** ([`vas::Vas`]):
//!   created, named, cloned, and destroyed independently of processes; a
//!   VAS can outlive its creator and be attached by many processes at
//!   once.
//! * **Lockable segments** ([`segment::Segment`]): contiguous,
//!   fixed-address, physically-backed memory regions that are the unit of
//!   sharing and protection. Switching into a VAS acquires each lockable
//!   segment's reader/writer lock in the mode the VAS maps it (read-only
//!   mapped segments are acquired shared, writable ones exclusive).
//! * **The Figure 3 API** ([`spacejmp::SpaceJmp`]): `vas_create`,
//!   `vas_find`, `vas_clone`, `vas_attach`, `vas_detach`, `vas_switch`,
//!   `vas_ctl`, `seg_alloc`, `seg_find`, `seg_clone`, `seg_attach`,
//!   `seg_detach`, `seg_ctl`.
//! * **VAS-aware heap allocation** ([`heap`]): `malloc`/`free` backed by
//!   per-segment allocator state, following the dlmalloc `mspace` design
//!   of Section 4.1.
//!
//! Attachment instantiates a per-process `vmspace` whose root page table
//! links the VAS's shared template subtrees (the Barrelfish design), so
//! segment attach/detach propagates to every attached process, and
//! switching is a CR3 reload plus lock acquisition — the cycle costs of
//! the paper's Table 2 are reproduced exactly.
//!
//! See the crate-level example on [`spacejmp::SpaceJmp`] for the Figure 4
//! usage pattern.

pub mod error;
pub mod heap;
pub mod image;
pub mod segment;
pub mod spacejmp;
pub mod vas;

pub use error::{SjError, SjResult};
pub use heap::VasHeap;
pub use image::{Catalog, SegmentImage, VasImage};
pub use segment::{AttachMode, SegId, Segment};
pub use spacejmp::{MemTier, RetryPolicy, SegCtl, SjStats, SpaceJmp, VasCtl};
pub use vas::{Attachment, Vas, VasHandle, VasId};
