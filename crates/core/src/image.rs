//! On-disk image formats for durable VASes.
//!
//! Two self-describing little-endian formats, both deliberately free of
//! in-memory pointers so an image decoded on a freshly booted machine
//! reconstructs byte-identical state:
//!
//! * **Catalog** (`SJMPCAT1`) — the snapshot disk's single payload: a
//!   name → bytes map holding one encoded [`VasImage`] per saved VAS.
//!   Entries keep insertion order and `vas_save` replaces in place, so
//!   repeated saves produce deterministic bytes (no hash-order leaks).
//! * **VAS image** (`SJMPVAS1`) — one VAS: its permission mode plus
//!   every attached segment's geometry, flags, and a *sparse* page
//!   list. Zero pages are elided, which is what makes the snapshot a
//!   copy-on-write-friendly image rather than a raw core dump: a
//!   mostly-empty 1 GiB segment costs a few blocks, not a gigabyte.
//!
//! Integrity is the block layer's job: the snapshot store checksums the
//! whole payload into its journal record and superblock, so decoding
//! here only validates structure (magic, lengths) and reports corruption
//! as `None` rather than panicking.

use sjmp_mem::PAGE_SIZE;

/// Magic prefix of an encoded [`Catalog`].
pub const CATALOG_MAGIC: &[u8; 8] = b"SJMPCAT1";
/// Magic prefix of an encoded [`VasImage`].
pub const VAS_MAGIC: &[u8; 8] = b"SJMPVAS1";

/// The snapshot disk's payload: an ordered name → bytes map of saved
/// VAS images.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Catalog {
    entries: Vec<(String, Vec<u8>)>,
}

impl Catalog {
    /// An empty catalog (the state of a never-written disk).
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Decodes a catalog payload. Empty input is the empty catalog
    /// (a fresh disk reads back zero bytes); anything else must carry
    /// the magic and well-formed entries.
    pub fn decode(bytes: &[u8]) -> Option<Catalog> {
        if bytes.is_empty() {
            return Some(Catalog::new());
        }
        let mut r = Reader::new(bytes);
        if r.take(8)? != CATALOG_MAGIC {
            return None;
        }
        let count = r.u32()?;
        let mut entries = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let name = r.string()?;
            let len = r.u64()?;
            let data = r.take(len as usize)?.to_vec();
            entries.push((name, data));
        }
        Some(Catalog { entries })
    }

    /// Serializes the catalog: magic, entry count, then each entry in
    /// insertion order.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(CATALOG_MAGIC);
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for (name, data) in &self.entries {
            put_string(&mut out, name);
            out.extend_from_slice(&(data.len() as u64).to_le_bytes());
            out.extend_from_slice(data);
        }
        out
    }

    /// The entry named `name`, if present.
    pub fn get(&self, name: &str) -> Option<&[u8]> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| d.as_slice())
    }

    /// Inserts or replaces the entry named `name`, preserving its
    /// position when replacing (deterministic re-save).
    pub fn upsert(&mut self, name: &str, data: Vec<u8>) {
        match self.entries.iter_mut().find(|(n, _)| n == name) {
            Some((_, d)) => *d = data,
            None => self.entries.push((name.to_string(), data)),
        }
    }

    /// Entry names in stored order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(n, _)| n.as_str())
    }

    /// Number of saved images.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog holds no images.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One segment inside a [`VasImage`]: geometry, flags, and sparse
/// contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentImage {
    /// Global segment name (`seg_find` key after restore).
    pub name: String,
    /// Fixed virtual base (raw address — part of the segment's
    /// identity, so pointers inside survive the round trip).
    pub base: u64,
    /// Size in bytes (page rounded).
    pub size: u64,
    /// Whether the VAS mapped it writable (restored attach mode).
    pub writable: bool,
    /// ACL mode bits.
    pub mode: u16,
    /// Whether switch-in takes the segment lock.
    pub lockable: bool,
    /// Whether the segment was demand-paged/swappable (restored via
    /// `seg_alloc_swappable` so it stays evictable).
    pub swappable: bool,
    /// Sparse page list: `(page_index, contents)` for every page that
    /// held nonzero bytes at save time, ascending by index.
    pub pages: Vec<(u64, Vec<u8>)>,
}

/// A serialized VAS: permission mode plus its segments in attachment
/// order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VasImage {
    /// The VAS ACL mode bits.
    pub mode: u16,
    /// Attached segments, in the VAS's attachment order.
    pub segments: Vec<SegmentImage>,
}

impl VasImage {
    /// Serializes the image.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(VAS_MAGIC);
        out.extend_from_slice(&u32::from(self.mode).to_le_bytes());
        out.extend_from_slice(&(self.segments.len() as u32).to_le_bytes());
        for seg in &self.segments {
            put_string(&mut out, &seg.name);
            out.extend_from_slice(&seg.base.to_le_bytes());
            out.extend_from_slice(&seg.size.to_le_bytes());
            out.push(u8::from(seg.writable));
            out.extend_from_slice(&u32::from(seg.mode).to_le_bytes());
            out.push(u8::from(seg.lockable));
            out.push(u8::from(seg.swappable));
            out.extend_from_slice(&(seg.pages.len() as u64).to_le_bytes());
            for (index, data) in &seg.pages {
                debug_assert_eq!(data.len() as u64, PAGE_SIZE, "pages serialize whole");
                out.extend_from_slice(&index.to_le_bytes());
                out.extend_from_slice(data);
            }
        }
        out
    }

    /// Decodes an image; `None` for structural corruption.
    pub fn decode(bytes: &[u8]) -> Option<VasImage> {
        let mut r = Reader::new(bytes);
        if r.take(8)? != VAS_MAGIC {
            return None;
        }
        let mode = u16::try_from(r.u32()?).ok()?;
        let count = r.u32()?;
        let mut segments = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let name = r.string()?;
            let base = r.u64()?;
            let size = r.u64()?;
            let writable = r.byte()? != 0;
            let seg_mode = u16::try_from(r.u32()?).ok()?;
            let lockable = r.byte()? != 0;
            let swappable = r.byte()? != 0;
            let page_count = r.u64()?;
            let mut pages = Vec::with_capacity(page_count as usize);
            for _ in 0..page_count {
                let index = r.u64()?;
                let data = r.take(PAGE_SIZE as usize)?.to_vec();
                pages.push((index, data));
            }
            segments.push(SegmentImage {
                name,
                base,
                size,
                writable,
                mode: seg_mode,
                lockable,
                swappable,
                pages,
            });
        }
        Some(VasImage { mode, segments })
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked cursor over an encoded image.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn byte(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn string(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        Some(std::str::from_utf8(bytes).ok()?.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image() -> VasImage {
        VasImage {
            mode: 0o660,
            segments: vec![SegmentImage {
                name: "s0".into(),
                base: 0x1000_0000_0000,
                size: 2 * PAGE_SIZE,
                writable: true,
                mode: 0o640,
                lockable: false,
                swappable: true,
                pages: vec![(1, vec![0xAB; PAGE_SIZE as usize])],
            }],
        }
    }

    #[test]
    fn vas_image_round_trips() {
        let img = image();
        let decoded = VasImage::decode(&img.encode()).expect("valid image");
        assert_eq!(decoded, img);
    }

    #[test]
    fn catalog_round_trips_and_upserts_in_place() {
        let mut cat = Catalog::new();
        cat.upsert("a", vec![1, 2, 3]);
        cat.upsert("b", vec![4]);
        cat.upsert("a", vec![9, 9]);
        assert_eq!(cat.names().collect::<Vec<_>>(), vec!["a", "b"]);
        assert_eq!(cat.get("a"), Some(&[9u8, 9][..]));
        let decoded = Catalog::decode(&cat.encode()).expect("valid catalog");
        assert_eq!(decoded, cat);
        // Re-encoding is byte-stable (determinism gate relies on it).
        assert_eq!(decoded.encode(), cat.encode());
    }

    #[test]
    fn empty_payload_is_empty_catalog() {
        assert_eq!(Catalog::decode(&[]), Some(Catalog::new()));
    }

    #[test]
    fn corrupt_images_decode_to_none() {
        assert_eq!(VasImage::decode(b"SJMPVAS1"), None, "truncated header");
        assert_eq!(VasImage::decode(b"WRONGMAG"), None, "bad magic");
        let mut bytes = image().encode();
        bytes.truncate(bytes.len() - 1);
        assert_eq!(VasImage::decode(&bytes), None, "truncated page");
        assert_eq!(Catalog::decode(b"XX"), None, "garbage catalog");
    }
}
