//! First-class virtual address spaces.
//!
//! A [`Vas`] is an OS object independent of any process (Section 3.2): it
//! is created and named globally, holds a set of attached segments, can be
//! attached by many processes, and "can also continue to exist beyond the
//! lifetime of its creating process."
//!
//! Concretely, a VAS owns a **template page table** containing the
//! translations of its globally attached segments. Attaching a process
//! instantiates a private `vmspace` whose root links the template's
//! subtrees (so updates propagate to all attached processes — the
//! Barrelfish design of Section 4.2) plus the process's own private
//! segments. Switching loads that vmspace's root into CR3.

use std::collections::HashMap;

use sjmp_mem::Pfn;
use sjmp_os::{Acl, Pid, VmspaceId};

use crate::segment::{AttachMode, SegId};

/// VAS identifier (the `vid` of the Figure 3 API).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VasId(pub u64);

/// Handle to one process's attachment of a VAS (the `vh` of Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VasHandle(pub u64);

/// One process's attachment state for a VAS.
#[derive(Debug, Clone)]
pub struct Attachment {
    /// Owning process.
    pub pid: Pid,
    /// The attached VAS.
    pub vid: VasId,
    /// The per-process vmspace instance for this VAS.
    pub vmspace: VmspaceId,
    /// Segments attached process-locally through this handle
    /// (`seg_attach(vh, sid)`), as opposed to the VAS's global set.
    pub local_segments: Vec<(SegId, AttachMode)>,
    /// Barrelfish flavor: the capability to this attachment's root page
    /// table ("Upon attaching to a VAS, a process obtains a new
    /// capability to a root page table", Section 4.2). Switching is the
    /// invocation of this capability; revoking it bars the process from
    /// the VAS.
    pub root_cap: Option<sjmp_os::CapSlot>,
}

/// A first-class virtual address space.
#[derive(Debug)]
pub struct Vas {
    vid: VasId,
    name: String,
    acl: Acl,
    template_root: Pfn,
    segments: Vec<(SegId, AttachMode)>,
    /// pid -> attachment handle (a process attaches a VAS at most once).
    attached: HashMap<Pid, VasHandle>,
    /// Whether a TLB tag was requested via `vas_ctl`.
    tag_requested: bool,
}

impl Vas {
    /// Creates an empty VAS whose template root has been allocated.
    pub fn new(vid: VasId, name: impl Into<String>, acl: Acl, template_root: Pfn) -> Self {
        Vas {
            vid,
            name: name.into(),
            acl,
            template_root,
            segments: Vec::new(),
            attached: HashMap::new(),
            tag_requested: false,
        }
    }

    /// The VAS id.
    pub fn vid(&self) -> VasId {
        self.vid
    }

    /// The global name (`vas_find` key).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Access-control list.
    pub fn acl(&self) -> &Acl {
        &self.acl
    }

    /// Mutable ACL (`vas_ctl` permission changes).
    pub fn acl_mut(&mut self) -> &mut Acl {
        &mut self.acl
    }

    /// Root of the shared template page table.
    pub fn template_root(&self) -> Pfn {
        self.template_root
    }

    /// Globally attached segments with their mapping modes.
    pub fn segments(&self) -> &[(SegId, AttachMode)] {
        &self.segments
    }

    /// The mode a segment is mapped with, if attached.
    pub fn segment_mode(&self, sid: SegId) -> Option<AttachMode> {
        self.segments
            .iter()
            .find(|(s, _)| *s == sid)
            .map(|(_, m)| *m)
    }

    /// Records a global segment attachment.
    pub fn add_segment(&mut self, sid: SegId, mode: AttachMode) {
        debug_assert!(self.segment_mode(sid).is_none());
        self.segments.push((sid, mode));
    }

    /// Removes a global segment attachment; returns whether it existed.
    pub fn remove_segment(&mut self, sid: SegId) -> bool {
        let before = self.segments.len();
        self.segments.retain(|(s, _)| *s != sid);
        before != self.segments.len()
    }

    /// Processes currently attached.
    pub fn attached_pids(&self) -> impl Iterator<Item = Pid> + '_ {
        self.attached.keys().copied()
    }

    /// Number of attached processes.
    pub fn attach_count(&self) -> usize {
        self.attached.len()
    }

    /// The handle `pid` attached with, if attached.
    pub fn handle_of(&self, pid: Pid) -> Option<VasHandle> {
        self.attached.get(&pid).copied()
    }

    /// Records a process attachment.
    pub fn add_attachment(&mut self, pid: Pid, handle: VasHandle) {
        self.attached.insert(pid, handle);
    }

    /// Removes a process attachment.
    pub fn remove_attachment(&mut self, pid: Pid) {
        self.attached.remove(&pid);
    }

    /// Whether a TLB tag was requested for this VAS.
    pub fn tag_requested(&self) -> bool {
        self.tag_requested
    }

    /// Requests (or clears) TLB tagging for this VAS.
    pub fn set_tag_requested(&mut self, requested: bool) {
        self.tag_requested = requested;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjmp_os::{Creds, Mode};

    fn vas() -> Vas {
        Vas::new(
            VasId(1),
            "v0",
            Acl::new(Creds::new(1, 1), Mode(0o660)),
            Pfn(7),
        )
    }

    #[test]
    fn segment_bookkeeping() {
        let mut v = vas();
        v.add_segment(SegId(1), AttachMode::ReadWrite);
        v.add_segment(SegId(2), AttachMode::ReadOnly);
        assert_eq!(v.segment_mode(SegId(1)), Some(AttachMode::ReadWrite));
        assert_eq!(v.segment_mode(SegId(3)), None);
        assert!(v.remove_segment(SegId(1)));
        assert!(!v.remove_segment(SegId(1)));
        assert_eq!(v.segments().len(), 1);
    }

    #[test]
    fn attachment_bookkeeping() {
        let mut v = vas();
        v.add_attachment(Pid(1), VasHandle(10));
        v.add_attachment(Pid(2), VasHandle(11));
        assert_eq!(v.attach_count(), 2);
        assert_eq!(v.handle_of(Pid(1)), Some(VasHandle(10)));
        v.remove_attachment(Pid(1));
        assert_eq!(v.handle_of(Pid(1)), None);
        let pids: Vec<_> = v.attached_pids().collect();
        assert_eq!(pids, vec![Pid(2)]);
    }

    #[test]
    fn tag_request() {
        let mut v = vas();
        assert!(!v.tag_requested());
        v.set_tag_requested(true);
        assert!(v.tag_requested());
    }

    #[test]
    fn identity() {
        let v = vas();
        assert_eq!(v.vid(), VasId(1));
        assert_eq!(v.name(), "v0");
        assert_eq!(v.template_root(), Pfn(7));
    }
}
