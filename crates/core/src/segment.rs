//! Lockable segments: the unit of sharing and protection in SpaceJMP.
//!
//! Section 3.1: "a segment is a single, contiguous area of virtual memory
//! containing code and data, with a fixed virtual start address and size,
//! together with meta-data to describe how to access the content in
//! memory. With every segment we store the backing physical frames, the
//! mapping from its virtual addresses to physical frames and the
//! associated access rights."
//!
//! A lockable segment carries a reader/writer lock acquired when a process
//! *switches into* an address space containing it: shared if the segment
//! is mapped read-only in that VAS, exclusive if mapped writable.

use sjmp_mem::{Access, PageSize, VirtAddr};
use sjmp_os::{Acl, Pid, VmObjectId};

/// Segment identifier (the `sid` of the Figure 3 API).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SegId(pub u64);

/// How a segment is mapped within a particular VAS, which decides the
/// lock mode taken on switch-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttachMode {
    /// Mapped read-only: switch-in takes the lock shared.
    ReadOnly,
    /// Mapped writable: switch-in takes the lock exclusive.
    ReadWrite,
}

impl AttachMode {
    /// The access right this mode requires from the segment's ACL.
    pub fn required_access(self) -> Access {
        match self {
            AttachMode::ReadOnly => Access::Read,
            AttachMode::ReadWrite => Access::Write,
        }
    }
}

/// Reader/writer lock state of a lockable segment. Holders are processes
/// currently switched into a VAS that maps the segment.
#[derive(Debug, Default, Clone)]
pub struct SegLock {
    readers: Vec<Pid>,
    writer: Option<Pid>,
    /// Total acquisitions, for contention reporting.
    pub acquisitions: u64,
    /// Failed (would-block) attempts.
    pub contentions: u64,
}

impl SegLock {
    /// Attempts to acquire for `pid` in `mode`. Re-entrant per process
    /// (a process already holding in a compatible mode succeeds).
    pub fn try_acquire(&mut self, pid: Pid, mode: AttachMode) -> bool {
        let ok = match mode {
            AttachMode::ReadOnly => self.writer.is_none() || self.writer == Some(pid),
            AttachMode::ReadWrite => {
                (self.writer.is_none() || self.writer == Some(pid))
                    && self.readers.iter().all(|&r| r == pid)
            }
        };
        if !ok {
            self.contentions += 1;
            return false;
        }
        match mode {
            AttachMode::ReadOnly => {
                if !self.readers.contains(&pid) {
                    self.readers.push(pid);
                }
            }
            AttachMode::ReadWrite => self.writer = Some(pid),
        }
        self.acquisitions += 1;
        true
    }

    /// Narrows `pid`'s hold to exactly `mode` (used after a switch where
    /// both the old and new VAS mapped the segment, possibly in different
    /// modes).
    ///
    /// # Panics
    ///
    /// Debug-asserts that `pid` actually holds the lock.
    pub fn downgrade_to(&mut self, pid: Pid, mode: AttachMode) {
        debug_assert!(self.held_by(pid), "downgrade without hold");
        match mode {
            AttachMode::ReadOnly => {
                if self.writer == Some(pid) {
                    self.writer = None;
                }
                if !self.readers.contains(&pid) {
                    self.readers.push(pid);
                }
            }
            AttachMode::ReadWrite => {
                self.readers.retain(|&r| r != pid);
                debug_assert_eq!(self.writer, Some(pid));
            }
        }
    }

    /// Releases whatever `pid` holds.
    pub fn release(&mut self, pid: Pid) {
        self.readers.retain(|&r| r != pid);
        if self.writer == Some(pid) {
            self.writer = None;
        }
    }

    /// Whether `pid` holds the lock in any mode.
    pub fn held_by(&self, pid: Pid) -> bool {
        self.writer == Some(pid) || self.readers.contains(&pid)
    }

    /// Current reader count.
    pub fn reader_count(&self) -> usize {
        self.readers.len()
    }

    /// Processes holding the lock shared (waits-for-graph construction).
    pub fn readers(&self) -> &[Pid] {
        &self.readers
    }

    /// The writer, if any.
    pub fn writer(&self) -> Option<Pid> {
        self.writer
    }

    /// Whether nobody holds the lock.
    pub fn is_free(&self) -> bool {
        self.writer.is_none() && self.readers.is_empty()
    }
}

/// A SpaceJMP segment.
#[derive(Debug)]
pub struct Segment {
    sid: SegId,
    name: String,
    base: VirtAddr,
    size: u64,
    object: VmObjectId,
    acl: Acl,
    lockable: bool,
    lock: SegLock,
    /// Number of VASes this segment is attached to.
    attach_count: u64,
    /// Page size used when mapping this segment into template trees.
    /// Base pages unless the segment was created with
    /// `seg_alloc_sized`; superpage segments must have naturally
    /// aligned base, size, and backing.
    page_size: PageSize,
}

impl Segment {
    /// Creates a segment descriptor over an allocated VM object.
    pub fn new(
        sid: SegId,
        name: impl Into<String>,
        base: VirtAddr,
        size: u64,
        object: VmObjectId,
        acl: Acl,
    ) -> Self {
        Segment {
            sid,
            name: name.into(),
            base,
            size,
            object,
            acl,
            lockable: true,
            lock: SegLock::default(),
            attach_count: 0,
            page_size: PageSize::default(),
        }
    }

    /// The page size this segment maps at.
    pub fn page_size(&self) -> PageSize {
        self.page_size
    }

    /// Sets the mapping page size (builder-style; used by
    /// `seg_alloc_sized` after validating alignment).
    pub fn with_page_size(mut self, page_size: PageSize) -> Self {
        self.page_size = page_size;
        self
    }

    /// Sets the mapping page size in place.
    pub fn set_page_size(&mut self, page_size: PageSize) {
        self.page_size = page_size;
    }

    /// The segment id.
    pub fn sid(&self) -> SegId {
        self.sid
    }

    /// The global name (`seg_find` key).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Fixed virtual start address.
    pub fn base(&self) -> VirtAddr {
        self.base
    }

    /// Size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// One past the last byte.
    pub fn end(&self) -> VirtAddr {
        self.base.add(self.size)
    }

    /// Backing VM object.
    pub fn object(&self) -> VmObjectId {
        self.object
    }

    /// Access-control list.
    pub fn acl(&self) -> &Acl {
        &self.acl
    }

    /// Mutable ACL (for `seg_ctl` permission changes).
    pub fn acl_mut(&mut self) -> &mut Acl {
        &mut self.acl
    }

    /// Whether switch-in must take this segment's lock.
    pub fn lockable(&self) -> bool {
        self.lockable
    }

    /// Marks the segment lockable or not (`seg_ctl`). Non-lockable
    /// segments are for data the application synchronizes itself.
    pub fn set_lockable(&mut self, lockable: bool) {
        self.lockable = lockable;
    }

    /// The lock state.
    pub fn lock(&self) -> &SegLock {
        &self.lock
    }

    /// Mutable lock state (the switch path).
    pub fn lock_mut(&mut self) -> &mut SegLock {
        &mut self.lock
    }

    /// PML4 slots (level-4 indices) this segment's address range spans;
    /// used for page-table subtree sharing.
    pub fn pml4_slots(&self) -> impl Iterator<Item = usize> {
        let first = self.base.pml4_index();
        let last = self.base.add(self.size - 1).pml4_index();
        first..=last
    }

    /// Records attachment to one more VAS.
    pub fn add_attach(&mut self) {
        self.attach_count += 1;
    }

    /// Records detachment; returns the remaining count.
    pub fn drop_attach(&mut self) -> u64 {
        self.attach_count = self.attach_count.saturating_sub(1);
        self.attach_count
    }

    /// Number of VASes currently attaching this segment.
    pub fn attach_count(&self) -> u64 {
        self.attach_count
    }

    /// Whether `[base, base+size)` overlaps `other`.
    pub fn overlaps(&self, other: &Segment) -> bool {
        self.base < other.end() && other.base < self.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjmp_os::{Creds, Mode};

    fn seg(base: u64, size: u64) -> Segment {
        Segment::new(
            SegId(1),
            "s",
            VirtAddr::new(base),
            size,
            VmObjectId(1),
            Acl::new(Creds::new(1, 1), Mode(0o660)),
        )
    }

    #[test]
    fn lock_shared_readers() {
        let mut l = SegLock::default();
        assert!(l.try_acquire(Pid(1), AttachMode::ReadOnly));
        assert!(l.try_acquire(Pid(2), AttachMode::ReadOnly));
        assert_eq!(l.reader_count(), 2);
        assert!(
            !l.try_acquire(Pid(3), AttachMode::ReadWrite),
            "readers block writer"
        );
        assert_eq!(l.contentions, 1);
        l.release(Pid(1));
        l.release(Pid(2));
        assert!(l.try_acquire(Pid(3), AttachMode::ReadWrite));
        assert_eq!(l.writer(), Some(Pid(3)));
    }

    #[test]
    fn lock_writer_excludes_all() {
        let mut l = SegLock::default();
        assert!(l.try_acquire(Pid(1), AttachMode::ReadWrite));
        assert!(!l.try_acquire(Pid(2), AttachMode::ReadOnly));
        assert!(!l.try_acquire(Pid(2), AttachMode::ReadWrite));
        l.release(Pid(1));
        assert!(l.is_free());
        assert!(l.try_acquire(Pid(2), AttachMode::ReadOnly));
    }

    #[test]
    fn lock_reentrant_same_process() {
        let mut l = SegLock::default();
        assert!(l.try_acquire(Pid(1), AttachMode::ReadWrite));
        assert!(
            l.try_acquire(Pid(1), AttachMode::ReadOnly),
            "own writer may read"
        );
        assert!(
            l.try_acquire(Pid(1), AttachMode::ReadWrite),
            "re-acquire own write"
        );
        assert!(l.held_by(Pid(1)));
        l.release(Pid(1));
        assert!(l.is_free(), "release drops all of a process's holds");
    }

    #[test]
    fn reader_upgrade_only_when_sole_reader() {
        let mut l = SegLock::default();
        assert!(l.try_acquire(Pid(1), AttachMode::ReadOnly));
        assert!(
            l.try_acquire(Pid(1), AttachMode::ReadWrite),
            "sole reader upgrades"
        );
        let mut l2 = SegLock::default();
        assert!(l2.try_acquire(Pid(1), AttachMode::ReadOnly));
        assert!(l2.try_acquire(Pid(2), AttachMode::ReadOnly));
        assert!(
            !l2.try_acquire(Pid(1), AttachMode::ReadWrite),
            "other readers block upgrade"
        );
    }

    #[test]
    fn attach_mode_required_access() {
        assert_eq!(AttachMode::ReadOnly.required_access(), Access::Read);
        assert_eq!(AttachMode::ReadWrite.required_access(), Access::Write);
    }

    #[test]
    fn segment_geometry() {
        let s = seg(0x1000_0000_0000, 2 << 20);
        assert_eq!(s.end().raw(), 0x1000_0000_0000 + (2 << 20));
        assert_eq!(s.pml4_slots().collect::<Vec<_>>(), vec![32]);
        // A segment spanning a 512 GiB boundary covers two slots.
        let s2 = seg((1 << 39) - 4096, 8192);
        assert_eq!(s2.pml4_slots().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn overlap_detection() {
        let a = seg(0x1000, 0x1000);
        let b = seg(0x1800, 0x1000);
        let c = seg(0x2000, 0x1000);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&c));
    }

    #[test]
    fn attach_counting() {
        let mut s = seg(0, 4096);
        s.add_attach();
        s.add_attach();
        assert_eq!(s.attach_count(), 2);
        assert_eq!(s.drop_attach(), 1);
        assert_eq!(s.drop_attach(), 0);
        assert_eq!(s.drop_attach(), 0);
    }

    #[test]
    fn lockable_toggle() {
        let mut s = seg(0, 4096);
        assert!(s.lockable());
        s.set_lockable(false);
        assert!(!s.lockable());
    }

    #[test]
    fn page_size_defaults_to_base_and_is_builder_settable() {
        let s = seg(0, 4096);
        assert_eq!(s.page_size(), PageSize::Size4K);
        let s2 = seg(0x4000_0000, 2 << 20).with_page_size(PageSize::Size2M);
        assert_eq!(s2.page_size(), PageSize::Size2M);
    }
}
