//! VAS-aware heap allocation: dlmalloc-style mspaces inside segments.
//!
//! Section 4.1: the runtime "provides allocation of heap space (malloc)
//! within a specific segment while inside an address space", built over
//! dlmalloc mspaces with "wrapper functions for malloc and free which
//! supply the correct mspace instance ... depending on the currently
//! active address space and segment."
//!
//! [`VasHeap`] binds an [`sjmp_alloc::Mspace`] to a SpaceJMP segment. The
//! allocator state lives in the segment itself, so:
//!
//! * any process switched into a VAS mapping the segment writable can
//!   allocate and free;
//! * the heap — including every pointer into it — survives process exit,
//!   which is exactly what the SAMTools experiment exploits to keep
//!   pointer-rich data structures live between tool invocations.

use sjmp_alloc::{AllocError, MemAccess, Mspace};
use sjmp_mem::VirtAddr;
use sjmp_os::{Kernel, Pid};

use crate::error::{SjError, SjResult};
use crate::segment::SegId;
use crate::spacejmp::SpaceJmp;

/// [`MemAccess`] over a virtual range of a process's current address
/// space: every allocator word access becomes a simulated load/store
/// through the MMU (and is charged cycles accordingly).
struct KernelMem<'a> {
    kernel: &'a mut Kernel,
    pid: Pid,
    base: VirtAddr,
    size: u64,
}

impl MemAccess for KernelMem<'_> {
    fn size(&self) -> u64 {
        self.size
    }

    fn read_u64(&mut self, offset: u64) -> u64 {
        assert!(
            offset + 8 <= self.size,
            "allocator access out of segment bounds"
        );
        self.kernel
            .load_u64(self.pid, self.base.add(offset))
            .expect("heap segment must be mapped in the current VAS")
    }

    fn write_u64(&mut self, offset: u64, value: u64) {
        assert!(
            offset + 8 <= self.size,
            "allocator access out of segment bounds"
        );
        self.kernel
            .store_u64(self.pid, self.base.add(offset), value)
            .expect("heap segment must be mapped writable in the current VAS")
    }
}

/// A heap living inside a SpaceJMP segment.
///
/// The handle itself is plain data (segment id, base, size); all state is
/// in the segment, so any number of `VasHeap` values may refer to the same
/// heap and a fresh one can be constructed after re-attaching in a new
/// process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VasHeap {
    sid: SegId,
    base: VirtAddr,
    size: u64,
}

impl VasHeap {
    /// Formats a new heap in `sid`, erasing its contents. The caller must
    /// currently be switched into a VAS mapping the segment writable.
    ///
    /// # Errors
    ///
    /// * [`SjError::NotFound`] for unknown segments.
    /// * Allocation/permission errors surfaced from the access path.
    pub fn format(sj: &mut SpaceJmp, pid: Pid, sid: SegId) -> SjResult<VasHeap> {
        let (base, size) = Self::segment_extent(sj, sid)?;
        Self::check_mapped(sj, pid, base)?;
        Mspace::format(KernelMem {
            kernel: sj.kernel_mut(),
            pid,
            base,
            size,
        })
        .map_err(alloc_err)?;
        Ok(VasHeap { sid, base, size })
    }

    /// Opens a heap previously formatted in `sid` (for example by another
    /// process).
    ///
    /// # Errors
    ///
    /// [`SjError::InvalidArgument`] if the segment holds no heap.
    pub fn open(sj: &mut SpaceJmp, pid: Pid, sid: SegId) -> SjResult<VasHeap> {
        let (base, size) = Self::segment_extent(sj, sid)?;
        Self::check_mapped(sj, pid, base)?;
        Mspace::attach(KernelMem {
            kernel: sj.kernel_mut(),
            pid,
            base,
            size,
        })
        .map_err(alloc_err)?;
        Ok(VasHeap { sid, base, size })
    }

    fn segment_extent(sj: &SpaceJmp, sid: SegId) -> SjResult<(VirtAddr, u64)> {
        let seg = sj.segment(sid)?;
        Ok((seg.base(), seg.size()))
    }

    fn check_mapped(sj: &mut SpaceJmp, pid: Pid, base: VirtAddr) -> SjResult<()> {
        let space = sj.kernel().process(pid)?.current_space();
        let vs = sj.kernel().vmspace(space)?;
        if vs.find_region(base).is_none() {
            return Err(SjError::NotAttached);
        }
        Ok(())
    }

    /// The segment hosting this heap.
    pub fn segment(&self) -> SegId {
        self.sid
    }

    /// The heap's base virtual address.
    pub fn base(&self) -> VirtAddr {
        self.base
    }

    fn mspace<'a>(&self, sj: &'a mut SpaceJmp, pid: Pid) -> SjResult<Mspace<KernelMem<'a>>> {
        Self::check_mapped(sj, pid, self.base)?;
        Mspace::attach(KernelMem {
            kernel: sj.kernel_mut(),
            pid,
            base: self.base,
            size: self.size,
        })
        .map_err(alloc_err)
    }

    /// Allocates `size` bytes; returns a virtual address valid in any
    /// address space that maps the segment.
    ///
    /// # Errors
    ///
    /// [`SjError::Os`]-wrapped out-of-memory, or [`SjError::NotAttached`]
    /// when the current VAS does not map the heap segment.
    pub fn malloc(&self, sj: &mut SpaceJmp, pid: Pid, size: u64) -> SjResult<VirtAddr> {
        let base = self.base;
        let off = self.mspace(sj, pid)?.malloc(size).map_err(alloc_err)?;
        Ok(base.add(off))
    }

    /// Allocates zeroed memory.
    ///
    /// # Errors
    ///
    /// As [`Self::malloc`].
    pub fn calloc(&self, sj: &mut SpaceJmp, pid: Pid, size: u64) -> SjResult<VirtAddr> {
        let base = self.base;
        let off = self.mspace(sj, pid)?.calloc(size).map_err(alloc_err)?;
        Ok(base.add(off))
    }

    /// Frees an allocation made from this heap.
    ///
    /// # Errors
    ///
    /// [`SjError::InvalidArgument`] for pointers outside the heap or not
    /// referencing a live allocation.
    pub fn free(&self, sj: &mut SpaceJmp, pid: Pid, ptr: VirtAddr) -> SjResult<()> {
        if ptr < self.base || ptr >= self.base.add(self.size) {
            return Err(SjError::InvalidArgument("pointer outside heap segment"));
        }
        let off = ptr.offset_from(self.base);
        self.mspace(sj, pid)?.free(off).map_err(alloc_err)
    }

    /// Resizes an allocation.
    ///
    /// # Errors
    ///
    /// As [`Self::malloc`] and [`Self::free`].
    pub fn realloc(
        &self,
        sj: &mut SpaceJmp,
        pid: Pid,
        ptr: VirtAddr,
        size: u64,
    ) -> SjResult<VirtAddr> {
        if ptr < self.base || ptr >= self.base.add(self.size) {
            return Err(SjError::InvalidArgument("pointer outside heap segment"));
        }
        let base = self.base;
        let off = ptr.offset_from(base);
        let new = self
            .mspace(sj, pid)?
            .realloc(off, size)
            .map_err(alloc_err)?;
        Ok(base.add(new))
    }

    /// Stores the heap's application root pointer (a VA, typically the
    /// head of the data structure living in this heap), so later
    /// attachers can find it.
    ///
    /// # Errors
    ///
    /// [`SjError::NotAttached`] if the segment is not mapped.
    pub fn set_root(&self, sj: &mut SpaceJmp, pid: Pid, root: VirtAddr) -> SjResult<()> {
        self.mspace(sj, pid)?.set_root(root.raw());
        Ok(())
    }

    /// Reads the heap's application root pointer ([`VirtAddr::NULL`] if
    /// never set).
    ///
    /// # Errors
    ///
    /// [`SjError::NotAttached`] if the segment is not mapped.
    pub fn root(&self, sj: &mut SpaceJmp, pid: Pid) -> SjResult<VirtAddr> {
        let raw = self.mspace(sj, pid)?.root();
        Ok(VirtAddr::new(raw))
    }

    /// Live payload bytes in the heap.
    ///
    /// # Errors
    ///
    /// [`SjError::NotAttached`] if the segment is not mapped.
    pub fn allocated_bytes(&self, sj: &mut SpaceJmp, pid: Pid) -> SjResult<u64> {
        Ok(self.mspace(sj, pid)?.allocated_bytes())
    }

    /// Live allocation count.
    ///
    /// # Errors
    ///
    /// [`SjError::NotAttached`] if the segment is not mapped.
    pub fn allocation_count(&self, sj: &mut SpaceJmp, pid: Pid) -> SjResult<u64> {
        Ok(self.mspace(sj, pid)?.allocation_count())
    }
}

fn alloc_err(e: AllocError) -> SjError {
    match e {
        AllocError::OutOfMemory => {
            SjError::Os(sjmp_os::OsError::Mem(sjmp_mem::MemError::OutOfFrames))
        }
        AllocError::BadMagic => SjError::InvalidArgument("segment holds no heap"),
        AllocError::TooSmall => SjError::InvalidArgument("segment too small for a heap"),
        AllocError::BadPointer(_) => SjError::InvalidArgument("invalid heap pointer"),
    }
}
