//! Error types for the SpaceJMP API layer.

use std::fmt;

use sjmp_os::OsError;

/// Errors returned by the SpaceJMP API (Figure 3 operations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SjError {
    /// Underlying kernel error.
    Os(OsError),
    /// A VAS or segment name is already registered.
    NameTaken(String),
    /// No VAS/segment with that name or id.
    NotFound,
    /// Handle does not belong to the calling process.
    BadHandle,
    /// The process is not attached to the VAS.
    NotAttached,
    /// A lockable segment is held in a conflicting mode; the switch (or
    /// detach) would block.
    WouldBlock,
    /// Retrying the switch can never succeed: the waits-for graph of
    /// blocked switchers contains a cycle (every process in it holds a
    /// segment lock another member needs). Returned by
    /// `SpaceJmp::vas_switch_retry` instead of spinning forever.
    Deadlock,
    /// Caller's credentials do not permit the operation.
    PermissionDenied,
    /// Segment address range conflicts with an existing segment or with
    /// the process-private range.
    AddressConflict(String),
    /// Object is still in use (attached or locked).
    Busy(&'static str),
    /// Malformed request.
    InvalidArgument(&'static str),
}

impl fmt::Display for SjError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SjError::Os(e) => write!(f, "kernel error: {e}"),
            SjError::NameTaken(n) => write!(f, "name already registered: {n}"),
            SjError::NotFound => write!(f, "no such VAS or segment"),
            SjError::BadHandle => write!(f, "handle does not belong to caller"),
            SjError::NotAttached => write!(f, "process is not attached to the VAS"),
            SjError::WouldBlock => write!(f, "segment lock held in a conflicting mode"),
            SjError::Deadlock => write!(f, "switch would deadlock: cyclic segment-lock wait"),
            SjError::PermissionDenied => write!(f, "permission denied"),
            SjError::AddressConflict(what) => write!(f, "address conflict: {what}"),
            SjError::Busy(what) => write!(f, "object busy: {what}"),
            SjError::InvalidArgument(what) => write!(f, "invalid argument: {what}"),
        }
    }
}

impl std::error::Error for SjError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SjError::Os(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OsError> for SjError {
    fn from(e: OsError) -> Self {
        SjError::Os(e)
    }
}

impl From<sjmp_mem::MemError> for SjError {
    fn from(e: sjmp_mem::MemError) -> Self {
        SjError::Os(OsError::Mem(e))
    }
}

/// Result alias for SpaceJMP operations.
pub type SjResult<T> = Result<T, SjError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: SjError = OsError::NoSuchProcess.into();
        assert!(e.to_string().contains("no such process"));
        let e: SjError = sjmp_mem::MemError::OutOfFrames.into();
        assert!(e.to_string().contains("out of physical frames"));
        assert!(SjError::WouldBlock.to_string().contains("lock"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SjError>();
    }
}
