//! Criterion microbenchmarks over the hot paths of the reproduction:
//! address-space switching, translation, the segment-resident allocator
//! and dictionary, the safety analysis, and the block compressor.
//!
//! These measure *host* execution time of the simulator itself (how fast
//! the reproduction runs), complementing the `fig*` binaries which report
//! *simulated* cycles (what the paper measures).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use sjmp_alloc::{Mspace, VecMem};
use sjmp_mem::cost::{CostModel, CycleClock};
use sjmp_mem::paging::{self, PteFlags};
use sjmp_mem::{Asid, KernelFlavor, Machine, Mmu, PhysMem, VirtAddr};
use sjmp_os::{Creds, Kernel, Mode};
use spacejmp_core::{SpaceJmp, VasHandle};

fn bench_vas_switch(c: &mut Criterion) {
    let mut group = c.benchmark_group("vas_switch");
    for (name, flavor) in
        [("dragonfly", KernelFlavor::DragonFly), ("barrelfish", KernelFlavor::Barrelfish)]
    {
        let mut sj = SpaceJmp::new(Kernel::new(flavor, Machine::M2));
        let pid = sj.kernel_mut().spawn("p", Creds::new(1, 1)).unwrap();
        sj.kernel_mut().activate(pid).unwrap();
        let handles: Vec<VasHandle> = (0..2)
            .map(|i| {
                let vid = sj.vas_create(pid, &format!("v{i}"), Mode(0o600)).unwrap();
                sj.vas_attach(pid, vid).unwrap()
            })
            .collect();
        let mut i = 0usize;
        group.bench_function(name, |b| {
            b.iter(|| {
                sj.vas_switch(pid, handles[i % 2]).unwrap();
                i += 1;
            })
        });
    }
    group.finish();
}

fn bench_translate(c: &mut Criterion) {
    let mut group = c.benchmark_group("mmu");
    let mut phys = PhysMem::new(64 << 20);
    let root = paging::new_root(&mut phys).unwrap();
    let frames = phys.alloc_contiguous(1024).unwrap();
    paging::map_region(
        &mut phys,
        root,
        VirtAddr::new(0x10_0000),
        frames.base(),
        1024 * 4096,
        sjmp_mem::PageSize::Size4K,
        PteFlags::USER | PteFlags::WRITABLE,
    )
    .unwrap();
    let mut mmu = Mmu::new(512, 4, CostModel::default(), CycleClock::new());
    mmu.load_cr3(root, Asid::UNTAGGED);
    let mut page = 0u64;
    group.bench_function("tlb_hit", |b| {
        mmu.touch(&mut phys, VirtAddr::new(0x10_0000)).unwrap();
        b.iter(|| mmu.touch(&mut phys, black_box(VirtAddr::new(0x10_0000))).unwrap())
    });
    group.bench_function("tlb_miss_walk", |b| {
        b.iter(|| {
            mmu.tlb_mut().flush_nonglobal();
            page = (page + 1) % 1024;
            mmu.touch(&mut phys, VirtAddr::new(0x10_0000 + page * 4096)).unwrap()
        })
    });
    group.finish();
}

fn bench_mspace(c: &mut Criterion) {
    let mut group = c.benchmark_group("mspace");
    group.bench_function("malloc_free", |b| {
        let mut ms = Mspace::format(VecMem::new(1 << 20)).unwrap();
        b.iter(|| {
            let p = ms.malloc(black_box(128)).unwrap();
            ms.free(p).unwrap();
        })
    });
    group.bench_function("malloc_churn", |b| {
        b.iter_batched(
            || Mspace::format(VecMem::new(1 << 20)).unwrap(),
            |mut ms| {
                let ptrs: Vec<u64> = (0..64).map(|i| ms.malloc(32 + i * 8).unwrap()).collect();
                for p in ptrs.into_iter().rev() {
                    ms.free(p).unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_kv_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("redisjmp");
    group.sample_size(20);
    let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, Machine::M1));
    let pid = sj.kernel_mut().spawn("client", Creds::new(1, 1)).unwrap();
    sj.kernel_mut().activate(pid).unwrap();
    let mut client = sjmp_kv::JmpClient::join(&mut sj, pid, "bench", 0).unwrap();
    for i in 0..128u32 {
        client.set(&mut sj, format!("k{i}").as_bytes(), b"value").unwrap();
    }
    let mut i = 0u32;
    group.bench_function("get_visit", |b| {
        b.iter(|| {
            i = (i + 1) % 128;
            client.get(&mut sj, format!("k{i}").as_bytes()).unwrap()
        })
    });
    group.bench_function("set_visit", |b| {
        b.iter(|| {
            i = (i + 1) % 128;
            client.set(&mut sj, format!("k{i}").as_bytes(), b"value2").unwrap()
        })
    });
    group.finish();
}

fn bench_safety_analysis(c: &mut Criterion) {
    use sjmp_safety::analysis::Analysis;
    use sjmp_safety::ir::{AbstractVas, BlockId, Function, Inst, Module, VasName};
    let mut m = Module::new();
    let mut f = Function::new("main", 0);
    for w in 0..32u32 {
        f.push(BlockId(0), Inst::Switch(VasName(w + 1)));
        let p = f.fresh_reg();
        f.push(BlockId(0), Inst::Malloc { dst: p, size: 64 });
        for _ in 0..8 {
            let x = f.fresh_reg();
            f.push(BlockId(0), Inst::Load { dst: x, addr: p });
        }
    }
    f.push(BlockId(0), Inst::Ret(None));
    m.add_function(f);
    c.bench_function("safety_analysis_fixpoint", |b| {
        b.iter(|| {
            let entry = [AbstractVas::Vas(VasName(0))].into_iter().collect();
            black_box(Analysis::run(black_box(&m), entry))
        })
    });
}

fn bench_bgzf(c: &mut Criterion) {
    let mut group = c.benchmark_group("bgzf");
    group.sample_size(20);
    let data: Vec<u8> = (0..256 * 1024u32)
        .map(|i| b"ACGTACGGTTAACC"[(i % 14) as usize])
        .collect();
    let compressed = sjmp_genome::bgzf::compress(&data);
    group.bench_function("compress_256k", |b| {
        b.iter(|| black_box(sjmp_genome::bgzf::compress(black_box(&data))))
    });
    group.bench_function("decompress_256k", |b| {
        b.iter(|| black_box(sjmp_genome::bgzf::decompress(black_box(&compressed)).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_vas_switch,
    bench_translate,
    bench_mspace,
    bench_kv_ops,
    bench_safety_analysis,
    bench_bgzf
);
criterion_main!(benches);
