//! # sjmp-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation:
//!
//! | target | regenerates |
//! |---|---|
//! | `fig1_mmap_scaling` | Figure 1: mmap/munmap cost vs region size |
//! | `tab2_switch_breakdown` | Tables 1-2: machines, switch decomposition |
//! | `fig6_tlb_tagging` | Figure 6: TLB tagging vs working-set size |
//! | `fig7_rpc_latency` | Figure 7: URPC vs SpaceJMP latency |
//! | `fig8_gups` | Figure 8: GUPS MUPS vs #address spaces |
//! | `fig9_gups_rates` | Figure 9: switch and TLB-miss rates |
//! | `fig10_redis` | Figure 10 a/b/c: Redis vs RedisJMP throughput |
//! | `fig11_samtools` | Figure 11: BAM/SAM vs SpaceJMP |
//! | `fig12_samtools_mmap` | Figure 12: mmap vs SpaceJMP |
//! | `ablate_safety_checks` | Section 4.3 ablation: naive vs analyzed checks |
//!
//! Run any of them with `cargo run -p sjmp-bench --bin <target> [--quick]`.
//! Every binary prints a plain-text table whose rows correspond to the
//! paper's plotted series; `EXPERIMENTS.md` records paper-vs-measured.

use std::fmt::Display;

/// Prints a header line surrounded by rules.
pub fn heading(title: &str) {
    println!("\n=== {title} ===");
}

/// Formats one table row with fixed-width columns.
pub fn row<D: Display>(cells: &[D], widths: &[usize]) {
    let mut line = String::new();
    for (i, c) in cells.iter().enumerate() {
        let w = widths.get(i).copied().unwrap_or(12);
        line.push_str(&format!("{:>w$}  ", c.to_string(), w = w));
    }
    println!("{}", line.trim_end());
}

/// Parses a `--quick` flag (smaller sweeps for CI) from argv.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Geometric size ticks `2^lo ..= 2^hi`, stepping the exponent.
pub fn pow2_ticks(lo: u32, hi: u32, step: u32) -> Vec<u64> {
    (lo..=hi)
        .step_by(step as usize)
        .map(|e| 1u64 << e)
        .collect()
}

/// Human-readable byte size.
pub fn human_bytes(n: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = n as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if v.fract() == 0.0 {
        format!("{}{}", v as u64, UNITS[u])
    } else {
        format!("{:.1}{}", v, UNITS[u])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks() {
        assert_eq!(pow2_ticks(4, 8, 2), vec![16, 64, 256]);
        assert_eq!(pow2_ticks(3, 3, 1), vec![8]);
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(human_bytes(512), "512B");
        assert_eq!(human_bytes(1 << 20), "1MiB");
        assert_eq!(human_bytes(3 * (1 << 30) / 2), "1.5GiB");
    }
}
