//! # sjmp-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation:
//!
//! | target | regenerates |
//! |---|---|
//! | `fig1_mmap_scaling` | Figure 1: mmap/munmap cost vs region size |
//! | `tab2_switch_breakdown` | Tables 1-2: machines, switch decomposition |
//! | `fig6_tlb_tagging` | Figure 6: TLB tagging vs working-set size |
//! | `fig7_rpc_latency` | Figure 7: URPC vs SpaceJMP latency |
//! | `fig8_gups` | Figure 8: GUPS MUPS vs #address spaces |
//! | `fig9_gups_rates` | Figure 9: switch and TLB-miss rates |
//! | `fig10_redis` | Figure 10 a/b/c: Redis vs RedisJMP throughput |
//! | `fig11_samtools` | Figure 11: BAM/SAM vs SpaceJMP |
//! | `fig12_samtools_mmap` | Figure 12: mmap vs SpaceJMP |
//! | `ablate_safety_checks` | Section 4.3 ablation: naive vs analyzed checks |
//!
//! Run any of them with `cargo run -p sjmp-bench --bin <target> [--quick]`.
//! Every binary prints a plain-text table whose rows correspond to the
//! paper's plotted series **and** serializes the same rows to
//! `results/<bin>.json` via [`Report`]; `EXPERIMENTS.md` records
//! paper-vs-measured. Set `SJMP_TRACE=1` to install an event tracer
//! ([`trace_from_env`]) and dump Chrome `trace_event` + metrics JSON
//! alongside ([`export_trace`]).

use std::fmt::Display;
use std::path::PathBuf;

use sjmp_trace::{chrome_trace, Json, Tracer};

/// Environment variable that switches event tracing on for the bench
/// binaries (`SJMP_TRACE=1 cargo run -p sjmp-bench --bin ...`).
pub const TRACE_ENV: &str = "SJMP_TRACE";

/// Ring capacity of the tracer handed out by [`trace_from_env`].
pub const TRACE_CAPACITY: usize = 1 << 20;

/// Prints a header line surrounded by rules.
pub fn heading(title: &str) {
    println!("\n=== {title} ===");
}

/// Formats one table row with fixed-width columns.
pub fn row<D: Display>(cells: &[D], widths: &[usize]) {
    let mut line = String::new();
    for (i, c) in cells.iter().enumerate() {
        let w = widths.get(i).copied().unwrap_or(12);
        line.push_str(&format!("{:>w$}  ", c.to_string(), w = w));
    }
    println!("{}", line.trim_end());
}

/// A benchmark report: prints the classic fixed-width text table *and*
/// captures every section, header, and row so [`Report::finish`] can
/// serialize the run to `results/<name>.json` (machine-readable twin of
/// the text output; numeric-looking cells become JSON numbers).
///
/// # Examples
///
/// ```no_run
/// let mut report = sjmp_bench::Report::new("fig0_example");
/// report.heading("Figure 0: example");
/// report.header(&["n", "cycles"], &[6, 10]);
/// report.row(&["1", "1127"], &[6, 10]);
/// report.note("paper: 1127");
/// report.finish();
/// ```
#[derive(Debug)]
pub struct Report {
    name: String,
    sections: Vec<Section>,
    notes: Vec<String>,
}

#[derive(Debug)]
struct Section {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<Json>>,
}

impl Report {
    /// Starts a report for the benchmark binary `name` (the
    /// `results/<name>.json` stem).
    pub fn new(name: &str) -> Report {
        Report {
            name: name.to_string(),
            sections: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Prints a heading and opens a new section.
    pub fn heading(&mut self, title: &str) {
        heading(title);
        self.sections.push(Section {
            title: title.to_string(),
            columns: Vec::new(),
            rows: Vec::new(),
        });
    }

    /// Prints the column-header row and records the column names.
    pub fn header<D: Display>(&mut self, cells: &[D], widths: &[usize]) {
        row(cells, widths);
        let cols: Vec<String> = cells.iter().map(ToString::to_string).collect();
        self.current().columns = cols;
    }

    /// Prints a data row and records it (cells that parse as integers or
    /// floats are stored as JSON numbers).
    pub fn row<D: Display>(&mut self, cells: &[D], widths: &[usize]) {
        row(cells, widths);
        let vals: Vec<Json> = cells.iter().map(|c| cell_json(&c.to_string())).collect();
        self.current().rows.push(vals);
    }

    /// Prints a free-form note line and records it.
    pub fn note(&mut self, text: &str) {
        println!("{text}");
        self.notes.push(text.to_string());
    }

    fn current(&mut self) -> &mut Section {
        if self.sections.is_empty() {
            self.sections.push(Section {
                title: String::new(),
                columns: Vec::new(),
                rows: Vec::new(),
            });
        }
        self.sections.last_mut().expect("pushed above")
    }

    /// Serializes the report to `results/<name>.json` and returns the
    /// path.
    ///
    /// # Panics
    ///
    /// Panics if the results directory or file cannot be written.
    pub fn finish(self) -> PathBuf {
        let sections = self
            .sections
            .into_iter()
            .map(|s| {
                Json::Obj(vec![
                    ("title".into(), Json::str(&s.title)),
                    (
                        "columns".into(),
                        Json::Arr(s.columns.iter().map(|c| Json::str(c)).collect()),
                    ),
                    (
                        "rows".into(),
                        Json::Arr(s.rows.into_iter().map(Json::Arr).collect()),
                    ),
                ])
            })
            .collect();
        let doc = Json::Obj(vec![
            ("bench".into(), Json::str(&self.name)),
            ("sections".into(), Json::Arr(sections)),
            (
                "notes".into(),
                Json::Arr(self.notes.iter().map(|n| Json::str(n)).collect()),
            ),
        ]);
        let path = results_dir().join(format!("{}.json", self.name));
        std::fs::write(&path, doc.pretty()).expect("write report JSON");
        println!("\nwrote {}", path.display());
        path
    }
}

/// Parses a table cell into the most specific JSON value: integer, then
/// float, else string.
fn cell_json(s: &str) -> Json {
    if let Ok(i) = s.parse::<i64>() {
        return Json::Int(i);
    }
    if let Ok(f) = s.parse::<f64>() {
        if f.is_finite() {
            return Json::Float(f);
        }
    }
    Json::str(s)
}

/// The `results/` output directory, created if absent.
///
/// # Panics
///
/// Panics if the directory cannot be created.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// An event tracer configured from the environment: enabled with a
/// [`TRACE_CAPACITY`]-event ring when [`TRACE_ENV`] is set to anything
/// but `0`/empty, disabled (zero modeled and near-zero real cost)
/// otherwise.
pub fn trace_from_env() -> Tracer {
    match std::env::var(TRACE_ENV) {
        Ok(v) if !v.is_empty() && v != "0" => Tracer::new(TRACE_CAPACITY),
        _ => Tracer::disabled(),
    }
}

/// Dumps `tracer`'s state for the benchmark `name`: a Chrome
/// `trace_event` file at `results/<name>.trace.json` (load it in
/// `chrome://tracing` or Perfetto) and a flat metrics dump at
/// `results/<name>.metrics.json`. No-op for a disabled tracer.
///
/// # Panics
///
/// Panics if the files cannot be written.
pub fn export_trace(name: &str, tracer: &Tracer, freq_hz: u64) {
    if !tracer.enabled() {
        return;
    }
    let dir = results_dir();
    let trace_path = dir.join(format!("{name}.trace.json"));
    let chrome = chrome_trace(&tracer.events(), freq_hz as f64, tracer.dropped());
    std::fs::write(&trace_path, chrome.pretty()).expect("write Chrome trace");
    let metrics_path = dir.join(format!("{name}.metrics.json"));
    std::fs::write(&metrics_path, tracer.snapshot().to_json().pretty())
        .expect("write metrics JSON");
    println!("wrote {}", trace_path.display());
    println!("wrote {}", metrics_path.display());
}

/// Parses a `--quick` flag (smaller sweeps for CI) from argv.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Geometric size ticks `2^lo ..= 2^hi`, stepping the exponent.
pub fn pow2_ticks(lo: u32, hi: u32, step: u32) -> Vec<u64> {
    (lo..=hi)
        .step_by(step as usize)
        .map(|e| 1u64 << e)
        .collect()
}

/// Human-readable byte size.
pub fn human_bytes(n: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = n as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if v.fract() == 0.0 {
        format!("{}{}", v as u64, UNITS[u])
    } else {
        format!("{:.1}{}", v, UNITS[u])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks() {
        assert_eq!(pow2_ticks(4, 8, 2), vec![16, 64, 256]);
        assert_eq!(pow2_ticks(3, 3, 1), vec![8]);
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(human_bytes(512), "512B");
        assert_eq!(human_bytes(1 << 20), "1MiB");
        assert_eq!(human_bytes(3 * (1 << 30) / 2), "1.5GiB");
    }

    #[test]
    fn cells_parse_to_the_most_specific_json() {
        assert_eq!(cell_json("42"), Json::Int(42));
        assert_eq!(cell_json("-7"), Json::Int(-7));
        assert_eq!(cell_json("3.5"), Json::Float(3.5));
        assert_eq!(cell_json("1127 (807)"), Json::str("1127 (807)"));
        assert_eq!(cell_json("64MiB"), Json::str("64MiB"));
    }

    #[test]
    fn report_serializes_sections_rows_and_notes() {
        let mut r = Report::new("unit_test");
        r.heading("first");
        r.header(&["a", "b"], &[4, 4]);
        r.row(&["1", "2.5"], &[4, 4]);
        r.row(&["x", "3"], &[4, 4]);
        r.note("a note");
        // Inspect the JSON without touching the filesystem.
        let s = &r.sections[0];
        assert_eq!(s.title, "first");
        assert_eq!(s.columns, vec!["a", "b"]);
        assert_eq!(s.rows[0], vec![Json::Int(1), Json::Float(2.5)]);
        assert_eq!(s.rows[1], vec![Json::str("x"), Json::Int(3)]);
        assert_eq!(r.notes, vec!["a note"]);
    }
}
