//! Figure 12: memory-mapped files vs SpaceJMP for the SAMTools
//! operations — both pointer-rich and serialization-free; the difference
//! is the cost of `mmap`+`munmap` vs a VAS switch on each tool
//! invocation.
//!
//! The figure annotates absolute seconds above each bar (paper, 3.1 GiB
//! dataset: flagstat 1.00 vs 0.67 s; qname sort 108.4 vs 106.4; coord
//! sort 5.48 vs 5.03; index 14.77 vs 14.88). Our dataset is scaled, so
//! absolute values differ; the *ratios* are the reproduced result.

use sjmp_bench::{quick_mode, Report};
use sjmp_genome::{run_pipeline, StorageMode, WorkloadConfig};

fn main() {
    let cfg = WorkloadConfig {
        records: if quick_mode() { 4_000 } else { 20_000 },
        ..WorkloadConfig::default()
    };
    let mmap = run_pipeline(StorageMode::Mmap, &cfg).expect("mmap");
    let jmp = run_pipeline(StorageMode::SpaceJmp, &cfg).expect("jmp");

    let mut report = Report::new("fig12_samtools_mmap");
    report.heading(&format!(
        "Figure 12: mmap vs SpaceJMP, absolute simulated seconds ({} records)",
        cfg.records
    ));
    report.header(&["op", "MMAP[s]", "SpaceJMP[s]", "ratio"], &[16, 10, 12, 8]);
    for (name, m, j) in [
        ("flagstat", mmap.flagstat, jmp.flagstat),
        ("qname sort", mmap.qname_sort, jmp.qname_sort),
        ("coordinate sort", mmap.coordinate_sort, jmp.coordinate_sort),
        ("index", mmap.index, jmp.index),
    ] {
        report.row(
            &[
                name.to_string(),
                format!("{m:.4}"),
                format!("{j:.4}"),
                format!("{:.2}", m / j),
            ],
            &[16, 10, 12, 8],
        );
    }
    report.note("\npaper ratios (mmap/SpaceJMP): flagstat 1.49, qname 1.02,");
    report.note("coordinate 1.09, index 0.99 — comparable overall, with the fixed");
    report.note("mapping cost visible only in the short-running flagstat");
    report.finish();
}
