//! Figure 11: SAMTools operations — serialized formats (BAM, SAM) vs
//! SpaceJMP's in-memory representation.
//!
//! Bars are normalized to BAM (the figure's leftmost bar per group);
//! absolute simulated seconds are printed too. Dataset sizes are scaled
//! from the paper's 3.1 GiB SAM / 0.9 GiB BAM (see DESIGN.md).

use sjmp_bench::{quick_mode, Report};
use sjmp_genome::{run_pipeline, StorageMode, WorkloadConfig};

fn main() {
    let cfg = WorkloadConfig {
        records: if quick_mode() { 4_000 } else { 20_000 },
        ..WorkloadConfig::default()
    };
    let bam = run_pipeline(StorageMode::Bam, &cfg).expect("bam");
    let sam = run_pipeline(StorageMode::Sam, &cfg).expect("sam");
    let jmp = run_pipeline(StorageMode::SpaceJmp, &cfg).expect("jmp");

    let mut report = Report::new("fig11_samtools");
    report.heading(&format!(
        "Figure 11: time normalized to BAM ({} records)",
        cfg.records
    ));
    report.header(&["op", "BAM", "SAM", "SpaceJMP"], &[16, 8, 8, 10]);
    let rows = [
        ("flagstat", bam.flagstat, sam.flagstat, jmp.flagstat),
        ("qname sort", bam.qname_sort, sam.qname_sort, jmp.qname_sort),
        (
            "coordinate sort",
            bam.coordinate_sort,
            sam.coordinate_sort,
            jmp.coordinate_sort,
        ),
        ("index", bam.index, sam.index, jmp.index),
    ];
    for (name, b, s, j) in rows {
        report.row(
            &[
                name.to_string(),
                "1.00".to_string(),
                format!("{:.2}", s / b),
                format!("{:.2}", j / b),
            ],
            &[16, 8, 8, 10],
        );
    }

    report.heading("absolute simulated seconds");
    report.header(&["op", "BAM", "SAM", "SpaceJMP"], &[16, 10, 10, 10]);
    for (name, b, s, j) in rows {
        report.row(
            &[
                name.to_string(),
                format!("{b:.4}"),
                format!("{s:.4}"),
                format!("{j:.4}"),
            ],
            &[16, 10, 10, 10],
        );
    }
    report.note("\npaper: keeping data in memory with SpaceJMP yields significant");
    report.note("speedup over both serialized formats for every operation");
    report.finish();
}
