//! `sjmp-top` — cycle attribution for any traced run.
//!
//! Point it at a Chrome trace exported by a bench binary (run one with
//! `SJMP_TRACE=1` to get `results/<name>.trace.json`) and it answers
//! "where did the cycles go": a per-subsystem table in the style of
//! `top` (translation vs locks vs block IO vs VAS switching ...), and a
//! collapsed-stack file (`results/<name>.folded`) in the standard
//! flamegraph format — one `core0;vas_switch;cr3_load 130` line per
//! distinct span stack, feeding straight into `flamegraph.pl` or
//! speedscope.
//!
//! Usage:
//!
//! ```text
//! cargo run -p sjmp-bench --bin sjmp_top -- results/overload.trace.json
//! cargo run -p sjmp-bench --bin sjmp_top -- overload        # same file
//! ```
//!
//! Cycle attribution is *self time*: a span's cycles minus its open
//! children's, so the table's total equals wall cycles spanned by
//! instrumented code and nothing is double-counted
//! ([`sjmp_trace::fold_stacks`]).

use std::path::PathBuf;
use std::process::ExitCode;

use sjmp_bench::{heading, results_dir, row};
use sjmp_trace::{fold_stacks, parse_chrome_trace, Json};

fn usage() -> ExitCode {
    eprintln!("usage: sjmp_top <results/NAME.trace.json | NAME>");
    eprintln!("  (export a trace first: SJMP_TRACE=1 cargo run -p sjmp-bench --bin NAME)");
    ExitCode::FAILURE
}

/// Top stacks to print inline (the `.folded` file has all of them).
const TOP_STACKS: usize = 12;

fn main() -> ExitCode {
    let Some(arg) = std::env::args().nth(1) else {
        return usage();
    };
    if arg == "--help" || arg == "-h" {
        return usage();
    }
    // A literal path wins; a bare name means results/<name>.trace.json.
    let path = if PathBuf::from(&arg).is_file() {
        PathBuf::from(&arg)
    } else {
        results_dir().join(format!("{arg}.trace.json"))
    };
    let raw = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sjmp_top: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let doc = match Json::parse(&raw) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("sjmp_top: {} is not JSON: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let trace = match parse_chrome_trace(&doc) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("sjmp_top: {} is not a trace export: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };

    let profile = fold_stacks(&trace.events);
    if trace.dropped > 0 {
        eprintln!(
            "warning: {} events were dropped from the ring; attribution is best-effort",
            trace.dropped
        );
    }
    if profile.malformed > 0 {
        eprintln!(
            "warning: {} out-of-order span closes; stacks are best-effort",
            profile.malformed
        );
    }

    heading(&format!("sjmp-top: {}", path.display()));
    println!(
        "{} events, {} span cycles attributed",
        trace.events.len(),
        profile.total_self
    );

    heading("Cycles by subsystem");
    let w = &[14usize, 14, 7, 10];
    row(&["subsystem", "self cycles", "share", "instants"], w);
    for r in profile.subsystem_table() {
        row(
            &[
                r.subsystem.name().to_string(),
                r.self_cycles.to_string(),
                format!("{:.1}%", r.share * 100.0),
                r.instants.to_string(),
            ],
            w,
        );
    }

    heading(&format!("Hottest stacks (top {TOP_STACKS})"));
    let mut stacks: Vec<(&String, &u64)> = profile.stacks.iter().collect();
    stacks.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    let sw = &[44usize, 14];
    row(&["stack", "self cycles"], sw);
    for (stack, cycles) in stacks.iter().take(TOP_STACKS) {
        row(&[stack.as_str(), cycles.to_string().as_str()], sw);
    }

    // The full folded profile, flamegraph.pl-ready.
    let stem = path.file_name().and_then(|n| n.to_str()).map_or_else(
        || "trace".to_string(),
        |n| n.trim_end_matches(".trace.json").to_string(),
    );
    let folded_path = results_dir().join(format!("{stem}.folded"));
    if let Err(e) = std::fs::write(&folded_path, profile.collapsed()) {
        eprintln!("sjmp_top: cannot write {}: {e}", folded_path.display());
        return ExitCode::FAILURE;
    }
    println!(
        "\nwrote {} ({} stacks; render with flamegraph.pl or speedscope)",
        folded_path.display(),
        profile.stacks.len()
    );
    ExitCode::SUCCESS
}
