//! CI gate for the machine-readable outputs: verifies that the
//! `results/` files a traced benchmark run produces parse as JSON and
//! carry the required keys.
//!
//! Usage: `validate_results <bench-name>...` — for each name, checks
//! `results/<name>.json` (bench report: `bench`, `sections` with
//! `columns`/`rows`, `notes`), `results/<name>.trace.json` (Chrome
//! `trace_event`: non-empty `traceEvents`), and
//! `results/<name>.metrics.json` (`counters`, `histograms`). Exits
//! nonzero with a message naming the first violation.
//!
//! `validate_results --all` instead scans `results/` and validates every
//! bench report found there; trace and metrics files are validated only
//! where they exist (tracing is opt-in per run). The sweep also runs the
//! stale-results check: every bench binary under `crates/bench/src/bin/`
//! must have a committed report, and every committed report must have a
//! matching binary — a report whose producer was deleted (or a bench
//! added without regenerating `results/`) fails the gate.

use std::process::ExitCode;

use sjmp_trace::Json;

/// One validation pass over a named benchmark's output file.
type Check = fn(&str) -> Result<(), String>;

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: parse error: {e}"))
}

fn require<'a>(doc: &'a Json, path: &str, key: &str) -> Result<&'a Json, String> {
    doc.get(key)
        .ok_or_else(|| format!("{path}: missing required key \"{key}\""))
}

fn check_report(name: &str) -> Result<(), String> {
    let path = format!("results/{name}.json");
    let doc = load(&path)?;
    require(&doc, &path, "bench")?;
    require(&doc, &path, "notes")?;
    let sections = require(&doc, &path, "sections")?
        .as_arr()
        .ok_or_else(|| format!("{path}: \"sections\" is not an array"))?;
    if sections.is_empty() {
        return Err(format!("{path}: no sections recorded"));
    }
    for s in sections {
        require(s, &path, "title")?;
        require(s, &path, "columns")?;
        let rows = require(s, &path, "rows")?
            .as_arr()
            .ok_or_else(|| format!("{path}: section \"rows\" is not an array"))?;
        if rows.is_empty() {
            return Err(format!("{path}: a section has no rows"));
        }
    }
    Ok(())
}

fn check_trace(name: &str) -> Result<(), String> {
    let path = format!("results/{name}.trace.json");
    let doc = load(&path)?;
    let events = require(&doc, &path, "traceEvents")?
        .as_arr()
        .ok_or_else(|| format!("{path}: \"traceEvents\" is not an array"))?;
    if events.is_empty() {
        return Err(format!("{path}: trace is empty"));
    }
    for ev in events {
        for key in ["name", "ph", "ts", "pid", "tid"] {
            require(ev, &path, key)?;
        }
    }
    Ok(())
}

fn check_metrics(name: &str) -> Result<(), String> {
    let path = format!("results/{name}.metrics.json");
    let doc = load(&path)?;
    require(&doc, &path, "counters")?;
    require(&doc, &path, "histograms")?;
    Ok(())
}

/// Schema gate for `results/analyze_report.json` (the `sjmp_lint`
/// output): `tool`, a `traces` array whose entries carry
/// `name`/`events`/`dropped`/`findings`, and `findings_total`.
fn check_analyze_report() -> Result<(), String> {
    let path = "results/analyze_report.json";
    let doc = load(path)?;
    let tool = require(&doc, path, "tool")?
        .as_str()
        .ok_or_else(|| format!("{path}: \"tool\" is not a string"))?;
    if tool != "sjmp-lint" {
        return Err(format!("{path}: unexpected tool \"{tool}\""));
    }
    require(&doc, path, "findings_total")?;
    let traces = require(&doc, path, "traces")?
        .as_arr()
        .ok_or_else(|| format!("{path}: \"traces\" is not an array"))?;
    for t in traces {
        for key in ["name", "events", "dropped", "skipped_incomplete"] {
            require(t, path, key)?;
        }
        let findings = require(t, path, "findings")?
            .as_arr()
            .ok_or_else(|| format!("{path}: \"findings\" is not an array"))?;
        for f in findings {
            for key in ["rule", "message", "segments", "pids", "cores"] {
                require(f, path, key)?;
            }
        }
    }
    // The optional "ir" section (sjmp_lint --ir / --gen): healthy
    // example programs must be clean, the known-dangling program must
    // report findings, and a generator batch must have zero soundness
    // violations.
    if let Some(ir) = doc.get("ir") {
        if let Some(programs) = ir.get("programs") {
            let programs = programs
                .as_arr()
                .ok_or_else(|| format!("{path}: \"ir.programs\" is not an array"))?;
            for p in programs {
                for key in [
                    "name",
                    "mem_ops",
                    "proven_safe",
                    "proven_dangling",
                    "unknown",
                    "expected_dangling",
                ] {
                    require(p, path, key)?;
                }
                let name = p.get("name").and_then(Json::as_str).unwrap_or("?");
                let findings = require(p, path, "findings")?
                    .as_arr()
                    .ok_or_else(|| format!("{path}: ir \"findings\" is not an array"))?;
                let expect = matches!(p.get("expected_dangling"), Some(Json::Bool(true)));
                if expect && findings.is_empty() {
                    return Err(format!(
                        "{path}: ir program \"{name}\" should report dangling findings"
                    ));
                }
                if !expect && !findings.is_empty() {
                    return Err(format!(
                        "{path}: healthy ir program \"{name}\" has findings"
                    ));
                }
            }
        }
        if let Some(gen) = ir.get("gen") {
            for key in [
                "seeds",
                "programs",
                "mem_sites",
                "proven_safe",
                "violations",
            ] {
                require(gen, path, key)?;
            }
            let violations = require(gen, path, "violations")?
                .as_arr()
                .ok_or_else(|| format!("{path}: \"ir.gen.violations\" is not an array"))?;
            if !violations.is_empty() {
                return Err(format!(
                    "{path}: generator batch reports {} soundness violations",
                    violations.len()
                ));
            }
        }
    }
    Ok(())
}

/// Gate for `results/ablate_safety_checks.json`: the check-elision
/// table must carry all three policy columns, every row must show the
/// interprocedural verifier eliding at least as many checks as the
/// dataflow pass (it is a refinement), and at least one program must
/// show it strictly winning.
fn check_safety_ablation(name: &str) -> Result<(), String> {
    if name != "ablate_safety_checks" {
        return Ok(());
    }
    let path = format!("results/{name}.json");
    let doc = load(&path)?;
    let sections = require(&doc, &path, "sections")?
        .as_arr()
        .ok_or_else(|| format!("{path}: \"sections\" is not an array"))?;
    let section = sections
        .first()
        .ok_or_else(|| format!("{path}: no sections recorded"))?;
    let columns = section
        .get("columns")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: section has no columns"))?;
    let col = |name: &str| -> Result<usize, String> {
        columns
            .iter()
            .position(|c| c.as_str() == Some(name))
            .ok_or_else(|| format!("{path}: missing column \"{name}\""))
    };
    let naive = col("naive checks")?;
    let pruned = col("pruned checks")?;
    let interproc = col("interproc checks")?;
    let rows = require(section, &path, "rows")?
        .as_arr()
        .ok_or_else(|| format!("{path}: section \"rows\" is not an array"))?;
    let cell = |row: &Json, at: usize| -> Result<f64, String> {
        row.as_arr()
            .and_then(|cells| cells.get(at))
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{path}: row cell {at} is not a number"))
    };
    let mut strictly_less = false;
    for row in rows {
        let n = cell(row, naive)?;
        let p = cell(row, pruned)?;
        let i = cell(row, interproc)?;
        if p > n || i > p {
            return Err(format!(
                "{path}: check counts must refine: naive {n} >= pruned {p} >= interproc {i}"
            ));
        }
        strictly_less |= i < p;
    }
    if !strictly_less {
        return Err(format!(
            "{path}: no program where the interprocedural verifier beats the dataflow pass"
        ));
    }
    Ok(())
}

/// Schema gate for the durability reports. `results/crash_sweep.json`
/// must carry all three sweep phases (block-write crash points, flush
/// barriers, seeded faults), every `recovered` cell must read `old` or
/// `new` (never a hybrid), and the verdict note must report zero
/// violations. `results/warm_restart.json` must carry the phase table
/// and the cold-vs-warm comparison with a `speedup` column.
fn check_durability(name: &str) -> Result<(), String> {
    let path = format!("results/{name}.json");
    let doc = load(&path)?;
    let sections = require(&doc, &path, "sections")?
        .as_arr()
        .ok_or_else(|| format!("{path}: \"sections\" is not an array"))?;
    let titled = |needle: &str| -> Result<&Json, String> {
        sections
            .iter()
            .find(|s| {
                s.get("title")
                    .and_then(Json::as_str)
                    .is_some_and(|t| t.contains(needle))
            })
            .ok_or_else(|| format!("{path}: no section titled like \"{needle}\""))
    };
    let column = |section: &Json, col: &str| -> Result<usize, String> {
        section
            .get("columns")
            .and_then(Json::as_arr)
            .and_then(|cols| {
                cols.iter()
                    .position(|c| c.as_str().is_some_and(|s| s == col))
            })
            .ok_or_else(|| format!("{path}: missing column \"{col}\""))
    };
    match name {
        "crash_sweep" => {
            for needle in [
                "Crash at every block write",
                "Crash at each flush barrier",
                "Seeded torn writes",
            ] {
                let section = titled(needle)?;
                let at = column(section, "recovered")?;
                let rows = require(section, &path, "rows")?
                    .as_arr()
                    .ok_or_else(|| format!("{path}: section \"rows\" is not an array"))?;
                for row in rows {
                    let cell = row.as_arr().and_then(|r| r.get(at)).and_then(Json::as_str);
                    if cell != Some("old") && cell != Some("new") {
                        return Err(format!(
                            "{path}: \"{needle}\" row recovered {cell:?}, want old|new"
                        ));
                    }
                }
            }
            let notes = require(&doc, &path, "notes")?
                .as_arr()
                .ok_or_else(|| format!("{path}: \"notes\" is not an array"))?;
            let clean = notes
                .iter()
                .any(|n| n.as_str().is_some_and(|s| s.starts_with("violations: 0")));
            if !clean {
                return Err(format!(
                    "{path}: verdict note \"violations: 0 ...\" missing"
                ));
            }
        }
        "warm_restart" => {
            let phases = titled("RedisJMP warm restart")?;
            for col in ["vas_save", "recovery", "vas_load"] {
                column(phases, col)?;
            }
            let compare = titled("cold rebuild vs warm restart")?;
            column(compare, "speedup")?;
        }
        _ => {}
    }
    Ok(())
}

/// Schema gate for `results/overload.json`: a saturation-sweep section
/// per machine (M1/M2/M3) whose columns carry the goodput and tail
/// columns, the bursty and degraded sections, and the self-check
/// verdict note `overload verdict: PASS` (the bin exits nonzero — and
/// writes a FAIL verdict — when goodput at 2x saturation drops below
/// 90% of goodput at saturation).
fn check_overload(name: &str) -> Result<(), String> {
    if name != "overload" {
        return Ok(());
    }
    let path = format!("results/{name}.json");
    let doc = load(&path)?;
    let sections = require(&doc, &path, "sections")?
        .as_arr()
        .ok_or_else(|| format!("{path}: \"sections\" is not an array"))?;
    let titled = |needle: &str| -> Result<&Json, String> {
        sections
            .iter()
            .find(|s| {
                s.get("title")
                    .and_then(Json::as_str)
                    .is_some_and(|t| t.contains(needle))
            })
            .ok_or_else(|| format!("{path}: no section titled like \"{needle}\""))
    };
    for machine in ["M1", "M2", "M3"] {
        let section = titled(&format!("Saturation sweep: {machine}"))?;
        let cols = section
            .get("columns")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{path}: sweep section has no columns"))?;
        for col in [
            "load",
            "offered/s",
            "goodput/s",
            "shed%",
            "p999lo",
            "p999us",
        ] {
            if !cols.iter().any(|c| c.as_str() == Some(col)) {
                return Err(format!("{path}: {machine} sweep missing column \"{col}\""));
            }
        }
        let rows = require(section, &path, "rows")?
            .as_arr()
            .ok_or_else(|| format!("{path}: sweep \"rows\" is not an array"))?;
        if rows.len() < 3 {
            return Err(format!(
                "{path}: {machine} sweep has {} load points, want >= 3",
                rows.len()
            ));
        }
    }
    titled("Bursty arrivals")?;
    titled("Degraded mode")?;
    // The tail-forensics section: slowest within-deadline requests with
    // their latency decomposed into backoff/queue/switch/service.
    let exemplars = titled("Tail exemplars")?;
    let cols = exemplars
        .get("columns")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: exemplar section has no columns"))?;
    for col in [
        "latency_us",
        "backoff_us",
        "queue_us",
        "switch_us",
        "service_us",
    ] {
        if !cols.iter().any(|c| c.as_str() == Some(col)) {
            return Err(format!("{path}: exemplar section missing column \"{col}\""));
        }
    }
    let notes = require(&doc, &path, "notes")?
        .as_arr()
        .ok_or_else(|| format!("{path}: \"notes\" is not an array"))?;
    let pass = notes
        .iter()
        .any(|n| n.as_str() == Some("overload verdict: PASS"));
    if !pass {
        return Err(format!("{path}: note \"overload verdict: PASS\" missing"));
    }
    Ok(())
}

/// The four workload families the self-perf harness must cover.
const SELFPERF_WORKLOADS: [&str; 4] = ["gups", "kv", "genome", "overload"];

/// Per-backend probes the self-perf *report table* must additionally
/// carry: the host-walk-cache parity rerun and the no-VM baseline.
/// Trajectory entries predating the backend refactor lack these, so
/// only the table — regenerated every run — requires them.
const SELFPERF_BACKEND_ROWS: [&str; 2] = ["gups/nocache", "gups/novm"];

/// Schema gate for `results/selfperf.json` (the per-run table) and the
/// `BENCH_selfperf.json` trajectory at the repo root. Host times are
/// machine-dependent, so this validates shape only — the table must
/// carry the `ns/sim-cycle` column with a row per workload family, and
/// every trajectory entry must record `ns_per_sim_cycle` for all four
/// families. Nothing here compares values.
fn check_selfperf(name: &str) -> Result<(), String> {
    if name != "selfperf" {
        return Ok(());
    }
    let path = format!("results/{name}.json");
    let doc = load(&path)?;
    let sections = require(&doc, &path, "sections")?
        .as_arr()
        .ok_or_else(|| format!("{path}: \"sections\" is not an array"))?;
    let section = sections
        .first()
        .ok_or_else(|| format!("{path}: no sections recorded"))?;
    let cols = section
        .get("columns")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: selfperf section has no columns"))?;
    for col in ["workload", "sim cycles", "host ms", "ns/sim-cycle"] {
        if !cols.iter().any(|c| c.as_str() == Some(col)) {
            return Err(format!("{path}: selfperf missing column \"{col}\""));
        }
    }
    let rows = require(section, &path, "rows")?
        .as_arr()
        .ok_or_else(|| format!("{path}: selfperf \"rows\" is not an array"))?;
    for workload in SELFPERF_WORKLOADS.iter().chain(&SELFPERF_BACKEND_ROWS) {
        let found = rows.iter().any(|r| {
            r.as_arr()
                .and_then(|cells| cells.first())
                .and_then(Json::as_str)
                == Some(*workload)
        });
        if !found {
            return Err(format!("{path}: no row for workload \"{workload}\""));
        }
    }
    check_selfperf_trajectory()
}

/// The trajectory file lives at the repo root (next to the other
/// `BENCH_*.json` style artifacts), one appended entry per run.
fn check_selfperf_trajectory() -> Result<(), String> {
    let path = "BENCH_selfperf.json";
    let doc = load(path)?;
    let bench = require(&doc, path, "bench")?
        .as_str()
        .ok_or_else(|| format!("{path}: \"bench\" is not a string"))?;
    if bench != "selfperf" {
        return Err(format!("{path}: unexpected bench \"{bench}\""));
    }
    let runs = require(&doc, path, "runs")?
        .as_arr()
        .ok_or_else(|| format!("{path}: \"runs\" is not an array"))?;
    if runs.is_empty() {
        return Err(format!("{path}: trajectory has no runs"));
    }
    for run in runs {
        require(run, path, "unix_secs")?;
        require(run, path, "quick")?;
        let workloads = require(run, path, "workloads")?
            .as_arr()
            .ok_or_else(|| format!("{path}: \"workloads\" is not an array"))?;
        for want in SELFPERF_WORKLOADS {
            let entry = workloads
                .iter()
                .find(|w| w.get("workload").and_then(Json::as_str) == Some(want))
                .ok_or_else(|| format!("{path}: a run is missing workload \"{want}\""))?;
            for key in ["sim_cycles", "host_ns", "ns_per_sim_cycle"] {
                require(entry, path, key)?;
            }
        }
    }
    Ok(())
}

/// Schema gate for the reports that grew translation-backend columns
/// with the pluggable-backend refactor.
///
/// * `ablate_page_size` must carry the access-side touch-sweep section
///   (columns `backend`/`page size`/`walks`/`tlb misses`/`tlb reach`/
///   `cycles/touch`) with at least one row per backend, `4level` and
///   `no-vm`, alongside the original construction-cost table.
/// * `fig6_tlb_tagging` must carry the `no-vm` series column.
/// * `fig8_gups` must carry the no-VM lower-bound section with the
///   per-backend miss columns.
fn check_backend_reports(name: &str) -> Result<(), String> {
    if !matches!(name, "ablate_page_size" | "fig6_tlb_tagging" | "fig8_gups") {
        return Ok(());
    }
    let path = format!("results/{name}.json");
    let doc = load(&path)?;
    let sections = require(&doc, &path, "sections")?
        .as_arr()
        .ok_or_else(|| format!("{path}: \"sections\" is not an array"))?;
    let titled = |needle: &str| -> Result<&Json, String> {
        sections
            .iter()
            .find(|s| {
                s.get("title")
                    .and_then(Json::as_str)
                    .is_some_and(|t| t.contains(needle))
            })
            .ok_or_else(|| format!("{path}: no section titled like \"{needle}\""))
    };
    let columns = |section: &Json, cols: &[&str]| -> Result<(), String> {
        let have = section
            .get("columns")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{path}: section has no columns"))?;
        for col in cols {
            if !have.iter().any(|c| c.as_str() == Some(col)) {
                return Err(format!("{path}: missing column \"{col}\""));
            }
        }
        Ok(())
    };
    match name {
        "ablate_page_size" => {
            titled("mmap construction cost")?;
            let sweep = titled("Touch sweep")?;
            columns(
                sweep,
                &[
                    "backend",
                    "page size",
                    "walks",
                    "tlb misses",
                    "tlb reach",
                    "cycles/touch",
                ],
            )?;
            let rows = require(sweep, &path, "rows")?
                .as_arr()
                .ok_or_else(|| format!("{path}: sweep \"rows\" is not an array"))?;
            for backend in ["4level", "no-vm"] {
                let found = rows.iter().any(|r| {
                    r.as_arr()
                        .and_then(|cells| cells.first())
                        .and_then(Json::as_str)
                        == Some(backend)
                });
                if !found {
                    return Err(format!("{path}: no touch-sweep row for \"{backend}\""));
                }
            }
        }
        "fig6_tlb_tagging" => {
            let section = sections
                .first()
                .ok_or_else(|| format!("{path}: no sections recorded"))?;
            columns(
                section,
                &["switch(tag off)", "switch(tag on)", "no switch", "no-vm"],
            )?;
        }
        "fig8_gups" => {
            let bound = titled("no-VM base+bound backend")?;
            columns(
                bound,
                &["windows", "SpaceJMP", "no-vm", "tlb misses", "no-vm misses"],
            )?;
        }
        _ => unreachable!("gated above"),
    }
    Ok(())
}

/// Bench binaries that are tools over other benches' outputs rather
/// than report producers: `validate_results` (this gate), `sjmp_lint`
/// (writes `analyze_report.json`, own schema), `sjmp_top` (writes
/// `.folded` profiles).
const TOOL_BINS: [&str; 3] = ["validate_results", "sjmp_lint", "sjmp_top"];

/// Stale-results detection, both directions: a committed report whose
/// producing binary no longer exists is stale (it can never be
/// regenerated), and a bench binary with no committed report means
/// `results/` was not regenerated after the bench landed.
fn check_stale(report_names: &[String]) -> Result<(), String> {
    let bin_dir = "crates/bench/src/bin";
    let entries = std::fs::read_dir(bin_dir).map_err(|e| format!("{bin_dir}/: {e}"))?;
    let mut bins = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("{bin_dir}/: {e}"))?;
        let file = entry.file_name();
        let file = file.to_string_lossy();
        if let Some(stem) = file.strip_suffix(".rs") {
            if !TOOL_BINS.contains(&stem) {
                bins.push(stem.to_string());
            }
        }
    }
    for name in report_names {
        if !bins.iter().any(|b| b == name) {
            return Err(format!(
                "results/{name}.json is stale: no bench binary {bin_dir}/{name}.rs produces it"
            ));
        }
    }
    for bin in &bins {
        if !report_names.contains(bin) {
            return Err(format!(
                "{bin_dir}/{bin}.rs has no committed report: run it to produce results/{bin}.json"
            ));
        }
    }
    Ok(())
}

/// Every bench name with a report file in `results/`, i.e. `<name>.json`
/// excluding the `.trace.json` / `.metrics.json` side files and the
/// `analyze_report.json` findings report (which has its own schema and
/// gate, [`check_analyze_report`]).
fn all_report_names() -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let entries = std::fs::read_dir("results").map_err(|e| format!("results/: {e}"))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("results/: {e}"))?;
        let file = entry.file_name();
        let file = file.to_string_lossy();
        if let Some(name) = file.strip_suffix(".json") {
            if !name.ends_with(".trace") && !name.ends_with(".metrics") && name != "analyze_report"
            {
                names.push(name.to_string());
            }
        }
    }
    if names.is_empty() {
        return Err("results/: no bench reports found".into());
    }
    names.sort();
    Ok(names)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: validate_results --all | <bench-name>...");
        return ExitCode::FAILURE;
    }
    let sweep = args.iter().any(|a| a == "--all");
    let names = if sweep {
        match all_report_names() {
            Ok(names) => names,
            Err(e) => {
                eprintln!("FAIL {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        args
    };
    for name in &names {
        // Named invocations demand the full traced triple; the sweep
        // validates whatever each benchmark actually produced. The
        // self-perf harness measures the host, not the machine — it has
        // no event stream to export, so no triple is demanded.
        let side_files_required = (!sweep && name != "selfperf")
            || std::path::Path::new(&format!("results/{name}.trace.json")).exists();
        let checks: &[Check] = if side_files_required {
            &[check_report, check_trace, check_metrics]
        } else {
            &[check_report]
        };
        for check in checks {
            if let Err(e) = check(name) {
                eprintln!("FAIL {e}");
                return ExitCode::FAILURE;
            }
        }
        // The durability and overload reports carry extra,
        // bench-specific guarantees.
        if let Err(e) = check_durability(name) {
            eprintln!("FAIL {e}");
            return ExitCode::FAILURE;
        }
        if let Err(e) = check_overload(name) {
            eprintln!("FAIL {e}");
            return ExitCode::FAILURE;
        }
        if let Err(e) = check_selfperf(name) {
            eprintln!("FAIL {e}");
            return ExitCode::FAILURE;
        }
        if let Err(e) = check_backend_reports(name) {
            eprintln!("FAIL {e}");
            return ExitCode::FAILURE;
        }
        if let Err(e) = check_safety_ablation(name) {
            eprintln!("FAIL {e}");
            return ExitCode::FAILURE;
        }
        if side_files_required {
            println!("ok: results/{name}{{.json,.trace.json,.metrics.json}}");
        } else {
            println!("ok: results/{name}.json");
        }
    }
    // The findings report is validated whenever present (the sweep) or
    // when explicitly named `analyze_report` above would have failed the
    // bench-report schema — it rides along with --all.
    if sweep && std::path::Path::new("results/analyze_report.json").exists() {
        if let Err(e) = check_analyze_report() {
            eprintln!("FAIL {e}");
            return ExitCode::FAILURE;
        }
        println!("ok: results/analyze_report.json");
    }
    // Stale detection needs both sides of the pairing, so it only runs
    // in the sweep, and only from a checkout (CI runs at the repo root;
    // a bare results/ copy has no bin dir to pair against).
    if sweep && std::path::Path::new("crates/bench/src/bin").is_dir() {
        if let Err(e) = check_stale(&names) {
            eprintln!("FAIL {e}");
            return ExitCode::FAILURE;
        }
        println!("ok: results/ and crates/bench/src/bin/ pair 1:1 (no stale reports)");
    }
    ExitCode::SUCCESS
}
