//! CI gate for the machine-readable outputs: verifies that the
//! `results/` files a traced benchmark run produces parse as JSON and
//! carry the required keys.
//!
//! Usage: `validate_results <bench-name>...` — for each name, checks
//! `results/<name>.json` (bench report: `bench`, `sections` with
//! `columns`/`rows`, `notes`), `results/<name>.trace.json` (Chrome
//! `trace_event`: non-empty `traceEvents`), and
//! `results/<name>.metrics.json` (`counters`, `histograms`). Exits
//! nonzero with a message naming the first violation.

use std::process::ExitCode;

use sjmp_trace::Json;

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: parse error: {e}"))
}

fn require<'a>(doc: &'a Json, path: &str, key: &str) -> Result<&'a Json, String> {
    doc.get(key)
        .ok_or_else(|| format!("{path}: missing required key \"{key}\""))
}

fn check_report(name: &str) -> Result<(), String> {
    let path = format!("results/{name}.json");
    let doc = load(&path)?;
    require(&doc, &path, "bench")?;
    require(&doc, &path, "notes")?;
    let sections = require(&doc, &path, "sections")?
        .as_arr()
        .ok_or_else(|| format!("{path}: \"sections\" is not an array"))?;
    if sections.is_empty() {
        return Err(format!("{path}: no sections recorded"));
    }
    for s in sections {
        require(s, &path, "title")?;
        require(s, &path, "columns")?;
        let rows = require(s, &path, "rows")?
            .as_arr()
            .ok_or_else(|| format!("{path}: section \"rows\" is not an array"))?;
        if rows.is_empty() {
            return Err(format!("{path}: a section has no rows"));
        }
    }
    Ok(())
}

fn check_trace(name: &str) -> Result<(), String> {
    let path = format!("results/{name}.trace.json");
    let doc = load(&path)?;
    let events = require(&doc, &path, "traceEvents")?
        .as_arr()
        .ok_or_else(|| format!("{path}: \"traceEvents\" is not an array"))?;
    if events.is_empty() {
        return Err(format!("{path}: trace is empty"));
    }
    for ev in events {
        for key in ["name", "ph", "ts", "pid", "tid"] {
            require(ev, &path, key)?;
        }
    }
    Ok(())
}

fn check_metrics(name: &str) -> Result<(), String> {
    let path = format!("results/{name}.metrics.json");
    let doc = load(&path)?;
    require(&doc, &path, "counters")?;
    require(&doc, &path, "histograms")?;
    Ok(())
}

fn main() -> ExitCode {
    let names: Vec<String> = std::env::args().skip(1).collect();
    if names.is_empty() {
        eprintln!("usage: validate_results <bench-name>...");
        return ExitCode::FAILURE;
    }
    for name in &names {
        for check in [check_report, check_trace, check_metrics] {
            if let Err(e) = check(name) {
                eprintln!("FAIL {e}");
                return ExitCode::FAILURE;
            }
        }
        println!("ok: results/{name}{{.json,.trace.json,.metrics.json}}");
    }
    ExitCode::SUCCESS
}
