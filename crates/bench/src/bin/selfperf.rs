//! `selfperf` — the self-performance trajectory harness.
//!
//! Every other bench binary measures the *simulated* machine; this one
//! measures the *simulator*: host wall-clock nanoseconds spent per
//! simulated cycle, for one representative run of each major workload
//! family (GUPS, the RedisJMP closed loop, the SAMTools pipeline, and
//! the open-loop overload engine). The ratio is the number future
//! speedup work (translation caching, ROADMAP item 2) must drive down
//! — and the number CI watches so a "harmless" refactor that makes
//! every simulated run 3× slower on the host gets caught.
//!
//! Two outputs:
//!
//! * `results/selfperf.json` — the usual [`Report`] twin of the table
//!   printed below (schema-gated by `validate_results`).
//! * `BENCH_selfperf.json` at the repo root — the **trajectory**: one
//!   entry per run, appended, so the host cost of the suite can be
//!   plotted across commits. Host times are machine-dependent, so CI
//!   schema-gates this file but never byte-compares it.
//!
//! `--quick` shrinks every workload for CI smoke runs; the recorded
//! entry is marked `"quick": true` so trajectory plots can separate
//! the two populations.

use std::time::{Instant, SystemTime, UNIX_EPOCH};

use sjmp_bench::{quick_mode, Report};
use sjmp_genome::{run_pipeline, StorageMode, WorkloadConfig};
use sjmp_gups::{run as run_gups, Design, GupsConfig};
use sjmp_kv::{run_jmp, run_overload, KvBenchConfig, OverloadConfig};
use sjmp_mem::cost::{MachineId, MachineProfile};
use sjmp_sim::Arrival;
use sjmp_trace::Json;

/// One workload's host-vs-simulated measurement.
struct Probe {
    name: &'static str,
    sim_cycles: u64,
    host_ns: u64,
}

impl Probe {
    /// Host nanoseconds per simulated cycle — the trajectory metric.
    fn ns_per_cycle(&self) -> f64 {
        self.host_ns as f64 / self.sim_cycles.max(1) as f64
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("workload".into(), Json::str(self.name)),
            ("sim_cycles".into(), Json::from_u64(self.sim_cycles)),
            ("host_ns".into(), Json::from_u64(self.host_ns)),
            ("ns_per_sim_cycle".into(), Json::Float(self.ns_per_cycle())),
        ])
    }
}

/// Times `f` on the host; `f` returns the simulated cycles it covered.
fn probe(name: &'static str, f: impl FnOnce() -> u64) -> Probe {
    let t0 = Instant::now();
    let sim_cycles = f();
    let host_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    Probe {
        name,
        sim_cycles,
        host_ns,
    }
}

fn main() {
    let quick = quick_mode();

    let gups = probe("gups", || {
        let cfg = GupsConfig {
            windows: 8,
            epochs: if quick { 32 } else { 192 },
            ..GupsConfig::default()
        };
        run_gups(Design::Jmp, &cfg).expect("gups").cycles
    });

    let kv = probe("kv", || {
        let cfg = KvBenchConfig {
            clients: 8,
            requests_per_client: if quick { 100 } else { 400 },
            set_pct: 10,
            ..KvBenchConfig::default()
        };
        run_jmp(&cfg).expect("kv").cycles
    });

    let genome = probe("genome", || {
        let cfg = WorkloadConfig {
            records: if quick { 2_000 } else { 8_000 },
            ..WorkloadConfig::default()
        };
        let t = run_pipeline(StorageMode::SpaceJmp, &cfg).expect("genome");
        // OpTimes reports simulated seconds (M2); recover cycles.
        let total_secs = t.flagstat + t.qname_sort + t.coordinate_sort + t.index;
        MachineProfile::of(MachineId::M2).secs_to_cycles(total_secs)
    });

    let overload = probe("overload", || {
        let cfg = OverloadConfig {
            requests: if quick { 4_000 } else { 16_000 },
            clients: 2_000,
            arrival: Arrival::Poisson { mean_gap: 1_500.0 },
            ..OverloadConfig::default()
        };
        let res = run_overload(&cfg).expect("overload");
        MachineProfile::of(cfg.machine).secs_to_cycles(res.secs)
    });

    let probes = [gups, kv, genome, overload];

    let mut report = Report::new("selfperf");
    report.heading(&format!(
        "Self-perf: host cost per simulated cycle ({})",
        if quick { "quick" } else { "full" }
    ));
    let w = &[10usize, 14, 12, 16];
    report.header(&["workload", "sim cycles", "host ms", "ns/sim-cycle"], w);
    for p in &probes {
        report.row(
            &[
                p.name.to_string(),
                p.sim_cycles.to_string(),
                format!("{:.1}", p.host_ns as f64 / 1e6),
                format!("{:.4}", p.ns_per_cycle()),
            ],
            w,
        );
    }
    report.note("host times vary by machine; compare trends, not absolutes");
    report.note("trajectory: BENCH_selfperf.json (one entry per run)");
    report.finish();

    append_trajectory(&probes, quick);
}

/// Appends this run to the `BENCH_selfperf.json` trajectory at the repo
/// root (created on first run). Malformed existing content is replaced
/// rather than crashing the harness: the trajectory is telemetry, not
/// ground truth.
fn append_trajectory(probes: &[Probe], quick: bool) {
    const PATH: &str = "BENCH_selfperf.json";
    let mut runs: Vec<Json> = std::fs::read_to_string(PATH)
        .ok()
        .and_then(|s| Json::parse(&s).ok())
        .and_then(|doc| doc.get("runs").and_then(Json::as_arr).map(<[Json]>::to_vec))
        .unwrap_or_default();
    let unix_secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    runs.push(Json::Obj(vec![
        ("unix_secs".into(), Json::from_u64(unix_secs)),
        ("quick".into(), Json::Bool(quick)),
        (
            "workloads".into(),
            Json::Arr(probes.iter().map(Probe::to_json).collect()),
        ),
    ]));
    let doc = Json::Obj(vec![
        ("bench".into(), Json::str("selfperf")),
        ("runs".into(), Json::Arr(runs)),
    ]);
    std::fs::write(PATH, doc.pretty()).expect("write BENCH_selfperf.json");
    println!("appended run to {PATH}");
}
