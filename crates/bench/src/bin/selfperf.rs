//! `selfperf` — the self-performance trajectory harness.
//!
//! Every other bench binary measures the *simulated* machine; this one
//! measures the *simulator*: host wall-clock nanoseconds spent per
//! simulated cycle, for one representative run of each major workload
//! family (GUPS, the RedisJMP closed loop, the SAMTools pipeline, and
//! the open-loop overload engine). The ratio is the number future
//! speedup work (translation caching, ROADMAP item 2) must drive down
//! — and the number CI watches so a "harmless" refactor that makes
//! every simulated run 3× slower on the host gets caught.
//!
//! Two outputs:
//!
//! * `results/selfperf.json` — the usual [`Report`] twin of the table
//!   printed below (schema-gated by `validate_results`).
//! * `BENCH_selfperf.json` at the repo root — the **trajectory**: one
//!   entry per run, appended, so the host cost of the suite can be
//!   plotted across commits. Host times are machine-dependent, so CI
//!   schema-gates this file but never byte-compares it.
//!
//! `--quick` shrinks every workload for CI smoke runs; the recorded
//! entry is marked `"quick": true` so trajectory plots can separate
//! the two populations.

use std::time::{Instant, SystemTime, UNIX_EPOCH};

use sjmp_bench::{quick_mode, Report};
use sjmp_genome::{run_pipeline, StorageMode, WorkloadConfig};
use sjmp_gups::{run as run_gups, Design, GupsConfig};
use sjmp_kv::{run_jmp, run_overload, KvBenchConfig, OverloadConfig};
use sjmp_mem::cost::{MachineId, MachineProfile};
use sjmp_mem::TranslationKind;
use sjmp_sim::Arrival;
use sjmp_trace::Json;

/// One workload's host-vs-simulated measurement.
struct Probe {
    name: &'static str,
    sim_cycles: u64,
    host_ns: u64,
}

impl Probe {
    /// Host nanoseconds per simulated cycle — the trajectory metric.
    fn ns_per_cycle(&self) -> f64 {
        self.host_ns as f64 / self.sim_cycles.max(1) as f64
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("workload".into(), Json::str(self.name)),
            ("sim_cycles".into(), Json::from_u64(self.sim_cycles)),
            ("host_ns".into(), Json::from_u64(self.host_ns)),
            ("ns_per_sim_cycle".into(), Json::Float(self.ns_per_cycle())),
        ])
    }
}

/// Times `f` on the host, keeping the fastest of `iters` runs — the
/// min is the noise-robust estimator for a deterministic workload,
/// since host interference only ever adds time. `f` returns the
/// simulated cycles it covered (identical across runs: the simulator
/// is deterministic).
fn probe(name: &'static str, iters: u32, mut f: impl FnMut() -> u64) -> Probe {
    let mut host_ns = u64::MAX;
    let mut sim_cycles = 0;
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        sim_cycles = f();
        host_ns = host_ns.min(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    Probe {
        name,
        sim_cycles,
        host_ns,
    }
}

/// Runs the JMP GUPS workload `iters` times per translation backend,
/// keeping each backend's run with the fastest measured region. Unlike
/// [`probe`], host time comes from [`sjmp_gups::GupsResult::host_ns`] —
/// only the epochs the simulated cycle count covers, not setup — and
/// the backends are *interleaved* round-robin, so a slow host phase
/// penalizes all of them equally instead of whichever ran during it.
fn gups_probes(cfg: &GupsConfig, iters: u32) -> Vec<(Probe, sjmp_gups::GupsResult)> {
    let kinds = [
        ("gups", TranslationKind::FourLevel),
        ("gups/nocache", TranslationKind::FourLevelUncached),
        ("gups/novm", TranslationKind::NoVm),
    ];
    let mut best: [Option<sjmp_gups::GupsResult>; 3] = [None; 3];
    for _ in 0..iters.max(1) {
        for ((name, kind), slot) in kinds.iter().zip(best.iter_mut()) {
            let cfg = GupsConfig {
                backend: *kind,
                ..cfg.clone()
            };
            let r = run_gups(Design::Jmp, &cfg).expect(name);
            if slot.is_none_or(|b| r.host_ns < b.host_ns) {
                *slot = Some(r);
            }
        }
    }
    kinds
        .iter()
        .zip(best)
        .map(|((name, _), r)| {
            let r = r.expect("at least one iteration");
            (
                Probe {
                    name,
                    sim_cycles: r.cycles,
                    host_ns: r.host_ns,
                },
                r,
            )
        })
        .collect()
}

fn main() {
    let quick = quick_mode();
    // Quick mode is a CI schema smoke — one iteration is enough; full
    // runs take the best of three so the trajectory tracks simulator
    // cost, not scheduler luck.
    let iters = if quick { 1 } else { 3 };

    // 8 MiB windows (2x the M3 TLB's 4 MiB reach) over many epochs:
    // with tagging off every window switch flushes the TLB, so the
    // measured region is dominated by the translation work the backend
    // rows below compare — not by first-touch frame materialization,
    // which a 64 MiB-window config spends most of its host time on.
    let gups_cfg = GupsConfig {
        windows: 8,
        window_bytes: 8 << 20,
        epochs: if quick { 32 } else { 768 },
        ..GupsConfig::default()
    };
    // One discarded warmup run so the first timed probe doesn't absorb
    // host-side one-time costs (allocator arenas, lazy page faults) —
    // without it the backend comparison below measures warmup, not the
    // walk cache.
    let _ = run_gups(Design::Jmp, &gups_cfg).expect("gups warmup");
    // The same GUPS run once per translation backend: the host walk
    // cache must be invisible to the simulation (identical cycles and
    // TLB misses, only host ns/sim-cycle may differ), and the no-VM
    // base+bound backend must undercut the walking backend's cycles.
    // These three probes use the run's own measured-region host time
    // (`GupsResult::host_ns`) rather than timing the whole call, so the
    // backend comparison is not diluted by VAS/segment construction —
    // the host span matches exactly what `cycles` covers.
    // The backend rows get extra rounds: the walk-cache delta they
    // exist to expose is a few percent, so they need more noise
    // suppression than the absolute per-workload rows do.
    let mut trio = gups_probes(&gups_cfg, if quick { 1 } else { 5 }).into_iter();
    let (gups, cached) = trio.next().expect("gups probe");
    let (gups_nocache, uncached) = trio.next().expect("gups/nocache probe");
    let (gups_novm, novm) = trio.next().expect("gups/novm probe");
    assert_eq!(
        (cached.cycles, cached.tlb_misses),
        (uncached.cycles, uncached.tlb_misses),
        "host walk cache leaked into the simulation"
    );
    assert!(
        novm.cycles < cached.cycles,
        "no-VM baseline must be a lower bound: {} vs {}",
        novm.cycles,
        cached.cycles
    );

    let kv = probe("kv", iters, || {
        let cfg = KvBenchConfig {
            clients: 8,
            requests_per_client: if quick { 100 } else { 400 },
            set_pct: 10,
            ..KvBenchConfig::default()
        };
        run_jmp(&cfg).expect("kv").cycles
    });

    let genome = probe("genome", iters, || {
        let cfg = WorkloadConfig {
            records: if quick { 2_000 } else { 8_000 },
            ..WorkloadConfig::default()
        };
        let t = run_pipeline(StorageMode::SpaceJmp, &cfg).expect("genome");
        // OpTimes reports simulated seconds (M2); recover cycles.
        let total_secs = t.flagstat + t.qname_sort + t.coordinate_sort + t.index;
        MachineProfile::of(MachineId::M2).secs_to_cycles(total_secs)
    });

    let overload = probe("overload", iters, || {
        let cfg = OverloadConfig {
            requests: if quick { 4_000 } else { 16_000 },
            clients: 2_000,
            arrival: Arrival::Poisson { mean_gap: 1_500.0 },
            ..OverloadConfig::default()
        };
        let res = run_overload(&cfg).expect("overload");
        MachineProfile::of(cfg.machine).secs_to_cycles(res.secs)
    });

    let probes = [gups, gups_nocache, gups_novm, kv, genome, overload];

    let mut report = Report::new("selfperf");
    report.heading(&format!(
        "Self-perf: host cost per simulated cycle ({})",
        if quick { "quick" } else { "full" }
    ));
    let w = &[12usize, 14, 12, 16];
    report.header(&["workload", "sim cycles", "host ms", "ns/sim-cycle"], w);
    for p in &probes {
        report.row(
            &[
                p.name.to_string(),
                p.sim_cycles.to_string(),
                format!("{:.1}", p.host_ns as f64 / 1e6),
                format!("{:.4}", p.ns_per_cycle()),
            ],
            w,
        );
    }
    report.note("host times vary by machine; compare trends, not absolutes.");
    report.note("full runs time each workload repeatedly after a warmup and");
    report.note("keep the fastest run (interference only ever adds time).");
    report.note("gups rows time only the measured epochs (setup excluded) so");
    report.note("translation backends compare cleanly: gups/nocache repeats gups");
    report.note("with the host walk cache off (identical sim cycles, asserted);");
    report.note("gups/novm is the base+bound backend");
    report.note("trajectory: BENCH_selfperf.json (one entry per run)");
    report.finish();

    append_trajectory(&probes, quick);
}

/// Appends this run to the `BENCH_selfperf.json` trajectory at the repo
/// root (created on first run). Malformed existing content is replaced
/// rather than crashing the harness: the trajectory is telemetry, not
/// ground truth.
fn append_trajectory(probes: &[Probe], quick: bool) {
    const PATH: &str = "BENCH_selfperf.json";
    let mut runs: Vec<Json> = std::fs::read_to_string(PATH)
        .ok()
        .and_then(|s| Json::parse(&s).ok())
        .and_then(|doc| doc.get("runs").and_then(Json::as_arr).map(<[Json]>::to_vec))
        .unwrap_or_default();
    let unix_secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    runs.push(Json::Obj(vec![
        ("unix_secs".into(), Json::from_u64(unix_secs)),
        ("quick".into(), Json::Bool(quick)),
        (
            "workloads".into(),
            Json::Arr(probes.iter().map(Probe::to_json).collect()),
        ),
    ]));
    let doc = Json::Obj(vec![
        ("bench".into(), Json::str("selfperf")),
        ("runs".into(), Json::Arr(runs)),
    ]);
    std::fs::write(PATH, doc.pretty()).expect("write BENCH_selfperf.json");
    println!("appended run to {PATH}");
}
