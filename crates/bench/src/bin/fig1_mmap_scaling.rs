//! Figure 1: page-table construction (`mmap`) and removal (`munmap`)
//! costs vs region size, 4 KiB pages, plain and `cached` variants.
//!
//! The paper: "constructing page tables for a 1 GiB region using 4 KiB
//! pages takes about 5 ms; for 64 GiB the cost is about 2 seconds."
//! Regions sweep 2^15..2^35 bytes as in the figure (use `--quick` for a
//! shorter sweep). Times are simulated milliseconds on machine M2.

use sjmp_bench::{human_bytes, pow2_ticks, quick_mode, Report};
use sjmp_mem::{KernelFlavor, MachineId, PteFlags};
use sjmp_os::{Creds, Kernel};

fn measure(size: u64, cached: bool) -> (f64, f64) {
    let mut kernel = Kernel::new(KernelFlavor::DragonFly, MachineId::M2);
    let pid = kernel.spawn("fig1", Creds::new(1, 1)).expect("spawn");
    let profile = kernel.profile().clone();
    let flags = PteFlags::USER | PteFlags::WRITABLE;
    let t0 = kernel.clock().now();
    let va = kernel.sys_mmap(pid, size, flags, cached).expect("mmap");
    let map_ms = profile.cycles_to_secs(kernel.clock().since(t0)) * 1e3;
    let t1 = kernel.clock().now();
    kernel.sys_munmap(pid, va, cached).expect("munmap");
    let unmap_ms = profile.cycles_to_secs(kernel.clock().since(t1)) * 1e3;
    (map_ms, unmap_ms)
}

fn main() {
    let hi = if quick_mode() { 27 } else { 35 };
    let mut report = Report::new("fig1_mmap_scaling");
    report.heading("Figure 1: mmap/munmap latency vs region size (4 KiB pages, M2)");
    report.header(
        &["size", "map[ms]", "unmap[ms]", "map-cached", "unmap-cached"],
        &[10, 12, 12, 12, 12],
    );
    for size in pow2_ticks(15, hi, 2) {
        let (map, unmap) = measure(size, false);
        let (map_c, unmap_c) = measure(size, true);
        report.row(
            &[
                human_bytes(size),
                format!("{map:.4}"),
                format!("{unmap:.4}"),
                format!("{map_c:.4}"),
                format!("{unmap_c:.4}"),
            ],
            &[10, 12, 12, 12, 12],
        );
    }
    report.note("\npaper anchors: 1 GiB ~ 5 ms; 64 GiB ~ 2000 ms (uncached map)");
    report.finish();
}
