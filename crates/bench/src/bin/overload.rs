//! Overload: open-loop saturation sweeps of the sharded RedisJMP store.
//!
//! For each machine profile (M1/M2/M3) the sweep measures per-op costs
//! live, estimates the saturation throughput, then offers Poisson
//! open-loop load at fractions of that estimate from well below to 2x
//! past it, reporting goodput, shed rate, and p50/p99/p999 latency of
//! within-deadline completions. Two more sections stress the shape and
//! the failure mode: a bursty (on/off) arrival process at the same
//! long-run rate, and a degraded run where half the shards flip
//! read-only mid-experiment (the memory-pressure signal).
//!
//! The bin **self-gates**: goodput at 2x saturation must hold at least
//! 90% of goodput at saturation on every machine (shed-not-queue), and
//! recorded completion latency may never exceed the deadline. Any
//! violation exits nonzero, so CI catches an overload-control
//! regression without parsing the tables.
//!
//! A final section runs with request tracing on and prints **tail
//! exemplars**: the slowest within-deadline requests with latency
//! decomposed into backoff / queue / switch / service phases
//! (gated to sum to the end-to-end latency within 1%), plus the full
//! span trees as machine-readable notes in `results/overload.json`.
//!
//! `--quick` shrinks the sweep for CI. With `SJMP_TRACE=1` the
//! cost-measurement kernels record events, exported to
//! `results/overload.trace.json` / `.metrics.json`.

use std::process::ExitCode;

use sjmp_bench::{export_trace, quick_mode, trace_from_env, Report};
use sjmp_kv::{
    measure_costs_on, run_overload, run_overload_at, saturation_rps, OverloadConfig, OverloadResult,
};
use sjmp_mem::cost::{MachineId, MachineProfile};
use sjmp_sim::Arrival;
use sjmp_trace::Tracer;

/// SET share of the sweep traffic.
const SET_PCT: u8 = 10;
/// Shards of the store.
const SHARDS: usize = 4;
/// Relative deadline budget in cycles (~0.75 ms at 2.66 GHz).
const DEADLINE: u64 = 2_000_000;

const SWEEP_COLS: [&str; 9] = [
    "load",
    "offered/s",
    "goodput/s",
    "shed%",
    "p50us",
    "p99us",
    "p999lo",
    "p999us",
    "maxq",
];
const SWEEP_W: [usize; 9] = [7, 11, 11, 7, 8, 8, 8, 8, 6];

fn base_cfg(machine: MachineId, quick: bool, tracer: &Tracer) -> OverloadConfig {
    OverloadConfig {
        machine,
        shards: SHARDS,
        set_pct: SET_PCT,
        deadline: DEADLINE,
        requests: if quick { 6_000 } else { 24_000 },
        clients: 20_000,
        tracer: tracer.clone(),
        ..OverloadConfig::default()
    }
}

fn us(machine: MachineId, cycles: u64) -> f64 {
    MachineProfile::of(machine).cycles_to_secs(cycles) * 1e6
}

fn sweep_row(report: &mut Report, machine: MachineId, label: &str, r: &OverloadResult) {
    report.row(
        &[
            label.to_string(),
            format!("{:.0}", r.offered_rps),
            format!("{:.0}", r.goodput_rps),
            format!("{:.1}", r.shed_rate * 100.0),
            format!("{:.0}", us(machine, r.p50)),
            format!("{:.0}", us(machine, r.p99)),
            // The exact bracket around the true p999: the log2-bucket
            // lower edge and the conservative upper bound the gates use.
            format!("{:.0}", us(machine, r.p999_bounds.0)),
            format!("{:.0}", us(machine, r.p999_bounds.1)),
            r.max_queue.to_string(),
        ],
        &SWEEP_W,
    );
}

/// Goodput at saturation and at 2x, for the retention gate.
struct Retention {
    machine: MachineId,
    at_sat: f64,
    at_2x: f64,
}

fn poisson_sweep(
    report: &mut Report,
    machine: MachineId,
    quick: bool,
    tracer: &Tracer,
) -> Result<Retention, String> {
    let cfg = base_cfg(machine, quick, tracer);
    let costs =
        measure_costs_on(machine, false, tracer.clone()).map_err(|e| format!("costs: {e:?}"))?;
    let sat = saturation_rps(&costs, machine, SET_PCT, SHARDS);
    let profile = MachineProfile::of(machine);
    report.heading(&format!(
        "Saturation sweep: {machine:?} ({} cores, Poisson, {SET_PCT}% SET, {SHARDS} shards, est. saturation {:.0}/s)",
        profile.total_cores(),
        sat,
    ));
    report.header(&SWEEP_COLS, &SWEEP_W);
    let points: &[f64] = if quick {
        &[0.5, 1.0, 2.0]
    } else {
        &[0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0]
    };
    let mut at_sat = 0.0f64;
    let mut at_2x = 0.0f64;
    for &frac in points {
        let r = run_overload_at(&cfg, frac * sat).map_err(|e| format!("sweep: {e:?}"))?;
        if !r.accounted() {
            return Err(format!("{machine:?} {frac}x: request accounting leak"));
        }
        if r.latency.max > DEADLINE {
            return Err(format!(
                "{machine:?} {frac}x: recorded completion latency {} past the {DEADLINE}-cycle deadline",
                r.latency.max
            ));
        }
        if frac == 1.0 {
            at_sat = r.goodput_rps;
        }
        if frac == 2.0 {
            at_2x = r.goodput_rps;
        }
        sweep_row(report, machine, &format!("{frac:.2}x"), &r);
    }
    Ok(Retention {
        machine,
        at_sat,
        at_2x,
    })
}

fn bursty_section(report: &mut Report, quick: bool, tracer: &Tracer) -> Result<(), String> {
    let machine = MachineId::M1;
    let mut cfg = base_cfg(machine, quick, tracer);
    // 100 µs bursts separated by 300 µs of silence: 4x the instantaneous
    // rate inside a burst at the same long-run offered load.
    cfg.arrival = Arrival::Bursty {
        mean_gap: 2_000.0,
        on_cycles: 266_000,
        off_cycles: 798_000,
    };
    let costs =
        measure_costs_on(machine, false, tracer.clone()).map_err(|e| format!("costs: {e:?}"))?;
    let sat = saturation_rps(&costs, machine, SET_PCT, SHARDS);
    report.heading(&format!(
        "Bursty arrivals: {machine:?} (on/off 100us/300us, same long-run load)"
    ));
    report.header(&SWEEP_COLS, &SWEEP_W);
    let points: &[f64] = if quick { &[1.0] } else { &[0.5, 1.0, 1.5] };
    for &frac in points {
        let r = run_overload_at(&cfg, frac * sat).map_err(|e| format!("bursty: {e:?}"))?;
        if r.latency.max > DEADLINE {
            return Err(format!(
                "bursty {frac}x: completion latency {} past deadline",
                r.latency.max
            ));
        }
        sweep_row(report, machine, &format!("{frac:.2}x"), &r);
    }
    Ok(())
}

fn degraded_section(report: &mut Report, quick: bool, tracer: &Tracer) -> Result<(), String> {
    let machine = MachineId::M1;
    let mut cfg = base_cfg(machine, quick, tracer);
    cfg.set_pct = 30;
    report.heading(&format!(
        "Degraded mode: {machine:?} (30% SET; memory pressure flips 2 of {SHARDS} shards read-only at t=0)"
    ));
    report.header(
        &["mode", "offered", "goodput/s", "set_rej", "completed"],
        &[10, 9, 11, 9, 10],
    );
    let costs =
        measure_costs_on(machine, false, tracer.clone()).map_err(|e| format!("costs: {e:?}"))?;
    let sat = saturation_rps(&costs, machine, 30, SHARDS);
    let gap = sjmp_kv::rps_to_mean_gap(machine, 0.8 * sat);
    cfg.arrival = Arrival::Poisson { mean_gap: gap };
    let healthy = run_overload(&cfg).map_err(|e| format!("healthy: {e:?}"))?;
    cfg.degrade_at = Some(0);
    cfg.degraded_shards = 2;
    let degraded = run_overload(&cfg).map_err(|e| format!("degraded: {e:?}"))?;
    for (label, r) in [("healthy", &healthy), ("degraded", &degraded)] {
        report.row(
            &[
                label.to_string(),
                r.offered.to_string(),
                format!("{:.0}", r.goodput_rps),
                r.degraded_rejects.to_string(),
                r.completed.to_string(),
            ],
            &[10, 9, 11, 9, 10],
        );
    }
    if degraded.degraded_rejects == 0 {
        return Err("degraded shards rejected no SETs".into());
    }
    if degraded.completed == 0 {
        return Err("degraded store served nothing — reads must continue".into());
    }
    Ok(())
}

/// Tail forensics: re-run the M1 sweep point past saturation with
/// request tracing on and decompose the slowest within-deadline
/// completions into backoff / queue / switch / service. Self-gates that
/// the phase decomposition sums to the end-to-end latency within 1%
/// (it is exact by construction; the gate catches reassembly drift)
/// and that shedding is spread fairly over the uniform client
/// population.
fn exemplar_section(report: &mut Report, quick: bool, tracer: &Tracer) -> Result<(), String> {
    let machine = MachineId::M1;
    let mut cfg = base_cfg(machine, quick, tracer);
    cfg.trace_requests = true;
    cfg.exemplars = 5;
    let costs =
        measure_costs_on(machine, false, tracer.clone()).map_err(|e| format!("costs: {e:?}"))?;
    let sat = saturation_rps(&costs, machine, SET_PCT, SHARDS);
    let r = run_overload_at(&cfg, 1.5 * sat).map_err(|e| format!("exemplars: {e:?}"))?;
    report.heading(&format!(
        "Tail exemplars: {machine:?} at 1.50x saturation (slowest within-deadline requests)"
    ));
    let w = [5usize, 7, 10, 10, 10, 10, 10, 8];
    report.header(
        &[
            "rank",
            "req",
            "latency_us",
            "backoff_us",
            "queue_us",
            "switch_us",
            "service_us",
            "retries",
        ],
        &w,
    );
    if r.exemplars.is_empty() {
        return Err("no tail exemplars captured with request tracing on".into());
    }
    for (rank, ex) in r.exemplars.iter().enumerate() {
        let total = ex.phases.total();
        let err = total.abs_diff(ex.latency());
        if err * 100 > ex.latency().max(1) {
            return Err(format!(
                "exemplar {}: phases sum to {total} but latency is {} (>1% off)",
                ex.id,
                ex.latency()
            ));
        }
        report.row(
            &[
                (rank + 1).to_string(),
                ex.id.to_string(),
                format!("{:.1}", us(machine, ex.latency())),
                format!("{:.1}", us(machine, ex.phases.backoff)),
                format!("{:.1}", us(machine, ex.phases.queue)),
                format!("{:.1}", us(machine, ex.phases.switch)),
                format!("{:.1}", us(machine, ex.phases.service)),
                ex.retries.to_string(),
            ],
            &w,
        );
    }
    // The full span trees, machine-readable, for forensic replay.
    for ex in &r.exemplars {
        let mut line = String::from("exemplar: ");
        ex.to_json().write(&mut line);
        report.note(&line);
    }
    report.note(&format!(
        "exemplar decomposition gate: backoff+queue+switch+service == latency (±1%) for all {} spans",
        r.exemplars.len()
    ));
    if r.shed > 0 {
        let mean = r.shed as f64 / r.client_sheds.len() as f64;
        report.note(&format!(
            "shed fairness: {} sheds over {} clients, heaviest client {} (mean {mean:.3})",
            r.shed,
            r.client_sheds.len(),
            r.max_client_sheds
        ));
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let quick = quick_mode();
    let tracer = trace_from_env();
    let mut report = Report::new("overload");
    let mut retention = Vec::new();
    for machine in [MachineId::M1, MachineId::M2, MachineId::M3] {
        retention.push(poisson_sweep(&mut report, machine, quick, &tracer)?);
    }
    bursty_section(&mut report, quick, &tracer)?;
    degraded_section(&mut report, quick, &tracer)?;
    exemplar_section(&mut report, quick, &tracer)?;

    report.note("\nopen loop: arrivals keep coming at the offered rate; without");
    report.note("admission control, queues past saturation grow without bound and");
    report.note("goodput collapses. Shedding at the per-shard queue bound keeps the");
    report.note("tables flat: goodput holds past 2x saturation while shed% absorbs");
    report.note("the excess, and p999 of admitted requests stays under the deadline");
    report.note(&format!(
        "budget ({DEADLINE} cycles; ~{:.0}us on M1).",
        us(MachineId::M1, DEADLINE)
    ));
    for r in &retention {
        let ratio = if r.at_sat > 0.0 {
            r.at_2x / r.at_sat
        } else {
            0.0
        };
        report.note(&format!(
            "{:?}: goodput at 2x saturation holds {:.0}% of saturation goodput",
            r.machine,
            ratio * 100.0
        ));
        if ratio < 0.9 {
            report.note(&format!(
                "overload verdict: FAIL ({:?} retains only {:.0}%)",
                r.machine,
                ratio * 100.0
            ));
            report.finish();
            return Err(format!(
                "{:?}: goodput at 2x saturation is {:.0}% of saturation (< 90%)",
                r.machine,
                ratio * 100.0
            ));
        }
    }
    report.note("overload verdict: PASS");
    report.finish();

    if tracer.enabled() {
        export_trace(
            "overload",
            &tracer,
            MachineProfile::of(MachineId::M1).freq_hz,
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("FAIL {e}");
            ExitCode::FAILURE
        }
    }
}
