//! Figure 10: Redis vs RedisJMP throughput on M1.
//!
//! * `get` (Fig. 10a): GET throughput vs client count — RedisJMP,
//!   RedisJMP with TLB tags, a single Redis instance, and six instances.
//! * `set` (Fig. 10b): SET throughput vs client count — RedisJMP vs
//!   Redis.
//! * `mixed` (Fig. 10c): total throughput vs SET percentage at a fixed
//!   client count.
//!
//! Select with `cargo run -p sjmp-bench --bin fig10_redis -- get|set|mixed`
//! (default: all three).

use sjmp_bench::{heading, quick_mode, row};
use sjmp_kv::{run_classic, run_jmp, KvBenchConfig};

fn cfg(clients: usize, set_pct: u8, tagging: bool, quick: bool) -> KvBenchConfig {
    KvBenchConfig {
        clients,
        requests_per_client: if quick { 40 } else { 150 },
        set_pct,
        tagging,
        ..KvBenchConfig::default()
    }
}

fn kfmt(rps: f64) -> String {
    format!("{:.0}K", rps / 1e3)
}

fn fig10a(quick: bool) {
    heading("Figure 10a: GET throughput vs clients (M1, requests/second)");
    row(
        &["clients", "RedisJMP", "RedisJMP(tags)", "Redis", "Redis 6x"],
        &[8, 10, 14, 10, 10],
    );
    let clients: &[usize] = if quick {
        &[1, 8, 24]
    } else {
        &[1, 2, 4, 8, 12, 16, 24, 48, 100]
    };
    for &n in clients {
        let jmp = run_jmp(&cfg(n, 0, false, quick)).expect("jmp");
        let tags = run_jmp(&cfg(n, 0, true, quick)).expect("tags");
        let redis = run_classic(&cfg(n, 0, false, quick), 1).expect("redis");
        let redis6 = run_classic(&cfg(n, 0, false, quick), 6).expect("redis6");
        row(
            &[
                n.to_string(),
                kfmt(jmp.rps),
                kfmt(tags.rps),
                kfmt(redis.rps),
                kfmt(redis6.rps),
            ],
            &[8, 10, 14, 10, 10],
        );
    }
}

fn fig10b(quick: bool) {
    heading("Figure 10b: SET throughput vs clients (M1, requests/second)");
    row(&["clients", "RedisJMP", "Redis"], &[8, 10, 10]);
    let clients: &[usize] = if quick {
        &[1, 8, 24]
    } else {
        &[1, 2, 4, 8, 12, 16, 24, 48, 100]
    };
    for &n in clients {
        let jmp = run_jmp(&cfg(n, 100, false, quick)).expect("jmp");
        let redis = run_classic(&cfg(n, 100, false, quick), 1).expect("redis");
        row(
            &[n.to_string(), kfmt(jmp.rps), kfmt(redis.rps)],
            &[8, 10, 10],
        );
    }
}

fn fig10c(quick: bool) {
    heading("Figure 10c: mixed GET/SET throughput vs SET share (24 clients, M1)");
    row(&["SET %", "RedisJMP", "Redis"], &[8, 10, 10]);
    let steps: &[u8] = if quick {
        &[0, 50, 100]
    } else {
        &[0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
    };
    for &pct in steps {
        let jmp = run_jmp(&cfg(24, pct, false, quick)).expect("jmp");
        let redis = run_classic(&cfg(24, pct, false, quick), 1).expect("redis");
        row(
            &[pct.to_string(), kfmt(jmp.rps), kfmt(redis.rps)],
            &[8, 10, 10],
        );
    }
}

fn main() {
    let quick = quick_mode();
    let which: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| a != "--quick")
        .collect();
    let all = which.is_empty() || which.iter().any(|w| w == "all");
    if all || which.iter().any(|w| w == "get") {
        fig10a(quick);
    }
    if all || which.iter().any(|w| w == "set") {
        fig10b(quick);
    }
    if all || which.iter().any(|w| w == "mixed") {
        fig10c(quick);
    }
    println!("\npaper: RedisJMP ~4x a single Redis at one client; scales with");
    println!("cores for GETs (tags slightly ahead) and beats six Redis instances;");
    println!("SETs serialize on the segment lock and degrade as clients contend");
}
