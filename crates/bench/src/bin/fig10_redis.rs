//! Figure 10: Redis vs RedisJMP throughput on M1.
//!
//! * `get` (Fig. 10a): GET throughput vs client count — RedisJMP,
//!   RedisJMP with TLB tags, a single Redis instance, and six instances.
//! * `set` (Fig. 10b): SET throughput vs client count — RedisJMP vs
//!   Redis.
//! * `mixed` (Fig. 10c): total throughput vs SET percentage at a fixed
//!   client count.
//!
//! Select with `cargo run -p sjmp-bench --bin fig10_redis -- get|set|mixed`
//! (default: all three).
//!
//! With `SJMP_TRACE=1` the RedisJMP switch-and-serve path records
//! events; the trace of a dedicated mixed workload is exported to
//! `results/fig10_redis.trace.json` and `results/fig10_redis.metrics.json`.

use sjmp_bench::{export_trace, quick_mode, trace_from_env, Report};
use sjmp_kv::{run_classic, run_jmp, KvBenchConfig};
use sjmp_mem::cost::{MachineId, MachineProfile};
use sjmp_trace::Tracer;

fn cfg(clients: usize, set_pct: u8, tagging: bool, quick: bool, tracer: &Tracer) -> KvBenchConfig {
    KvBenchConfig {
        clients,
        requests_per_client: if quick { 40 } else { 150 },
        set_pct,
        tagging,
        tracer: tracer.clone(),
        ..KvBenchConfig::default()
    }
}

fn kfmt(rps: f64) -> String {
    format!("{:.0}K", rps / 1e3)
}

fn fig10a(report: &mut Report, quick: bool, tracer: &Tracer) {
    report.heading("Figure 10a: GET throughput vs clients (M1, requests/second)");
    report.header(
        &["clients", "RedisJMP", "RedisJMP(tags)", "Redis", "Redis 6x"],
        &[8, 10, 14, 10, 10],
    );
    let clients: &[usize] = if quick {
        &[1, 8, 24]
    } else {
        &[1, 2, 4, 8, 12, 16, 24, 48, 100]
    };
    for &n in clients {
        let jmp = run_jmp(&cfg(n, 0, false, quick, tracer)).expect("jmp");
        let tags = run_jmp(&cfg(n, 0, true, quick, tracer)).expect("tags");
        let redis = run_classic(&cfg(n, 0, false, quick, tracer), 1).expect("redis");
        let redis6 = run_classic(&cfg(n, 0, false, quick, tracer), 6).expect("redis6");
        report.row(
            &[
                n.to_string(),
                kfmt(jmp.rps),
                kfmt(tags.rps),
                kfmt(redis.rps),
                kfmt(redis6.rps),
            ],
            &[8, 10, 14, 10, 10],
        );
    }
}

fn fig10b(report: &mut Report, quick: bool, tracer: &Tracer) {
    report.heading("Figure 10b: SET throughput vs clients (M1, requests/second)");
    report.header(&["clients", "RedisJMP", "Redis"], &[8, 10, 10]);
    let clients: &[usize] = if quick {
        &[1, 8, 24]
    } else {
        &[1, 2, 4, 8, 12, 16, 24, 48, 100]
    };
    for &n in clients {
        let jmp = run_jmp(&cfg(n, 100, false, quick, tracer)).expect("jmp");
        let redis = run_classic(&cfg(n, 100, false, quick, tracer), 1).expect("redis");
        report.row(
            &[n.to_string(), kfmt(jmp.rps), kfmt(redis.rps)],
            &[8, 10, 10],
        );
    }
}

fn fig10c(report: &mut Report, quick: bool, tracer: &Tracer) {
    report.heading("Figure 10c: mixed GET/SET throughput vs SET share (24 clients, M1)");
    report.header(&["SET %", "RedisJMP", "Redis"], &[8, 10, 10]);
    let steps: &[u8] = if quick {
        &[0, 50, 100]
    } else {
        &[0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
    };
    for &pct in steps {
        let jmp = run_jmp(&cfg(24, pct, false, quick, tracer)).expect("jmp");
        let redis = run_classic(&cfg(24, pct, false, quick, tracer), 1).expect("redis");
        report.row(
            &[pct.to_string(), kfmt(jmp.rps), kfmt(redis.rps)],
            &[8, 10, 10],
        );
    }
}

fn main() {
    let quick = quick_mode();
    let tracer = trace_from_env();
    let mut report = Report::new("fig10_redis");
    let which: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| a != "--quick")
        .collect();
    let all = which.is_empty() || which.iter().any(|w| w == "all");
    if all || which.iter().any(|w| w == "get") {
        fig10a(&mut report, quick, &tracer);
    }
    if all || which.iter().any(|w| w == "set") {
        fig10b(&mut report, quick, &tracer);
    }
    if all || which.iter().any(|w| w == "mixed") {
        fig10c(&mut report, quick, &tracer);
    }
    report.note("\npaper: RedisJMP ~4x a single Redis at one client; scales with");
    report.note("cores for GETs (tags slightly ahead) and beats six Redis instances;");
    report.note("SETs serialize on the segment lock and degrade as clients contend");
    report.finish();

    if tracer.enabled() {
        // Dedicated traced RedisJMP run so the exported trace covers a
        // single mixed workload rather than the whole sweep.
        tracer.clear();
        run_jmp(&cfg(8, 30, false, true, &tracer)).expect("traced jmp run");
        // The KV bench models machine M1 throughout.
        export_trace(
            "fig10_redis",
            &tracer,
            MachineProfile::of(MachineId::M1).freq_hz,
        );
    }
}
