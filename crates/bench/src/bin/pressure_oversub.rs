//! Memory-pressure ablation (no paper counterpart — §4.1 pins all
//! segment memory at creation): GUPS and RedisJMP running on
//! swap-backed demand segments under DRAM oversubscription.
//!
//! GUPS sweeps physical memory from the full window working set down to
//! half of it; RedisJMP runs its store segment on a machine with room
//! for roughly half the live heap. Both must run to completion with the
//! eviction/major-fault/OOM counters reported beside the cycle model.
//!
//! The process **exits nonzero** if any run aborts or a whole-system
//! invariant audit fails, so CI uses it as the constrained-memory smoke
//! test (`cargo run -p sjmp-bench --bin pressure_oversub`). With
//! `SJMP_TRACE=1` the RedisJMP-under-pressure phase records eviction,
//! major-fault, and swap-I/O events and exports them to
//! `results/pressure_oversub.trace.json`.

use sjmp_gups::{run_jmp_constrained, GupsConfig};
use sjmp_kv::JmpClient;
use sjmp_mem::cost::{CostModel, KernelFlavor, MachineId, MachineProfile};
use sjmp_mem::PAGE_SIZE;
use sjmp_os::{Creds, Kernel};
use sjmp_trace::Tracer;
use spacejmp_core::SpaceJmp;

use sjmp_bench::{export_trace, quick_mode, trace_from_env, Report};

/// Frames beyond the window data that cover the process image, scratch
/// heap, and page tables (see `run_jmp_constrained`'s sizing notes).
const GUPS_SLACK_FRAMES: u64 = 176;

fn gups(report: &mut Report, quick: bool, tracer: &Tracer) {
    report.heading("Oversubscribed GUPS: swappable windows vs DRAM fraction (M3 profile)");
    let cfg = GupsConfig {
        windows: 4,
        window_bytes: 256 << 10,
        updates_per_set: 16,
        epochs: if quick { 48 } else { 96 },
        tracer: tracer.clone(),
        ..GupsConfig::default()
    };
    let data_pages = cfg.windows as u64 * cfg.window_bytes / PAGE_SIZE;
    let widths = [10, 8, 10, 10, 8, 10, 6];
    report.header(
        &[
            "dram/data",
            "MUPS",
            "evictions",
            "maj-faults",
            "passes",
            "swap-slots",
            "oom",
        ],
        &widths,
    );
    for (label, num, den) in [("1.00x", 1, 1), ("0.75x", 3, 4), ("0.50x", 1, 2)] {
        let mem_frames = data_pages * num / den + GUPS_SLACK_FRAMES;
        let (r, p) = run_jmp_constrained(&cfg, mem_frames, None)
            .expect("oversubscribed GUPS must run to completion");
        assert_eq!(
            r.updates,
            (cfg.epochs * cfg.updates_per_set) as u64,
            "constrained run dropped updates"
        );
        report.row(
            &[
                label.to_string(),
                format!("{:.2}", r.mups),
                p.evictions.to_string(),
                p.major_faults.to_string(),
                p.reclaim_passes.to_string(),
                p.swap_slots_used.to_string(),
                p.oom_kills.to_string(),
            ],
            &widths,
        );
    }
    report.note("\npinned segments (the paper's §4.1 rule) cannot even allocate below");
    report.note("1.00x; demand segments trade MUPS for completion via the swap device");
}

fn redis(report: &mut Report, quick: bool, tracer: &Tracer) {
    report.heading(
        "Oversubscribed RedisJMP: swappable store, ~2x more live heap than DRAM (M1 profile)",
    );
    // Two clients' pinned footprint is ~290 frames; the 300 x 2 KiB
    // values touch ~170 store pages. 380 frames leaves room for about
    // half the store working set (the sizing from the kv crate's
    // pressure test).
    let mut profile = MachineProfile::of(MachineId::M1);
    profile.mem_bytes = 380 * PAGE_SIZE;
    let freq = profile.freq_hz as f64;
    let mut sj = SpaceJmp::new(Kernel::with_profile(
        KernelFlavor::DragonFly,
        profile,
        CostModel::default(),
    ));
    // The pressure phase is what the trace should cover: evictions,
    // major faults, swap I/O all fire from here on.
    tracer.clear();
    sj.set_tracer(tracer.clone());
    sj.kernel_mut().set_low_watermark(Some(8));
    let mut clients = Vec::new();
    for i in 0..2 {
        let pid = sj
            .kernel_mut()
            .spawn(&format!("rc{i}"), Creds::new(100, 100))
            .expect("spawn");
        sj.kernel_mut().activate(pid).expect("activate");
        clients.push(JmpClient::join_opts(&mut sj, pid, "oversub", i, false, true).expect("join"));
    }

    let sets: u32 = if quick { 150 } else { 300 };
    let val = vec![0x5au8; 2048];
    let start = sj.kernel_mut().clock().now();
    for i in 0..sets {
        let c = (i % 2) as usize;
        clients[c]
            .set(&mut sj, format!("key{i}").as_bytes(), &val)
            .expect("SET under pressure");
    }
    let set_cycles = sj.kernel_mut().clock().now() - start;
    for i in (0..sets).step_by(13) {
        let got = clients[(i % 2) as usize]
            .get(&mut sj, format!("key{i}").as_bytes())
            .expect("GET under pressure");
        assert_eq!(
            got.as_deref(),
            Some(val.as_slice()),
            "key{i} corrupted by swap"
        );
    }

    let stats = sj.kernel_mut().sys_phys_stats();
    let problems = sj.check_invariants();
    assert!(
        problems.is_empty(),
        "invariant audit failed:\n{}",
        problems.join("\n")
    );

    let widths = [10, 10, 10, 10, 10];
    report.header(
        &[
            "SET rps",
            "evictions",
            "maj-faults",
            "swap-slots",
            "denials",
        ],
        &widths,
    );
    report.row(
        &[
            format!("{:.0}K", f64::from(sets) * freq / set_cycles as f64 / 1e3),
            stats.evictions.to_string(),
            stats.major_faults.to_string(),
            stats.swap_slots_used.to_string(),
            stats.quota_denials.to_string(),
        ],
        &widths,
    );
    report.note(&format!(
        "\nall {sets} SETs completed and sampled GETs verified; audit clean"
    ));
}

fn main() {
    let quick = quick_mode();
    let tracer = trace_from_env();
    let mut report = Report::new("pressure_oversub");
    gups(&mut report, quick, &tracer);
    redis(&mut report, quick, &tracer);
    report.finish();
    export_trace(
        "pressure_oversub",
        &tracer,
        MachineProfile::of(MachineId::M1).freq_hz,
    );
}
