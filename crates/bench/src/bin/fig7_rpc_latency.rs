//! Figure 7: URPC vs SpaceJMP as a local RPC mechanism (M2, cycles).
//!
//! The paper: "an RPC client issues a request to a server process on a
//! different core and waits for the acknowledgment ... We compare with
//! the same semantics in SpaceJMP by switching into the server's VAS and
//! accessing the data directly by copying it into the process-local
//! address space." Series: URPC intra-socket (`URPC L`), URPC
//! cross-socket (`URPC X`), and SpaceJMP (switch + copy + switch back).
//!
//! With `SJMP_TRACE=1` the URPC and SpaceJMP paths both record events
//! (RPC send/recv spans, VAS switches) and the trace of the final row is
//! exported to `results/fig7_rpc_latency.trace.json`.

use sjmp_bench::{export_trace, human_bytes, trace_from_env, Report};
use sjmp_mem::cost::{CoreClocks, CoreCtx, CostModel, MachineProfile};
use sjmp_mem::{KernelFlavor, MachineId, VirtAddr};
use sjmp_os::{Creds, Kernel, Mode};
use sjmp_rpc::urpc::{Placement, UrpcPair};
use sjmp_trace::Tracer;
use spacejmp_core::{AttachMode, SpaceJmp};

fn urpc_round_trip(placement: Placement, size: usize, tracer: &Tracer) -> u64 {
    // Client and server are pinned to different cores, per the paper's
    // setup; for the cross-socket series the server's core sits on the
    // other socket (the placement carries the transfer cost).
    let clocks = CoreClocks::new(2);
    // Ring sized like the Barrelfish channels: large enough for the
    // payload (latency past the buffer size grows, as the paper notes).
    let mut pair = UrpcPair::new(
        8192,
        placement,
        CostModel::default(),
        clocks.clone(),
        CoreCtx::new(0),
        CoreCtx::new(1),
    );
    pair.set_tracer(tracer.clone());
    let t0 = clocks.now();
    pair.round_trip(&[0u8; 8], size).expect("round trip");
    clocks.now() - t0
}

fn spacejmp_round_trip(size: usize, tracer: &Tracer) -> u64 {
    let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M2));
    sj.set_tracer(tracer.clone());
    let pid = sj
        .kernel_mut()
        .spawn("client", Creds::new(1, 1))
        .expect("spawn");
    sj.kernel_mut().activate(pid).expect("activate");
    let va = VirtAddr::new(0x1000_0000_0000);
    let vid = sj.vas_create(pid, "server-vas", Mode(0o660)).expect("vas");
    let sid = sj
        .seg_alloc(
            pid,
            "server-data",
            va,
            (size as u64).max(4096).next_power_of_two(),
            Mode(0o660),
        )
        .expect("seg");
    sj.seg_attach(pid, vid, sid, AttachMode::ReadWrite)
        .expect("attach");
    let vh = sj.vas_attach(pid, vid).expect("vh");
    // Warm attach path, then measure the request: switch in, read the
    // payload into the process-local buffer, switch home.
    let mut buf = vec![0u8; size];
    let clock = sj.kernel().clock().clone();
    let t0 = clock.now();
    sj.vas_switch(pid, vh).expect("switch");
    sj.kernel_mut().load_bytes(pid, va, &mut buf).expect("copy");
    sj.vas_switch_home(pid).expect("home");
    clock.since(t0)
}

fn main() {
    let tracer = trace_from_env();
    let mut report = Report::new("fig7_rpc_latency");
    report.heading("Figure 7: local RPC latency vs transfer size (M2, cycles)");
    report.header(&["size", "URPC L", "URPC X", "SpaceJMP"], &[8, 10, 10, 10]);
    for size in [4usize, 64, 1024, 4096, 65536, 262144] {
        tracer.clear();
        let l = urpc_round_trip(Placement::IntraSocket, size, &tracer);
        let x = urpc_round_trip(Placement::CrossSocket, size, &tracer);
        let s = spacejmp_round_trip(size, &tracer);
        report.row(
            &[
                human_bytes(size as u64),
                l.to_string(),
                x.to_string(),
                s.to_string(),
            ],
            &[8, 10, 10, 10],
        );
    }
    report.note("\npaper: SpaceJMP beaten only by intra-socket URPC for small");
    report.note("messages; across sockets the interconnect dominates the switch cost");
    report.finish();
    export_trace(
        "fig7_rpc_latency",
        &tracer,
        MachineProfile::of(MachineId::M2).freq_hz,
    );
}
