//! Figure 8: GUPS throughput (million updates per second) for the three
//! large-memory designs, vs number of address spaces (windows), M3.
//!
//! Series: SpaceJMP, MP (multi-process message passing), MAP (remap on
//! window change), each for update-set sizes 64 and 16.

use sjmp_bench::{heading, quick_mode, row};
use sjmp_gups::{run, Design, GupsConfig};

fn main() {
    let quick = quick_mode();
    let window_counts: &[usize] = if quick {
        &[1, 4, 16]
    } else {
        &[1, 2, 4, 8, 16, 32, 64, 128]
    };
    let epochs = if quick { 64 } else { 256 };

    for &updates in &[64usize, 16] {
        heading(&format!(
            "Figure 8: GUPS MUPS per process (update set {updates}, M3)"
        ));
        row(&["windows", "SpaceJMP", "MP", "MAP"], &[8, 10, 10, 10]);
        for &w in window_counts {
            let cfg = GupsConfig {
                windows: w,
                updates_per_set: updates,
                epochs,
                ..GupsConfig::default()
            };
            let jmp = run(Design::Jmp, &cfg).expect("jmp");
            let mp = run(Design::Mp, &cfg).expect("mp");
            let map = run(Design::Map, &cfg).expect("map");
            row(
                &[
                    w.to_string(),
                    format!("{:.1}", jmp.mups),
                    format!("{:.1}", mp.mups),
                    format!("{:.1}", map.mups),
                ],
                &[8, 10, 10, 10],
            );
        }
    }
    println!("\npaper: all equal at 1 window; MAP collapses immediately;");
    println!("SpaceJMP >= MP throughout; MP drops past 36 processes (M3 cores)");
}
