//! Figure 8: GUPS throughput (million updates per second) for the three
//! large-memory designs, vs number of address spaces (windows), M3.
//!
//! Series: SpaceJMP, MP (multi-process message passing), MAP (remap on
//! window change), each for update-set sizes 64 and 16.
//!
//! With `SJMP_TRACE=1` every run records kernel/TLB/switch events; the
//! trace of a dedicated SpaceJMP run (4 windows) is exported to
//! `results/fig8_gups.trace.json` (Chrome `trace_event` format) and
//! `results/fig8_gups.metrics.json`.

use sjmp_bench::{export_trace, quick_mode, trace_from_env, Report};
use sjmp_gups::{run, Design, GupsConfig};
use sjmp_mem::cost::MachineProfile;

fn main() {
    let quick = quick_mode();
    let tracer = trace_from_env();
    let mut report = Report::new("fig8_gups");
    let window_counts: &[usize] = if quick {
        &[1, 4, 16]
    } else {
        &[1, 2, 4, 8, 16, 32, 64, 128]
    };
    let epochs = if quick { 64 } else { 256 };

    for &updates in &[64usize, 16] {
        report.heading(&format!(
            "Figure 8: GUPS MUPS per process (update set {updates}, M3)"
        ));
        report.header(&["windows", "SpaceJMP", "MP", "MAP"], &[8, 10, 10, 10]);
        for &w in window_counts {
            let cfg = GupsConfig {
                windows: w,
                updates_per_set: updates,
                epochs,
                tracer: tracer.clone(),
                ..GupsConfig::default()
            };
            let jmp = run(Design::Jmp, &cfg).expect("jmp");
            let mp = run(Design::Mp, &cfg).expect("mp");
            let map = run(Design::Map, &cfg).expect("map");
            report.row(
                &[
                    w.to_string(),
                    format!("{:.1}", jmp.mups),
                    format!("{:.1}", mp.mups),
                    format!("{:.1}", map.mups),
                ],
                &[8, 10, 10, 10],
            );
        }
    }
    // Lower bound: the same JMP sweep on the no-VM base+bound backend.
    // No page walks and nothing to flush on a switch, so this curve caps
    // what any translation hardware could recover for the JMP design.
    report.heading("Lower bound: JMP on the no-VM base+bound backend (update set 64, M3)");
    report.header(
        &["windows", "SpaceJMP", "no-vm", "tlb misses", "no-vm misses"],
        &[8, 10, 10, 12, 13],
    );
    for &w in window_counts {
        let cfg = GupsConfig {
            windows: w,
            updates_per_set: 64,
            epochs,
            tracer: tracer.clone(),
            ..GupsConfig::default()
        };
        let jmp = run(Design::Jmp, &cfg).expect("jmp");
        let novm = run(
            Design::Jmp,
            &GupsConfig {
                backend: sjmp_mem::TranslationKind::NoVm,
                ..cfg
            },
        )
        .expect("no-vm jmp");
        report.row(
            &[
                w.to_string(),
                format!("{:.1}", jmp.mups),
                format!("{:.1}", novm.mups),
                jmp.tlb_misses.to_string(),
                novm.tlb_misses.to_string(),
            ],
            &[8, 10, 10, 12, 13],
        );
    }

    report.note("\npaper: all equal at 1 window; MAP collapses immediately;");
    report.note("SpaceJMP >= MP throughout; MP drops past 36 processes (M3 cores).");
    report.note("no-vm bounds the JMP design from below: base+bound translation");
    report.note("with zero TLB misses and nothing to flush on a switch");
    report.finish();

    if tracer.enabled() {
        // Dedicated traced run so the exported trace is a single JMP
        // workload (the sweep above clears the tracer per run).
        let cfg = GupsConfig {
            windows: 4,
            updates_per_set: 16,
            epochs: 64,
            tracer: tracer.clone(),
            ..GupsConfig::default()
        };
        run(Design::Jmp, &cfg).expect("traced jmp run");
        export_trace(
            "fig8_gups",
            &tracer,
            MachineProfile::of(cfg.machine).freq_hz,
        );
    }
}
