//! Ablation for the Section 4.3 compiler support: how many runtime
//! checks does each analysis tier elide compared with the naive
//! check-every-dereference transformation, and what does that cost at
//! runtime?
//!
//! Three tiers: `Naive` (check everything), `Analyzed` (the paper's
//! VASvalid/VASin dataflow), and `Interprocedural` (the pointer-
//! provenance verifier, which additionally proves reloaded pointers
//! safe when every object they can name is valid in the current VAS).
//! Every program is run under all three instrumentations; results must
//! be bit-identical — instrumentation may only change check counts,
//! never program behaviour.
//!
//! The paper leaves the evaluation of its analysis to future work; this
//! ablation quantifies it on synthetic programs of increasing
//! multi-VAS complexity.

use sjmp_bench::Report;
use sjmp_safety::analysis::Analysis;
use sjmp_safety::checks::{insert_checks, CheckPolicy};
use sjmp_safety::interp::{Interp, Value};
use sjmp_safety::ir::{AbstractVas, BlockId, Function, Inst, Module, VasName};

/// Single-VAS pointer churn: everything is provably safe.
fn single_vas_program(ops: usize) -> Module {
    let mut m = Module::new();
    let mut f = Function::new("main", 0);
    let p = f.fresh_reg();
    let c = f.fresh_reg();
    f.push(BlockId(0), Inst::Malloc { dst: p, size: 4096 });
    f.push(BlockId(0), Inst::Const { dst: c, value: 1 });
    let mut last = c;
    for _ in 0..ops {
        let x = f.fresh_reg();
        f.push(BlockId(0), Inst::Store { addr: p, val: c });
        f.push(BlockId(0), Inst::Load { dst: x, addr: p });
        last = x;
    }
    f.push(BlockId(0), Inst::Ret(Some(last)));
    m.add_function(f);
    m
}

/// Windowed access: each phase switches VAS, allocates, works locally —
/// safe, but requires tracking switches.
fn windowed_program(windows: usize, ops: usize) -> Module {
    let mut m = Module::new();
    let mut f = Function::new("main", 0);
    let c = f.fresh_reg();
    f.push(BlockId(0), Inst::Const { dst: c, value: 7 });
    let mut last = c;
    for w in 0..windows {
        f.push(BlockId(0), Inst::Switch(VasName(w as u32 + 1)));
        let p = f.fresh_reg();
        f.push(BlockId(0), Inst::Malloc { dst: p, size: 4096 });
        for _ in 0..ops {
            let x = f.fresh_reg();
            f.push(BlockId(0), Inst::Store { addr: p, val: c });
            f.push(BlockId(0), Inst::Load { dst: x, addr: p });
            last = x;
        }
    }
    f.push(BlockId(0), Inst::Ret(Some(last)));
    m.add_function(f);
    m
}

/// Pointers escaping into a common-region slot and reloaded, all in
/// the entry VAS: the dataflow pass sees a load through a common
/// pointer and degrades the result to unknown validity, keeping every
/// reload-deref check; provenance tracks the slot's contents and
/// proves each reload names only entry-VAS objects, eliding them all.
fn slot_reload_program(rounds: usize) -> Module {
    let mut m = Module::new();
    let mut f = Function::new("main", 0);
    let slot = f.fresh_reg();
    let c = f.fresh_reg();
    f.push(BlockId(0), Inst::Alloca { dst: slot, size: 8 });
    f.push(BlockId(0), Inst::Const { dst: c, value: 3 });
    let mut last = c;
    for _ in 0..rounds {
        let p = f.fresh_reg();
        let q = f.fresh_reg();
        let x = f.fresh_reg();
        f.push(BlockId(0), Inst::Malloc { dst: p, size: 64 });
        f.push(BlockId(0), Inst::Store { addr: p, val: c }); // initialize
        f.push(BlockId(0), Inst::Store { addr: slot, val: p }); // escape
        f.push(BlockId(0), Inst::Load { dst: q, addr: slot }); // reload
        f.push(BlockId(0), Inst::Load { dst: x, addr: q }); // deref reload
        last = x;
    }
    f.push(BlockId(0), Inst::Ret(Some(last)));
    m.add_function(f);
    m
}

/// Pointers escaping through the common region across VAS switches:
/// statically ambiguous for both tiers, most accesses genuinely need
/// checks.
fn escaping_program(rounds: usize) -> Module {
    let mut m = Module::new();
    let mut f = Function::new("main", 0);
    let slot = f.fresh_reg();
    let c = f.fresh_reg();
    f.push(BlockId(0), Inst::Alloca { dst: slot, size: 8 });
    f.push(BlockId(0), Inst::Const { dst: c, value: 9 });
    let mut last = c;
    for r in 0..rounds {
        let p = f.fresh_reg();
        let q = f.fresh_reg();
        let x = f.fresh_reg();
        f.push(BlockId(0), Inst::Switch(VasName(r as u32 % 2 + 1)));
        f.push(BlockId(0), Inst::Malloc { dst: p, size: 64 });
        f.push(BlockId(0), Inst::Store { addr: p, val: c }); // initialize
        f.push(BlockId(0), Inst::Store { addr: slot, val: p }); // escape
        f.push(BlockId(0), Inst::Load { dst: q, addr: slot }); // unknown
        f.push(BlockId(0), Inst::Load { dst: x, addr: q }); // needs check
        last = x;
    }
    f.push(BlockId(0), Inst::Ret(Some(last)));
    m.add_function(f);
    m
}

/// Per-check runtime cost assumed by the overhead column (tag compare +
/// branch).
const CHECK_COST_CYCLES: u64 = 6;

/// Instruments `module` under `policy`, runs it, and returns the static
/// check count, dynamic check cycles, and the simulated result (return
/// value plus instrumentation-independent stats).
fn run_policy(
    module: &Module,
    analysis: &Analysis,
    policy: CheckPolicy,
) -> (usize, u64, (Option<Value>, u64, u64, u64)) {
    let mut inst = module.clone();
    let report = insert_checks(&mut inst, analysis, policy);
    let mut interp = Interp::new(&inst, VasName(0)).with_step_limit(10_000_000);
    let ret = interp.run(&[]).expect("instrumented run");
    let stats = interp.stats();
    (
        report.deref_checks + report.store_checks,
        interp.stats().checks_executed * CHECK_COST_CYCLES,
        (ret, stats.mem_ops, stats.switches, stats.lock_ops),
    )
}

fn report(out: &mut Report, name: &str, module: &Module) {
    let entry = [AbstractVas::Vas(VasName(0))].into_iter().collect();
    let analysis = Analysis::run(module, entry);

    let (naive_checks, naive_cyc, naive_result) = run_policy(module, &analysis, CheckPolicy::Naive);
    let (analyzed_checks, analyzed_cyc, analyzed_result) =
        run_policy(module, &analysis, CheckPolicy::Analyzed);
    let (interproc_checks, interproc_cyc, interproc_result) =
        run_policy(module, &analysis, CheckPolicy::Interprocedural);

    // Instrumentation must never change what the program computes.
    assert_eq!(naive_result, analyzed_result, "{name}: analyzed diverged");
    assert_eq!(
        naive_result, interproc_result,
        "{name}: interprocedural diverged"
    );
    // Interprocedural is a refinement: it never adds checks back.
    assert!(
        interproc_checks <= analyzed_checks,
        "{name}: interprocedural kept more checks than analyzed"
    );

    let mem_ops = {
        let mut n = module.clone();
        insert_checks(&mut n, &analysis, CheckPolicy::Naive).mem_ops
    };
    let ratio = if naive_checks == 0 {
        0.0
    } else {
        100.0 * interproc_checks as f64 / naive_checks as f64
    };
    out.row(
        &[
            name.to_string(),
            mem_ops.to_string(),
            naive_checks.to_string(),
            analyzed_checks.to_string(),
            interproc_checks.to_string(),
            format!("{ratio:.0}%"),
            naive_cyc.to_string(),
            analyzed_cyc.to_string(),
            interproc_cyc.to_string(),
        ],
        WIDTHS,
    );
}

const WIDTHS: &[usize] = &[14, 8, 12, 14, 16, 8, 12, 14, 14];

fn main() {
    let mut out = Report::new("ablate_safety_checks");
    out.heading("Safety-check ablation: naive vs dataflow-pruned vs interprocedural");
    out.header(
        &[
            "program",
            "mem ops",
            "naive checks",
            "pruned checks",
            "interproc checks",
            "ratio",
            "naive cyc",
            "pruned cyc",
            "interproc cyc",
        ],
        WIDTHS,
    );
    report(&mut out, "single-vas", &single_vas_program(500));
    report(&mut out, "windowed", &windowed_program(16, 50));
    report(&mut out, "slot-reload", &slot_reload_program(250));
    report(&mut out, "escaping", &escaping_program(300));
    out.note("\nthe dataflow analysis removes every check from single-VAS and");
    out.note("windowed code; the interprocedural provenance verifier further");
    out.note("elides checks on pointers reloaded from same-VAS slots, and both");
    out.note("degrade to checking genuinely ambiguous cross-VAS escapes.");
    out.note("all three instrumentations compute bit-identical results.");
    out.finish();
}
