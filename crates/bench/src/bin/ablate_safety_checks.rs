//! Ablation for the Section 4.3 compiler support: how many runtime
//! checks does the dataflow analysis elide compared with the naive
//! check-every-dereference transformation, and what does that cost at
//! runtime?
//!
//! The paper leaves the evaluation of its analysis to future work; this
//! ablation quantifies it on synthetic programs of increasing
//! multi-VAS complexity.

use sjmp_bench::Report;
use sjmp_safety::analysis::Analysis;
use sjmp_safety::checks::{insert_checks, CheckPolicy};
use sjmp_safety::interp::Interp;
use sjmp_safety::ir::{AbstractVas, BlockId, Function, Inst, Module, VasName};

/// Single-VAS pointer churn: everything is provably safe.
fn single_vas_program(ops: usize) -> Module {
    let mut m = Module::new();
    let mut f = Function::new("main", 0);
    let p = f.fresh_reg();
    let c = f.fresh_reg();
    f.push(BlockId(0), Inst::Malloc { dst: p, size: 4096 });
    f.push(BlockId(0), Inst::Const { dst: c, value: 1 });
    for _ in 0..ops {
        let x = f.fresh_reg();
        f.push(BlockId(0), Inst::Store { addr: p, val: c });
        f.push(BlockId(0), Inst::Load { dst: x, addr: p });
    }
    f.push(BlockId(0), Inst::Ret(None));
    m.add_function(f);
    m
}

/// Windowed access: each phase switches VAS, allocates, works locally —
/// safe, but requires tracking switches.
fn windowed_program(windows: usize, ops: usize) -> Module {
    let mut m = Module::new();
    let mut f = Function::new("main", 0);
    let c = f.fresh_reg();
    f.push(BlockId(0), Inst::Const { dst: c, value: 7 });
    for w in 0..windows {
        f.push(BlockId(0), Inst::Switch(VasName(w as u32 + 1)));
        let p = f.fresh_reg();
        f.push(BlockId(0), Inst::Malloc { dst: p, size: 4096 });
        for _ in 0..ops {
            let x = f.fresh_reg();
            f.push(BlockId(0), Inst::Store { addr: p, val: c });
            f.push(BlockId(0), Inst::Load { dst: x, addr: p });
        }
    }
    f.push(BlockId(0), Inst::Ret(None));
    m.add_function(f);
    m
}

/// Pointers escaping through the common region: statically ambiguous,
/// most accesses genuinely need checks.
fn escaping_program(rounds: usize) -> Module {
    let mut m = Module::new();
    let mut f = Function::new("main", 0);
    let slot = f.fresh_reg();
    let c = f.fresh_reg();
    f.push(BlockId(0), Inst::Alloca { dst: slot, size: 8 });
    f.push(BlockId(0), Inst::Const { dst: c, value: 9 });
    for r in 0..rounds {
        let p = f.fresh_reg();
        let q = f.fresh_reg();
        let x = f.fresh_reg();
        f.push(BlockId(0), Inst::Switch(VasName(r as u32 % 2 + 1)));
        f.push(BlockId(0), Inst::Malloc { dst: p, size: 64 });
        f.push(BlockId(0), Inst::Store { addr: p, val: c }); // initialize
        f.push(BlockId(0), Inst::Store { addr: slot, val: p }); // escape
        f.push(BlockId(0), Inst::Load { dst: q, addr: slot }); // unknown
        f.push(BlockId(0), Inst::Load { dst: x, addr: q }); // needs check
    }
    f.push(BlockId(0), Inst::Ret(None));
    m.add_function(f);
    m
}

/// Per-check runtime cost assumed by the overhead column (tag compare +
/// branch).
const CHECK_COST_CYCLES: u64 = 6;

fn report(out: &mut Report, name: &str, module: &Module) {
    let entry = [AbstractVas::Vas(VasName(0))].into_iter().collect();
    let analysis = Analysis::run(module, entry);

    let mut naive = module.clone();
    let naive_report = insert_checks(&mut naive, &analysis, CheckPolicy::Naive);
    let mut analyzed = module.clone();
    let analyzed_report = insert_checks(&mut analyzed, &analysis, CheckPolicy::Analyzed);

    // Execute both to count dynamic checks (programs are safe by
    // construction, so both run to completion).
    let mut interp_naive = Interp::new(&naive, VasName(0)).with_step_limit(10_000_000);
    interp_naive.run(&[]).expect("naive instrumented run");
    let mut interp_analyzed = Interp::new(&analyzed, VasName(0)).with_step_limit(10_000_000);
    interp_analyzed.run(&[]).expect("analyzed instrumented run");

    let dyn_naive = interp_naive.stats().checks_executed;
    let dyn_analyzed = interp_analyzed.stats().checks_executed;
    out.row(
        &[
            name.to_string(),
            naive_report.mem_ops.to_string(),
            (naive_report.deref_checks + naive_report.store_checks).to_string(),
            (analyzed_report.deref_checks + analyzed_report.store_checks).to_string(),
            format!("{:.0}%", 100.0 * analyzed_report.check_ratio()),
            (dyn_naive * CHECK_COST_CYCLES).to_string(),
            (dyn_analyzed * CHECK_COST_CYCLES).to_string(),
        ],
        &[14, 8, 12, 14, 8, 12, 14],
    );
}

fn main() {
    let mut out = Report::new("ablate_safety_checks");
    out.heading("Safety-check ablation: naive vs dataflow-pruned instrumentation");
    out.header(
        &[
            "program",
            "mem ops",
            "naive checks",
            "pruned checks",
            "ratio",
            "naive cyc",
            "pruned cyc",
        ],
        &[14, 8, 12, 14, 8, 12, 14],
    );
    report(&mut out, "single-vas", &single_vas_program(500));
    report(&mut out, "windowed", &windowed_program(16, 50));
    report(&mut out, "escaping", &escaping_program(300));
    out.note("\nthe analysis removes every check from single-VAS code, keeps");
    out.note("windowed code check-free by tracking switches, and degrades to");
    out.note("checking only genuinely ambiguous accesses when pointers escape");
    out.finish();
}
