//! Crash-point sweep (no paper counterpart — the durability layer is a
//! robustness extension): kills the machine at **every** block-write
//! boundary and at each flush barrier of a `vas_save` that supersedes an
//! existing snapshot, then reboots and verifies recovery yields exactly
//! the old or the new snapshot — never a torn hybrid. A third phase
//! injects seeded torn writes and dropped flush barriers (the device
//! acks everything; only recovery's checksums see the damage) and
//! byte-compares the recovered segment against both pre-crash images.
//!
//! Every recovery is followed by the whole-system invariant audit and
//! the `sjmp-analyze` kernel linter; the process **exits nonzero** on
//! any violation, so CI uses it as the durability smoke test
//! (`cargo run -p sjmp-bench --bin crash_sweep -- --quick`). With
//! `SJMP_TRACE=1` the block-IO, journal-replay, and snapshot spans of
//! every crash/recovery cycle land in `results/crash_sweep.trace.json`.

use sjmp_analyze::lint_kernel;
use sjmp_mem::cost::{MachineId, MachineProfile};
use sjmp_mem::{KernelFlavor, VirtAddr, PAGE_SIZE};
use sjmp_os::{Creds, FaultPlan, FaultSite, Kernel, Mode, OsError, Pid};
use sjmp_trace::Tracer;
use spacejmp_core::{AttachMode, SjError, SpaceJmp, VasId};

use sjmp_bench::{export_trace, quick_mode, trace_from_env, Report};

const SEG_BASE: u64 = 0x1000_0000_0000;

fn boot(tracer: &Tracer) -> SpaceJmp {
    let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M1));
    sj.set_tracer(tracer.clone());
    sj
}

fn spawn(sj: &mut SpaceJmp, name: &str) -> Pid {
    let pid = sj.kernel_mut().spawn(name, Creds::new(100, 100)).unwrap();
    sj.kernel_mut().activate(pid).unwrap();
    pid
}

/// Simulated power loss + reboot: the block device drops every unflushed
/// block, a fresh kernel runs snapshot recovery in `attach_disk`.
fn restart(mut sj: SpaceJmp, tracer: &Tracer) -> (SpaceJmp, u64) {
    let mut dev = sj.kernel_mut().take_disk();
    dev.crash();
    let mut kernel = Kernel::new(KernelFlavor::DragonFly, MachineId::M1);
    kernel.set_tracer(tracer.clone());
    let replays = kernel.attach_disk(dev);
    (SpaceJmp::new(kernel), replays)
}

/// Audit + lint after recovery; aborts (nonzero exit) on any finding.
fn assert_clean(sj: &mut SpaceJmp, what: &str) {
    let problems = sj.check_invariants();
    assert!(
        problems.is_empty(),
        "{what}: invariant audit failed:\n{}",
        problems.join("\n")
    );
    let findings = lint_kernel(sj);
    assert!(
        findings.is_empty(),
        "{what}: kernel lint failed:\n{findings:?}"
    );
}

fn va(page: u64) -> VirtAddr {
    VirtAddr::new(SEG_BASE + page * PAGE_SIZE)
}

/// A machine staged for a superseding save: VAS `name` with one segment
/// of `pages` pages, saved once (generation 1) holding `old(p)` words,
/// then rewritten in memory to `new(p)`. Returns the byte images of
/// both states for exact comparison after recovery.
fn staged_machine(
    tracer: &Tracer,
    name: &str,
    pages: u64,
    old: impl Fn(u64) -> u64,
    new: impl Fn(u64) -> u64,
) -> (SpaceJmp, Pid, VasId, Vec<u8>, Vec<u8>) {
    let mut sj = boot(tracer);
    let pid = spawn(&mut sj, "w");
    let vid = sj.vas_create(pid, name, Mode(0o660)).unwrap();
    let sid = sj
        .seg_alloc(
            pid,
            &format!("{name}-s"),
            VirtAddr::new(SEG_BASE),
            pages * PAGE_SIZE,
            Mode(0o660),
        )
        .unwrap();
    sj.seg_attach(pid, vid, sid, AttachMode::ReadWrite).unwrap();
    let vh = sj.vas_attach(pid, vid).unwrap();
    sj.vas_switch(pid, vh).unwrap();
    for p in 0..pages {
        sj.kernel_mut().store_u64(pid, va(p), old(p)).unwrap();
    }
    sj.vas_switch_home(pid).unwrap();
    assert_eq!(sj.vas_save(pid, vid).unwrap(), 1, "staging save");
    let old_image = sj.save_segment(pid, sid).unwrap();
    sj.vas_switch(pid, vh).unwrap();
    for p in 0..pages {
        sj.kernel_mut().store_u64(pid, va(p), new(p)).unwrap();
    }
    sj.vas_switch_home(pid).unwrap();
    let new_image = sj.save_segment(pid, sid).unwrap();
    (sj, pid, vid, old_image, new_image)
}

/// Reboots, reloads `name`, and classifies the recovered segment by
/// exact byte comparison: `"old"`, `"new"`, or abort on a torn hybrid.
fn recover_and_classify(
    sj: SpaceJmp,
    tracer: &Tracer,
    name: &str,
    old_image: &[u8],
    new_image: &[u8],
    what: &str,
) -> (&'static str, u64) {
    let (mut sj2, replays) = restart(sj, tracer);
    let pid = spawn(&mut sj2, "r");
    sj2.vas_load(pid, name).unwrap();
    let sid = sj2.seg_find(&format!("{name}-s")).unwrap();
    let recovered = sj2.save_segment(pid, sid).unwrap();
    assert_clean(&mut sj2, what);
    if recovered == old_image {
        ("old", replays)
    } else if recovered == new_image {
        ("new", replays)
    } else {
        panic!("{what}: recovered image matches neither snapshot (torn hybrid)");
    }
}

/// Phase 1: crash at the n-th block write, for every n the commit
/// issues. The sweep is exhaustive by construction — it stops at the
/// first n the save survives (n exceeded the commit's write count).
fn sweep_writes(report: &mut Report, tracer: &Tracer, pages: u64) -> (u32, u32, u32) {
    report.heading("Crash at every block write during a superseding vas_save");
    let widths = [14, 9, 8];
    report.header(&["crash-at-write", "recovered", "replays"], &widths);
    let old = |p: u64| 0x01D_0000 + p;
    let new = |p: u64| 0x4E4_0000 + p;
    let (mut saw_old, mut saw_new) = (0u32, 0u32);
    let mut points = 0u32;
    for n in 1..=512u64 {
        let (mut sj, pid, vid, old_image, new_image) =
            staged_machine(tracer, "cw", pages, old, new);
        sj.kernel_mut()
            .set_fault_plan(Some(FaultPlan::new(n).crash_nth(FaultSite::BlkWrite, n)));
        let result = sj.vas_save(pid, vid);
        sj.kernel_mut().set_fault_plan(None);
        let crashed = match result {
            Err(SjError::Os(OsError::Crashed)) => true,
            Ok(2) => false,
            other => panic!("write {n}: unexpected save result {other:?}"),
        };
        let what = format!("crash at write {n}");
        let (outcome, replays) =
            recover_and_classify(sj, tracer, "cw", &old_image, &new_image, &what);
        assert!(
            crashed || outcome == "new",
            "uncrashed save must be durable"
        );
        if crashed {
            if outcome == "old" {
                saw_old += 1;
            } else {
                saw_new += 1;
            }
            points += 1;
            report.row(
                &[n.to_string(), outcome.to_string(), replays.to_string()],
                &widths,
            );
        } else {
            // n exceeded the commit's write count: sweep is exhaustive.
            report.note(&format!(
                "\ncommit issues {} block writes; every boundary was killed once",
                n - 1
            ));
            break;
        }
    }
    assert!(saw_old > 0, "no crash point preserved the old snapshot");
    assert!(saw_new > 0, "no crash point reached the new snapshot");
    (points, saw_old, saw_new)
}

/// Phase 2: crash at each of the commit's flush barriers (payload,
/// journal, superblock). The journal-durability edge must fall between
/// barriers 2 and 3.
fn sweep_flushes(report: &mut Report, tracer: &Tracer, pages: u64) -> u32 {
    report.heading("Crash at each flush barrier");
    let widths = [14, 12, 9, 8];
    report.header(
        &["crash-at-flush", "barrier", "recovered", "replays"],
        &widths,
    );
    let old = |p: u64| 0xAAA_0000 + p;
    let new = |p: u64| 0xBBB_0000 + p;
    let names = ["payload", "journal", "superblock"];
    for n in 1..=3u64 {
        let (mut sj, pid, vid, old_image, new_image) =
            staged_machine(tracer, "cf", pages, old, new);
        sj.kernel_mut()
            .set_fault_plan(Some(FaultPlan::new(n).crash_nth(FaultSite::BlkFlush, n)));
        assert_eq!(
            sj.vas_save(pid, vid),
            Err(SjError::Os(OsError::Crashed)),
            "flush {n} must crash"
        );
        sj.kernel_mut().set_fault_plan(None);
        let what = format!("crash at flush {n}");
        let (outcome, replays) =
            recover_and_classify(sj, tracer, "cf", &old_image, &new_image, &what);
        let want = if n <= 2 { "old" } else { "new" };
        assert_eq!(outcome, want, "flush {n}: journal-durability edge moved");
        assert_eq!(replays, u64::from(n == 3), "flush {n} replay count");
        report.row(
            &[
                n.to_string(),
                names[(n - 1) as usize].to_string(),
                outcome.to_string(),
                replays.to_string(),
            ],
            &widths,
        );
    }
    3
}

/// Phase 3: seeded torn writes and dropped flush barriers. The save
/// appears to succeed; recovery must still land byte-exactly on one of
/// the two images.
fn sweep_seeded(report: &mut Report, tracer: &Tracer, pages: u64, seeds: u64) -> u32 {
    report.heading("Seeded torn writes (p=0.25) + dropped flush barriers (p=0.5)");
    let widths = [6, 9, 6, 9, 8];
    report.header(
        &["seed", "recovered", "torn", "dropped", "replays"],
        &widths,
    );
    let old = |p: u64| 0x50_0000 + p;
    let new = |p: u64| 0x51_0000 + p;
    let mut saw_new = 0u32;
    for seed in 0..seeds {
        let (mut sj, pid, vid, old_image, new_image) =
            staged_machine(tracer, "tz", pages, old, new);
        sj.kernel_mut().set_fault_plan(Some(
            FaultPlan::new(seed)
                .fail_with_probability(FaultSite::BlkWrite, 0.25)
                .fail_with_probability(FaultSite::BlkFlush, 0.5),
        ));
        sj.vas_save(pid, vid)
            .expect("torn writes and dropped flushes are silent");
        sj.kernel_mut().set_fault_plan(None);
        let m = sj.kernel_mut().sys_stats().to_metrics();
        let (torn, dropped) = (
            m.counter("blk.torn_writes"),
            m.counter("blk.dropped_flushes"),
        );
        let what = format!("seed {seed}");
        let (outcome, replays) =
            recover_and_classify(sj, tracer, "tz", &old_image, &new_image, &what);
        if outcome == "new" {
            saw_new += 1;
        }
        report.row(
            &[
                seed.to_string(),
                outcome.to_string(),
                torn.to_string(),
                dropped.to_string(),
                replays.to_string(),
            ],
            &widths,
        );
    }
    assert!(saw_new > 0, "some fault-free-enough run must commit");
    seeds as u32
}

fn main() {
    let quick = quick_mode();
    let tracer = trace_from_env();
    let mut report = Report::new("crash_sweep");
    let pages: u64 = if quick { 4 } else { 8 };
    let seeds: u64 = if quick { 8 } else { 24 };

    let (write_points, saw_old, saw_new) = sweep_writes(&mut report, &tracer, pages);
    let flush_points = sweep_flushes(&mut report, &tracer, pages);
    let seeded_runs = sweep_seeded(&mut report, &tracer, pages, seeds);

    report.note(&format!(
        "\nsweep exhaustive: {write_points} write boundaries ({saw_old} recovered old, \
         {saw_new} new) + {flush_points} flush barriers + {seeded_runs} seeded fault runs"
    ));
    report.note("violations: 0 (no torn hybrid, audits and lints clean)");
    report.finish();
    export_trace(
        "crash_sweep",
        &tracer,
        MachineProfile::of(MachineId::M1).freq_hz,
    );
}
