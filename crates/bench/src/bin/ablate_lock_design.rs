//! Lock-design ablation for the Figure 10b SET bottleneck.
//!
//! The paper: writes "sustain a high request rate until too many clients
//! contend on the segment lock. This is a fundamental SpaceJMP limit,
//! but we anticipate that a more scalable lock design than our current
//! implementation would yield further improvements."
//!
//! This ablation quantifies that anticipation: the same SET workload is
//! run with the baseline handoff costs (a simple queue lock whose
//! handoff touches every waiter's cache line) and with progressively
//! more scalable designs (smaller per-waiter penalties, as an MCS-style
//! local-spin lock would achieve).

use sjmp_bench::{quick_mode, Report};
use sjmp_kv::{run_jmp, KvBenchConfig};

fn main() {
    let quick = quick_mode();
    let clients: &[usize] = if quick {
        &[1, 12, 48]
    } else {
        &[1, 4, 12, 24, 48, 100]
    };
    // (label, per-waiter handoff bounce in cycles)
    let designs: &[(&str, u64)] = &[
        ("queue lock (paper)", 150),
        ("MCS-style", 30),
        ("ideal handoff", 0),
    ];

    let mut report = Report::new("ablate_lock_design");
    report.heading("Lock-design ablation: SET throughput (requests/second) vs clients");
    let mut header = vec!["clients".to_string()];
    header.extend(designs.iter().map(|(n, _)| n.to_string()));
    report.header(&header, &[8, 18, 12, 14]);
    for &n in clients {
        let mut cells = vec![n.to_string()];
        for &(_, bounce) in designs {
            let cfg = KvBenchConfig {
                clients: n,
                requests_per_client: if quick { 40 } else { 120 },
                set_pct: 100,
                waiter_bounce: bounce,
                ..KvBenchConfig::default()
            };
            let t = run_jmp(&cfg).expect("run");
            cells.push(format!("{:.0}K", t.rps / 1e3));
        }
        report.row(&cells, &[8, 18, 12, 14]);
    }
    report.note("\nwriters always serialize on the exclusive segment lock, but the");
    report.note("decline with client count is a property of the lock's handoff cost —");
    report.note("a scalable lock keeps SET throughput flat, as the paper anticipated");
    report.finish();
}
