//! Page-size ablation for the Figure 1 cost structure.
//!
//! Section 6: "Large pages have been touted as a way to mitigate TLB
//! flushing cost, but such changes require substantial kernel
//! modifications and provide uncertain benefit to large-memory analytics
//! workloads, as superpage TLBs can be small." This ablation measures
//! both sides of that trade-off with *real* superpage mappings in the
//! template trees:
//!
//! * **construction** — the same regions mapped with 4 KiB base pages vs
//!   2 MiB and 1 GiB superpages (512x / 262144x fewer leaf entries), the
//!   alternative SpaceJMP's switch-don't-remap design competes against;
//! * **access** — a page-stride touch sweep over one mapped region per
//!   translation backend and page size, counting page walks (superpage
//!   walks terminate early and are charged fewer levels), TLB reach, and
//!   cycles per touch. The no-VM base+bound backend anchors the lower
//!   bound: no walks, no TLB, a flat 2-cycle segment check.

use sjmp_bench::{human_bytes, pow2_ticks, quick_mode, Report};
use sjmp_mem::{Backend, KernelFlavor, MachineId, PageSize, PteFlags, PAGE_SIZE};
use sjmp_os::{Creds, Kernel, Pid};

const FLAGS: PteFlags = PteFlags::USER.union(PteFlags::WRITABLE);

fn measure(size: u64, page: PageSize) -> Option<f64> {
    if !size.is_multiple_of(page.bytes()) {
        return None;
    }
    let mut kernel = Kernel::new(KernelFlavor::DragonFly, MachineId::M2);
    let pid = kernel.spawn("ablate", Creds::new(1, 1)).expect("spawn");
    let profile = kernel.profile().clone();
    let t0 = kernel.clock().now();
    match page {
        PageSize::Size4K => kernel.sys_mmap(pid, size, FLAGS, false).map(|_| ()),
        _ => kernel
            .sys_mmap_sized(pid, size, FLAGS, false, page)
            .map(|_| ()),
    }
    .expect("mmap");
    Some(profile.cycles_to_secs(kernel.clock().since(t0)) * 1e3)
}

/// One access-side row: map `size` bytes at `page` granularity under the
/// given backend, then touch every 4 KiB base page once.
struct TouchRow {
    backend: &'static str,
    page: String,
    walks: u64,
    tlb_misses: u64,
    reach: u64,
    cycles_per_touch: f64,
}

fn touch_sweep(size: u64, page: PageSize, no_vm: bool) -> TouchRow {
    let mut kernel = Kernel::new(KernelFlavor::DragonFly, MachineId::M2);
    if no_vm {
        kernel.set_backend(Backend::seg_map());
    }
    let pid = kernel
        .spawn("ablate-touch", Creds::new(1, 1))
        .expect("spawn");
    kernel.activate(pid).expect("activate");
    let va = kernel
        .sys_mmap_sized(pid, size, FLAGS, false, page)
        .expect("mmap");
    let core = kernel.process(pid).expect("process").core();
    kernel.core_mem(core).0.reset_stats();
    kernel.clock().reset();

    let touches = size / PAGE_SIZE;
    for i in 0..touches {
        touch(&mut kernel, pid, va.add(i * PAGE_SIZE).raw());
    }
    let cycles = kernel.clock().now();
    let (mmu, _) = kernel.core_mem(core);
    let stats = mmu.stats();
    let tlb = mmu.tlb_stats();
    let reach = mmu.tlb_mut().reach_bytes();
    TouchRow {
        backend: if no_vm { "no-vm" } else { "4level" },
        page: if no_vm {
            "-".into()
        } else {
            human_bytes(page.bytes())
        },
        walks: stats.walks,
        tlb_misses: tlb.misses,
        reach,
        cycles_per_touch: cycles as f64 / touches as f64,
    }
}

fn touch(kernel: &mut Kernel, pid: Pid, raw: u64) {
    let va = sjmp_mem::VirtAddr::new(raw);
    kernel.load_u64(pid, va).expect("touch");
}

fn main() {
    let quick = quick_mode();
    let hi = if quick { 27 } else { 33 };
    let mut report = Report::new("ablate_page_size");
    report.heading("Page-size ablation: mmap construction cost (ms, M2)");
    report.header(
        &["size", "4KiB pages", "2MiB pages", "1GiB pages"],
        &[8, 12, 12, 12],
    );
    for size in pow2_ticks(21, hi, 2) {
        let fmt = |v: Option<f64>| v.map(|ms| format!("{ms:.4}")).unwrap_or_else(|| "-".into());
        report.row(
            &[
                human_bytes(size),
                fmt(measure(size, PageSize::Size4K)),
                fmt(measure(size, PageSize::Size2M)),
                fmt(measure(size, PageSize::Size1G)),
            ],
            &[8, 12, 12, 12],
        );
    }

    // Access side: one touch per 4 KiB base page over a region that
    // dwarfs 4 KiB TLB reach, per backend and page size.
    let sweep = if quick { 32 << 20 } else { 1 << 30 };
    let widths = [8, 10, 8, 12, 10, 14];
    report.heading(&format!(
        "Touch sweep over {} mapped per backend/page size (M2)",
        human_bytes(sweep)
    ));
    report.header(
        &[
            "backend",
            "page size",
            "walks",
            "tlb misses",
            "tlb reach",
            "cycles/touch",
        ],
        &widths,
    );
    let mut rows = vec![
        touch_sweep(sweep, PageSize::Size4K, false),
        touch_sweep(sweep, PageSize::Size2M, false),
    ];
    if sweep.is_multiple_of(PageSize::Size1G.bytes()) {
        rows.push(touch_sweep(sweep, PageSize::Size1G, false));
    }
    rows.push(touch_sweep(sweep, PageSize::Size4K, true));
    for r in rows {
        report.row(
            &[
                r.backend.to_string(),
                r.page,
                r.walks.to_string(),
                r.tlb_misses.to_string(),
                human_bytes(r.reach),
                format!("{:.2}", r.cycles_per_touch),
            ],
            &widths,
        );
    }

    report.note("\nsuperpages cut construction cost by the entry-count ratio and widen");
    report.note("TLB reach (walks drop by the pages-per-superpage ratio; superpage");
    report.note("walks also terminate a level early). The no-VM base+bound backend");
    report.note("shows the floor: no walks at all, a flat segment check per access.");
    report.note("The paper's point stands: SpaceJMP removes construction from the");
    report.note("critical path entirely (a switch costs ~1127 cycles regardless of size)");
    report.finish();
}
