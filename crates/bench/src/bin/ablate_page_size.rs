//! Page-size ablation for the Figure 1 cost structure.
//!
//! Section 6: "Large pages have been touted as a way to mitigate TLB
//! flushing cost, but such changes require substantial kernel
//! modifications and provide uncertain benefit to large-memory analytics
//! workloads, as superpage TLBs can be small." This ablation isolates the
//! *construction-cost* side of that trade-off: the same regions mapped
//! with 4 KiB base pages vs 2 MiB and 1 GiB superpages (512x / 262144x
//! fewer leaf entries), the alternative SpaceJMP's switch-don't-remap
//! design competes against.

use sjmp_bench::{human_bytes, pow2_ticks, quick_mode, Report};
use sjmp_mem::{KernelFlavor, MachineId, PageSize, PteFlags};
use sjmp_os::{Creds, Kernel};

fn measure(size: u64, page: PageSize) -> Option<f64> {
    if !size.is_multiple_of(page.bytes()) {
        return None;
    }
    let mut kernel = Kernel::new(KernelFlavor::DragonFly, MachineId::M2);
    let pid = kernel.spawn("ablate", Creds::new(1, 1)).expect("spawn");
    let profile = kernel.profile().clone();
    let flags = PteFlags::USER | PteFlags::WRITABLE;
    let t0 = kernel.clock().now();
    match page {
        PageSize::Size4K => kernel.sys_mmap(pid, size, flags, false).map(|_| ()),
        _ => kernel
            .sys_mmap_sized(pid, size, flags, false, page)
            .map(|_| ()),
    }
    .expect("mmap");
    Some(profile.cycles_to_secs(kernel.clock().since(t0)) * 1e3)
}

fn main() {
    let hi = if quick_mode() { 27 } else { 33 };
    let mut report = Report::new("ablate_page_size");
    report.heading("Page-size ablation: mmap construction cost (ms, M2)");
    report.header(
        &["size", "4KiB pages", "2MiB pages", "1GiB pages"],
        &[8, 12, 12, 12],
    );
    for size in pow2_ticks(21, hi, 2) {
        let fmt = |v: Option<f64>| v.map(|ms| format!("{ms:.4}")).unwrap_or_else(|| "-".into());
        report.row(
            &[
                human_bytes(size),
                fmt(measure(size, PageSize::Size4K)),
                fmt(measure(size, PageSize::Size2M)),
                fmt(measure(size, PageSize::Size1G)),
            ],
            &[8, 12, 12, 12],
        );
    }
    report.note("\nsuperpages cut construction cost by the entry-count ratio, but the");
    report.note("paper's point stands: SpaceJMP removes the construction from the");
    report.note("critical path entirely (a switch costs ~1127 cycles regardless of size)");
    report.finish();
}
