//! RedisJMP warm restart (no paper counterpart — §5.3 keeps the store
//! VAS alive across *process* lifetimes; this extends it across
//! *machine* lifetimes): populate a store, persist its VAS with
//! `vas_save`, power-cycle the machine, `vas_load` the snapshot on the
//! fresh kernel, and serve every key again — vs. a cold rebuild that
//! re-runs all the SETs from scratch.
//!
//! The store segment reappears at its fixed base address, so the
//! pointer-rich dict inside it works unchanged — no serialization, the
//! SpaceJMP argument applied to durability. Every warm GET is verified
//! against the value written before the crash; the process **exits
//! nonzero** on a mismatch or a failed invariant audit. Output lands in
//! `results/warm_restart.json`
//! (`cargo run -p sjmp-bench --bin warm_restart -- --quick`).

use sjmp_analyze::lint_kernel;
use sjmp_kv::JmpClient;
use sjmp_mem::cost::{MachineId, MachineProfile};
use sjmp_mem::KernelFlavor;
use sjmp_os::{Creds, Kernel, Mode, Pid};
use sjmp_trace::Tracer;
use spacejmp_core::{AttachMode, SpaceJmp};

use sjmp_bench::{export_trace, quick_mode, trace_from_env, Report};

fn boot(tracer: &Tracer) -> SpaceJmp {
    let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M1));
    sj.set_tracer(tracer.clone());
    sj
}

fn spawn(sj: &mut SpaceJmp, name: &str) -> Pid {
    let pid = sj.kernel_mut().spawn(name, Creds::new(100, 100)).unwrap();
    sj.kernel_mut().activate(pid).unwrap();
    pid
}

fn key(i: u32) -> Vec<u8> {
    format!("key:{i:06}").into_bytes()
}

fn value(i: u32) -> Vec<u8> {
    format!("value-{i}-{:032x}", u128::from(i) * 0x9E37_79B9).into_bytes()
}

/// One warm-restart experiment at `keys` store entries. Returns the
/// row: populate, save, recovery, load, rejoin+serve cycles, and the
/// cold-rebuild total for the speedup column.
struct Run {
    keys: u32,
    populate: u64,
    save: u64,
    recovery: u64,
    load: u64,
    rejoin: u64,
    serve: u64,
}

impl Run {
    /// Cycles from power-on until the store can serve its first GET.
    fn warm_ready(&self) -> u64 {
        self.recovery + self.load + self.rejoin
    }
    /// The cold path to the same state: re-run every SET from scratch.
    fn cold_ready(&self) -> u64 {
        self.populate
    }
}

fn run(keys: u32, tracer: &Tracer) -> Run {
    // Cold build: join the store and write every key.
    let mut sj = boot(tracer);
    let pid = spawn(&mut sj, "client");
    let t0 = sj.kernel_mut().clock().now();
    let mut client = JmpClient::join(&mut sj, pid, "wr", 0).unwrap();
    for i in 0..keys {
        client.set(&mut sj, &key(i), &value(i)).unwrap();
    }
    let populate = sj.kernel_mut().clock().now() - t0;

    // Persist the store through a dedicated VAS holding only the store
    // segment (the client's own VAS holds per-process scratch).
    let store_sid = sj.seg_find("jmp-store-wr").unwrap();
    let pvid = sj.vas_create(pid, "kvstore-wr", Mode(0o660)).unwrap();
    sj.seg_attach(pid, pvid, store_sid, AttachMode::ReadWrite)
        .unwrap();
    let t0 = sj.kernel_mut().clock().now();
    sj.vas_save(pid, pvid).unwrap();
    let save = sj.kernel_mut().clock().now() - t0;

    // Power loss + reboot: recovery runs inside attach_disk on the
    // boot core of a zero-cycle fresh kernel.
    let mut dev = sj.kernel_mut().take_disk();
    dev.crash();
    let mut kernel = Kernel::new(KernelFlavor::DragonFly, MachineId::M1);
    kernel.set_tracer(tracer.clone());
    let replays = kernel.attach_disk(dev);
    assert_eq!(replays, 0, "clean shutdown needs no journal replay");
    let recovery = kernel.clock().now();
    let mut sj2 = SpaceJmp::new(kernel);

    // Reattach the snapshot, rejoin, and serve every key.
    let pid2 = spawn(&mut sj2, "client2");
    let t0 = sj2.kernel_mut().clock().now();
    sj2.vas_load(pid2, "kvstore-wr").unwrap();
    let load = sj2.kernel_mut().clock().now() - t0;
    let t0 = sj2.kernel_mut().clock().now();
    let mut client2 = JmpClient::join(&mut sj2, pid2, "wr", 0).unwrap();
    let rejoin = sj2.kernel_mut().clock().now() - t0;
    let t0 = sj2.kernel_mut().clock().now();
    for i in 0..keys {
        assert_eq!(
            client2.get(&mut sj2, &key(i)).unwrap(),
            Some(value(i)),
            "key {i} after warm restart"
        );
    }
    let serve = sj2.kernel_mut().clock().now() - t0;

    let problems = sj2.check_invariants();
    assert!(
        problems.is_empty(),
        "audit failed:\n{}",
        problems.join("\n")
    );
    let findings = lint_kernel(&mut sj2);
    assert!(findings.is_empty(), "kernel lint failed:\n{findings:?}");

    Run {
        keys,
        populate,
        save,
        recovery,
        load,
        rejoin,
        serve,
    }
}

fn main() {
    let quick = quick_mode();
    let tracer = trace_from_env();
    let freq = MachineProfile::of(MachineId::M1).freq_hz as f64;
    let mut report = Report::new("warm_restart");

    report.heading("RedisJMP warm restart: vas_save / power-cycle / vas_load (M1 profile)");
    let widths = [6, 12, 12, 12, 12, 9, 12];
    report.header(
        &[
            "keys",
            "populate",
            "vas_save",
            "recovery",
            "vas_load",
            "rejoin",
            "serve-all",
        ],
        &widths,
    );
    let ticks: &[u32] = if quick { &[64, 256] } else { &[64, 256, 1024] };
    let mut runs = Vec::new();
    for &keys in ticks {
        let r = run(keys, &tracer);
        report.row(
            &[
                r.keys.to_string(),
                r.populate.to_string(),
                r.save.to_string(),
                r.recovery.to_string(),
                r.load.to_string(),
                r.rejoin.to_string(),
                r.serve.to_string(),
            ],
            &widths,
        );
        runs.push(r);
    }

    report.heading("Time to a servable store: cold rebuild vs warm restart");
    let widths = [6, 14, 14, 10, 9];
    report.header(
        &["keys", "cold-rebuild", "warm-restart", "warm-ms", "speedup"],
        &widths,
    );
    for r in &runs {
        report.row(
            &[
                r.keys.to_string(),
                r.cold_ready().to_string(),
                r.warm_ready().to_string(),
                format!("{:.3}", r.warm_ready() as f64 / freq * 1e3),
                format!("{:.1}x", r.cold_ready() as f64 / r.warm_ready() as f64),
            ],
            &widths,
        );
    }

    report.note("\nevery warm GET returned the exact value written before the crash;");
    report.note("the pointer-rich dict needed no serialization — the store segment");
    report.note("reloads at its fixed base, so in-segment pointers stay valid");
    report.finish();
    export_trace(
        "warm_restart",
        &tracer,
        MachineProfile::of(MachineId::M1).freq_hz,
    );
}
