//! Figure 9: VAS-switch and TLB-miss rates of the SpaceJMP GUPS design
//! vs window count (TLB tagging disabled, as in the paper).
//!
//! Rates are reported in thousands per second, matching the figure's
//! y-axis.

use sjmp_bench::{quick_mode, trace_from_env, Report};
use sjmp_gups::{run_jmp, GupsConfig};

fn main() {
    let quick = quick_mode();
    let tracer = trace_from_env();
    let mut report = Report::new("fig9_gups_rates");
    let window_counts: &[usize] = if quick {
        &[1, 4, 16]
    } else {
        &[1, 2, 4, 8, 16, 32, 64, 128]
    };
    let epochs = if quick { 64 } else { 256 };

    for &updates in &[64usize, 16] {
        report.heading(&format!(
            "Figure 9: SpaceJMP GUPS rates (update set {updates}, M3, tags off; 1k/sec)"
        ));
        report.header(&["windows", "VAS switches", "TLB misses"], &[8, 14, 12]);
        for &w in window_counts {
            let cfg = GupsConfig {
                windows: w,
                updates_per_set: updates,
                epochs,
                tagging: false,
                tracer: tracer.clone(),
                ..GupsConfig::default()
            };
            let r = run_jmp(&cfg).expect("run");
            report.row(
                &[
                    w.to_string(),
                    format!("{:.1}", r.switch_rate / 1e3),
                    format!("{:.1}", r.tlb_miss_rate / 1e3),
                ],
                &[8, 14, 12],
            );
        }
    }
    report.note("\npaper: switch rate climbs with window count then levels off;");
    report.note("TLB miss rate grows with the number of competing translation sets");
    report.finish();
}
