//! Figure 6: impact of TLB tagging on a random page-touch workload (M3).
//!
//! The paper's microbenchmark: "For a given set of pages, it will load
//! one cache line from a randomly chosen page. A write to CR3 is then
//! introduced between each iteration, and the cost in cycles to access
//! the cache line \[is\] measured." Three series: switch with tags off,
//! switch with tags on, and no context switch. Only the touch itself is
//! timed (CR3 write cost excluded), as in the figure.
//!
//! A fourth series runs the same loop on the no-VM base+bound backend:
//! address-space switches load a segment table instead of a page-table
//! root, so there is nothing to flush and nothing to walk — the
//! software-managed lower bound the paging series are measured against.

use sjmp_bench::{quick_mode, Report};
use sjmp_mem::cost::{CostModel, CycleClock, MachineId, MachineProfile};
use sjmp_mem::paging::PteFlags;
use sjmp_mem::{Asid, Backend, Mmu, PhysMem, TranslationBackend, VirtAddr};
use sjmp_sim::SimRng;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Series {
    SwitchTagOff,
    SwitchTagOn,
    NoSwitch,
    SwitchNoVm,
}

fn run(series: Series, pages: u64, iters: u64) -> f64 {
    let profile = MachineProfile::of(MachineId::M3);
    let mut phys = PhysMem::new(1 << 30);
    let backend = match series {
        Series::SwitchNoVm => Backend::seg_map(),
        _ => Backend::four_level(),
    };
    let root = backend.new_root(&mut phys).expect("root");
    let base = VirtAddr::new(0x1000_0000);
    let frames = phys.alloc_contiguous(pages).expect("frames");
    backend
        .map_region(
            &mut phys,
            root,
            base,
            frames.base(),
            pages * 4096,
            sjmp_mem::PageSize::Size4K,
            PteFlags::USER | PteFlags::WRITABLE,
        )
        .expect("map");

    let clock = CycleClock::new();
    let mut mmu = Mmu::new(
        profile.tlb_entries,
        profile.tlb_ways,
        CostModel::default(),
        clock.clone(),
    );
    mmu.set_backend(backend);
    let asid = match series {
        Series::SwitchTagOn => {
            mmu.set_tagging(true);
            Asid(1)
        }
        _ => Asid::UNTAGGED,
    };
    mmu.load_cr3(root, asid);
    let mut rng = SimRng::seed_from_u64(42);
    // Warm the TLB with one pass.
    for p in 0..pages {
        mmu.touch(&mut phys, base.add(p * 4096)).expect("warm");
    }
    let mut touch_cycles = 0u64;
    for _ in 0..iters {
        if series != Series::NoSwitch {
            mmu.load_cr3(root, asid); // the per-iteration CR3 write
        }
        let page = rng.gen_range(0..pages);
        let t0 = clock.now();
        mmu.touch(&mut phys, base.add(page * 4096)).expect("touch");
        touch_cycles += clock.since(t0);
    }
    touch_cycles as f64 / iters as f64
}

fn main() {
    let iters = if quick_mode() { 2_000 } else { 20_000 };
    let widths = [8, 16, 16, 12, 12];
    let mut report = Report::new("fig6_tlb_tagging");
    report.heading("Figure 6: page-touch latency vs working set (M3, cycles)");
    report.header(
        &[
            "pages",
            "switch(tag off)",
            "switch(tag on)",
            "no switch",
            "no-vm",
        ],
        &widths,
    );
    for pages in [64u64, 128, 256, 512, 768, 1024, 1536, 2048] {
        let off = run(Series::SwitchTagOff, pages, iters);
        let on = run(Series::SwitchTagOn, pages, iters);
        let none = run(Series::NoSwitch, pages, iters);
        let novm = run(Series::SwitchNoVm, pages, iters);
        report.row(
            &[
                pages.to_string(),
                format!("{off:.1}"),
                format!("{on:.1}"),
                format!("{none:.1}"),
                format!("{novm:.1}"),
            ],
            &widths,
        );
    }
    report.note("\npaper: tag-off flat and high; tag-on tracks no-switch until the");
    report.note("working set exceeds TLB capacity (M3: 1024 entries), then all converge.");
    report.note("no-vm is the base+bound lower bound: flat regardless of working set");
    report.finish();
}
