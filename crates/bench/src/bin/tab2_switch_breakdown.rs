//! Tables 1 and 2: machine profiles and the context-switch breakdown.
//!
//! Table 2 reports, in cycles on M2: CR3 load (130 plain / 224 tagged),
//! system call (357 DragonFly / 130 Barrelfish), and full `vas_switch`
//! (1127/807 DragonFly, 664/462 Barrelfish). The `vas_switch` row here is
//! *measured* by switching through the real SpaceJMP path, not quoted
//! from the cost model.
//!
//! With `SJMP_TRACE=1` each measured switch also runs under the event
//! tracer, and an extra section reconstructs the Table 2 decomposition
//! *from the trace alone* (summing the `kernel_entry`, `switch_book`,
//! and `cr3_load` span durations inside the switch). The DragonFly
//! untagged trace is exported to
//! `results/tab2_switch_breakdown.trace.json` (Chrome `trace_event`).

use sjmp_bench::{export_trace, heading, human_bytes, trace_from_env, Report};
use sjmp_mem::cost::{CostModel, MachineId, MachineProfile};
use sjmp_mem::KernelFlavor;
use sjmp_os::{Creds, Kernel, Mode};
use sjmp_trace::Tracer;
use spacejmp_core::{SpaceJmp, VasCtl};

fn measured_switch(flavor: KernelFlavor, tagged: bool, tracer: &Tracer) -> u64 {
    let mut sj = SpaceJmp::new(Kernel::new(flavor, MachineId::M2));
    sj.set_tracer(tracer.clone());
    if tagged {
        sj.kernel_mut().set_tagging(true);
    }
    let pid = sj.kernel_mut().spawn("p", Creds::new(1, 1)).expect("spawn");
    sj.kernel_mut().activate(pid).expect("activate");
    let vid = sj.vas_create(pid, "v", Mode(0o600)).expect("create");
    if tagged {
        sj.vas_ctl(pid, VasCtl::RequestTag, vid).expect("tag");
    }
    let vh = sj.vas_attach(pid, vid).expect("attach");
    // Trace exactly one switch: drop the setup's events, then restate
    // the topology so replay tools can still attribute addresses.
    tracer.clear();
    sj.trace_topology();
    let t0 = sj.kernel().clock().now();
    sj.vas_switch(pid, vh).expect("switch");
    sj.kernel().clock().since(t0)
}

/// Sum of all recorded durations for span kind `name` in the tracer's
/// metrics (the trace-derived cycle total of that phase).
fn span_sum(tracer: &Tracer, name: &str) -> u64 {
    tracer.snapshot().histogram(name).map_or(0, |h| h.sum)
}

fn main() {
    let tracer = trace_from_env();
    let mut report = Report::new("tab2_switch_breakdown");
    report.heading("Table 1: machine profiles");
    report.header(
        &["name", "memory", "cores", "freq[GHz]", "TLB"],
        &[6, 10, 6, 10, 6],
    );
    for m in [MachineId::M1, MachineId::M2, MachineId::M3] {
        let p = MachineProfile::of(m);
        report.row(
            &[
                p.name.to_string(),
                human_bytes(p.mem_bytes),
                p.total_cores().to_string(),
                format!("{:.2}", p.freq_hz as f64 / 1e9),
                p.tlb_entries.to_string(),
            ],
            &[6, 10, 6, 10, 6],
        );
    }

    report.heading("Table 2: context-switch breakdown on M2 (cycles; tagged in parentheses)");
    let c = CostModel::default();
    report.header(&["operation", "DragonFly BSD", "Barrelfish"], &[12, 16, 14]);
    report.row(
        &[
            "CR3 load".to_string(),
            format!("{} ({})", c.cr3_load(false), c.cr3_load(true)),
            format!("{} ({})", c.cr3_load(false), c.cr3_load(true)),
        ],
        &[12, 16, 14],
    );
    report.row(
        &[
            "system call".to_string(),
            c.kernel_entry(KernelFlavor::DragonFly).to_string(),
            c.kernel_entry(KernelFlavor::Barrelfish).to_string(),
        ],
        &[12, 16, 14],
    );
    // Each configuration gets a fresh tracer so its trace holds exactly
    // one switch; the shared env tracer only gates whether they trace.
    let configs = [
        ("DragonFly", KernelFlavor::DragonFly, false),
        ("DragonFly(tags)", KernelFlavor::DragonFly, true),
        ("Barrelfish", KernelFlavor::Barrelfish, false),
        ("Barrelfish(tags)", KernelFlavor::Barrelfish, true),
    ];
    let mut measured = Vec::new();
    let mut traces = Vec::new();
    for (label, flavor, tagged) in configs {
        let t = if tracer.enabled() {
            Tracer::new(4096)
        } else {
            Tracer::disabled()
        };
        measured.push(measured_switch(flavor, tagged, &t));
        traces.push((label, t));
    }
    report.row(
        &[
            "vas_switch".to_string(),
            format!("{} ({})", measured[0], measured[1]),
            format!("{} ({})", measured[2], measured[3]),
        ],
        &[12, 16, 14],
    );
    report.note("\npaper: vas_switch 1127 (807) DragonFly, 664 (462) Barrelfish");

    if tracer.enabled() {
        report.heading("Table 2 (trace-derived): spans summed from the event stream (cycles)");
        report.header(
            &["config", "kernel entry", "bookkeeping", "CR3 load", "total"],
            &[16, 12, 12, 10, 8],
        );
        for ((label, t), &cycles) in traces.iter().zip(&measured) {
            let entry = span_sum(t, "kernel_entry");
            let book = span_sum(t, "switch_book");
            let cr3 = span_sum(t, "cr3_load");
            report.row(
                &[
                    label.to_string(),
                    entry.to_string(),
                    book.to_string(),
                    cr3.to_string(),
                    (entry + book + cr3).to_string(),
                ],
                &[16, 12, 12, 10, 8],
            );
            assert_eq!(
                entry + book + cr3,
                cycles,
                "{label}: trace-derived breakdown must equal the measured switch"
            );
        }
        report.note("trace-derived totals assert equality with the measured switches");
    }
    report.finish();

    if tracer.enabled() {
        heading("trace export (DragonFly untagged switch)");
        export_trace(
            "tab2_switch_breakdown",
            &traces[0].1,
            MachineProfile::of(MachineId::M2).freq_hz,
        );
    }
}
