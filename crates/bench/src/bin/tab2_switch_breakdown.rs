//! Tables 1 and 2: machine profiles and the context-switch breakdown.
//!
//! Table 2 reports, in cycles on M2: CR3 load (130 plain / 224 tagged),
//! system call (357 DragonFly / 130 Barrelfish), and full `vas_switch`
//! (1127/807 DragonFly, 664/462 Barrelfish). The `vas_switch` row here is
//! *measured* by switching through the real SpaceJMP path, not quoted
//! from the cost model.

use sjmp_bench::{heading, human_bytes, row};
use sjmp_mem::cost::{CostModel, Machine, MachineProfile};
use sjmp_mem::KernelFlavor;
use sjmp_os::{Creds, Kernel, Mode};
use spacejmp_core::{SpaceJmp, VasCtl};

fn measured_switch(flavor: KernelFlavor, tagged: bool) -> u64 {
    let mut sj = SpaceJmp::new(Kernel::new(flavor, Machine::M2));
    if tagged {
        sj.kernel_mut().set_tagging(true);
    }
    let pid = sj.kernel_mut().spawn("p", Creds::new(1, 1)).expect("spawn");
    sj.kernel_mut().activate(pid).expect("activate");
    let vid = sj.vas_create(pid, "v", Mode(0o600)).expect("create");
    if tagged {
        sj.vas_ctl(pid, VasCtl::RequestTag, vid).expect("tag");
    }
    let vh = sj.vas_attach(pid, vid).expect("attach");
    let t0 = sj.kernel().clock().now();
    sj.vas_switch(pid, vh).expect("switch");
    sj.kernel().clock().since(t0)
}

fn main() {
    heading("Table 1: machine profiles");
    row(
        &["name", "memory", "cores", "freq[GHz]", "TLB"],
        &[6, 10, 6, 10, 6],
    );
    for m in [Machine::M1, Machine::M2, Machine::M3] {
        let p = MachineProfile::of(m);
        row(
            &[
                p.name.to_string(),
                human_bytes(p.mem_bytes),
                p.total_cores().to_string(),
                format!("{:.2}", p.freq_hz as f64 / 1e9),
                p.tlb_entries.to_string(),
            ],
            &[6, 10, 6, 10, 6],
        );
    }

    heading("Table 2: context-switch breakdown on M2 (cycles; tagged in parentheses)");
    let c = CostModel::default();
    row(&["operation", "DragonFly BSD", "Barrelfish"], &[12, 16, 14]);
    row(
        &[
            "CR3 load".to_string(),
            format!("{} ({})", c.cr3_load(false), c.cr3_load(true)),
            format!("{} ({})", c.cr3_load(false), c.cr3_load(true)),
        ],
        &[12, 16, 14],
    );
    row(
        &[
            "system call".to_string(),
            c.kernel_entry(KernelFlavor::DragonFly).to_string(),
            c.kernel_entry(KernelFlavor::Barrelfish).to_string(),
        ],
        &[12, 16, 14],
    );
    let bsd = (
        measured_switch(KernelFlavor::DragonFly, false),
        measured_switch(KernelFlavor::DragonFly, true),
    );
    let bf = (
        measured_switch(KernelFlavor::Barrelfish, false),
        measured_switch(KernelFlavor::Barrelfish, true),
    );
    row(
        &[
            "vas_switch".to_string(),
            format!("{} ({})", bsd.0, bsd.1),
            format!("{} ({})", bf.0, bf.1),
        ],
        &[12, 16, 14],
    );
    println!("\npaper: vas_switch 1127 (807) DragonFly, 664 (462) Barrelfish");
}
