//! Heterogeneous-memory ablation (Section 7): the same persistent
//! workload with its VAS-resident data on the DRAM performance tier vs
//! the NVM capacity tier.
//!
//! The paper's conclusion: "We expect future memory systems will include
//! a combination of several heterogeneous hardware modules ... a
//! co-packaged volatile performance tier, a persistent capacity tier ...
//! SpaceJMP can be the basis for tying together a complex heterogeneous
//! memory system." Segments make tier placement a one-line decision;
//! this ablation shows what each placement costs.

use sjmp_bench::Report;
use sjmp_mem::{KernelFlavor, MachineId, VirtAddr};
use sjmp_os::{Creds, Kernel, Mode};
use spacejmp_core::{AttachMode, MemTier, SpaceJmp, VasHeap};

/// One workload: a linked list built, walked, and updated in a segment on
/// the given tier. Returns (build, walk, update) simulated microseconds.
fn run(tier: MemTier, nodes: u64) -> (f64, f64, f64) {
    let mut sj = SpaceJmp::new(Kernel::new(KernelFlavor::DragonFly, MachineId::M2));
    sj.kernel_mut().set_nvm_tier(1 << 30);
    let pid = sj
        .kernel_mut()
        .spawn("tiered", Creds::new(1, 1))
        .expect("spawn");
    sj.kernel_mut().activate(pid).expect("activate");
    let base = VirtAddr::new(0x1000_0000_0000);
    let vid = sj.vas_create(pid, "tier-vas", Mode(0o600)).expect("vas");
    let sid = sj
        .seg_alloc_tier(pid, "tier-seg", base, 8 << 20, Mode(0o600), tier)
        .expect("seg");
    sj.seg_attach(pid, vid, sid, AttachMode::ReadWrite)
        .expect("attach");
    let vh = sj.vas_attach(pid, vid).expect("vh");
    sj.vas_switch(pid, vh).expect("switch");
    let heap = VasHeap::format(&mut sj, pid, sid).expect("heap");

    let profile = sj.kernel().profile().clone();
    let clock = sj.kernel().clock().clone();
    let us = |c: u64| profile.cycles_to_secs(c) * 1e6;

    // Build.
    let t0 = clock.now();
    let mut next = VirtAddr::NULL;
    for v in 0..nodes {
        let node = heap.malloc(&mut sj, pid, 16).expect("malloc");
        sj.kernel_mut().store_u64(pid, node, v).expect("store");
        sj.kernel_mut()
            .store_u64(pid, node.add(8), next.raw())
            .expect("store");
        next = node;
    }
    heap.set_root(&mut sj, pid, next).expect("root");
    let build = us(clock.since(t0));

    // Walk (read-dominated).
    let t1 = clock.now();
    let mut cur = next;
    let mut sum = 0u64;
    while cur != VirtAddr::NULL {
        sum = sum.wrapping_add(sj.kernel_mut().load_u64(pid, cur).expect("load"));
        cur = VirtAddr::new(sj.kernel_mut().load_u64(pid, cur.add(8)).expect("load"));
    }
    let walk = us(clock.since(t1));
    assert_eq!(sum, nodes * (nodes - 1) / 2);

    // Update (write-dominated).
    let t2 = clock.now();
    let mut cur = next;
    while cur != VirtAddr::NULL {
        let v = sj.kernel_mut().load_u64(pid, cur).expect("load");
        sj.kernel_mut().store_u64(pid, cur, v + 1).expect("store");
        cur = VirtAddr::new(sj.kernel_mut().load_u64(pid, cur.add(8)).expect("load"));
    }
    let update = us(clock.since(t2));
    (build, walk, update)
}

fn main() {
    let nodes = 20_000;
    let mut report = Report::new("ablate_memory_tiers");
    report.heading(&format!(
        "Memory-tier ablation: {nodes}-node linked list in a segment (us, M2)"
    ));
    report.header(&["tier", "build", "walk", "update"], &[6, 10, 10, 10]);
    let (db, dw, du) = run(MemTier::Dram, nodes);
    let (nb, nw, nu) = run(MemTier::Nvm, nodes);
    report.row(
        &[
            "DRAM".to_string(),
            format!("{db:.1}"),
            format!("{dw:.1}"),
            format!("{du:.1}"),
        ],
        &[6, 10, 10, 10],
    );
    report.row(
        &[
            "NVM".to_string(),
            format!("{nb:.1}"),
            format!("{nw:.1}"),
            format!("{nu:.1}"),
        ],
        &[6, 10, 10, 10],
    );
    report.row(
        &[
            "ratio".to_string(),
            format!("{:.2}", nb / db),
            format!("{:.2}", nw / dw),
            format!("{:.2}", nu / du),
        ],
        &[6, 10, 10, 10],
    );
    report.note("\nwrite-heavy phases feel NVM's write asymmetry hardest; placement");
    report.note("is a per-segment decision — exactly the control SpaceJMP gives");
    report.finish();
}
