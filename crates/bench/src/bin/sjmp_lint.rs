//! `sjmp-lint`: the combined static + dynamic safety gate.
//!
//! Replays exported traces through the `sjmp-analyze` detectors,
//! optionally runs the IR-level pointer-provenance verifier over the
//! example corpus (`--ir`) and a seeded generator batch (`--gen N`),
//! and emits a machine-readable findings report at
//! `results/analyze_report.json`:
//!
//! ```json
//! {
//!   "tool": "sjmp-lint",
//!   "traces": [
//!     { "name": "fig8_gups", "events": 123, "dropped": 0,
//!       "skipped_incomplete": false, "findings": [ ... ] }
//!   ],
//!   "ir": {
//!     "programs": [
//!       { "name": "quickstart", "mem_ops": 2, "proven_safe": 2,
//!         "proven_dangling": 0, "unknown": 0, "expected_dangling": false,
//!         "findings": [ ... ] }
//!     ],
//!     "gen": { "seeds": 64, "programs": 64, "mem_sites": 400,
//!              "proven_safe": 300, "proven_dangling": 3,
//!              "dangling_confirmed": 2, "extra_elisions": 40,
//!              "violations": [] }
//!   },
//!   "findings_total": 0
//! }
//! ```
//!
//! Run `sjmp_lint --help` for usage and the exit-code contract.

use std::process::ExitCode;

use sjmp_analyze::{analyze_trace, verify_module};
use sjmp_safety::examples;
use sjmp_safety::genprog;
use sjmp_trace::{parse_chrome_trace, Json};

const HELP: &str = "\
sjmp-lint: trace-replay and IR-provenance safety gate

usage: sjmp_lint [options] [--all | <bench-name>...]

Trace replay loads results/<name>.trace.json for each name (or every
*.trace.json under results/ with --all) and runs the data-race and
lock-order detectors. IR verification is independent of traces and may
be requested on its own.

options:
  --format <json|text>  stdout format (default text). json prints the
                        full report document to stdout; the report is
                        always also written to results/analyze_report.json
  --ir                  run the pointer-provenance verifier over the
                        built-in IR example corpus: healthy programs
                        must be clean, and the known-dangling program
                        must report its exact alloc->escape->switch->deref
                        chain
  --gen <N>             generate N seeded IR programs and validate
                        verifier soundness on each (elided checks never
                        fire; proven-dangling sites fault)
  --help                print this help and exit

exit status:
  0  clean: no findings, all gates passed
  1  findings reported (or an IR/soundness gate failed)
  2  usage error, or a trace/report file could not be read or written
";

#[derive(PartialEq, Clone, Copy)]
enum Format {
    Text,
    Json,
}

struct Options {
    format: Format,
    ir: bool,
    gen_seeds: Option<u64>,
    all: bool,
    names: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        format: Format::Text,
        ir: false,
        gen_seeds: None,
        all: false,
        names: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => {
                let v = it.next().ok_or("--format requires an argument")?;
                opts.format = match v.as_str() {
                    "json" => Format::Json,
                    "text" => Format::Text,
                    other => return Err(format!("unknown format `{other}` (json|text)")),
                };
            }
            "--ir" => opts.ir = true,
            "--gen" => {
                let v = it.next().ok_or("--gen requires a seed count")?;
                let n: u64 = v
                    .parse()
                    .map_err(|_| format!("--gen: `{v}` is not a number"))?;
                opts.gen_seeds = Some(n);
            }
            "--all" => opts.all = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            name => opts.names.push(name.to_string()),
        }
    }
    if !opts.all && opts.names.is_empty() && !opts.ir && opts.gen_seeds.is_none() {
        return Err("nothing to do: give bench names, --all, --ir, or --gen N".into());
    }
    Ok(opts)
}

fn trace_names_from_dir() -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let entries = std::fs::read_dir("results").map_err(|e| format!("results/: {e}"))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("results/: {e}"))?;
        let file = entry.file_name();
        let file = file.to_string_lossy();
        if let Some(name) = file.strip_suffix(".trace.json") {
            names.push(name.to_string());
        }
    }
    if names.is_empty() {
        return Err("results/: no *.trace.json files found".into());
    }
    names.sort();
    Ok(names)
}

fn analyze_one(name: &str, text_out: bool) -> Result<(Json, usize), String> {
    let path = format!("results/{name}.trace.json");
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: parse error: {e}"))?;
    let parsed = parse_chrome_trace(&doc).map_err(|e| format!("{path}: {e}"))?;
    let analysis = analyze_trace(&parsed.events, parsed.dropped);
    let count = analysis.findings.len();
    let entry = Json::Obj(vec![
        ("name".into(), Json::str(name)),
        ("events".into(), Json::from_u64(parsed.events.len() as u64)),
        ("dropped".into(), Json::from_u64(parsed.dropped)),
        (
            "skipped_incomplete".into(),
            Json::Bool(analysis.skipped_incomplete),
        ),
        (
            "findings".into(),
            Json::Arr(analysis.findings.iter().map(|f| f.to_json()).collect()),
        ),
    ]);
    if text_out {
        for f in &analysis.findings {
            eprintln!("FINDING [{name}] {}: {}", f.rule, f.message);
        }
        if analysis.skipped_incomplete {
            eprintln!(
                "note: {name}: trace dropped {} events; replay skipped",
                parsed.dropped
            );
        }
    }
    Ok((entry, count))
}

/// Runs the provenance verifier over the example corpus. Returns the
/// JSON section and the number of *gate failures* (healthy program
/// with findings, or the dangling program not reporting the expected
/// chain) — the dangling program's own findings are expected output,
/// not failures.
fn run_ir_examples(text_out: bool) -> (Vec<Json>, usize) {
    let mut programs = Vec::new();
    let mut failures = 0usize;

    let mut corpus: Vec<(String, _, bool)> = examples::healthy()
        .into_iter()
        .map(|(name, m)| (name.to_string(), m, false))
        .collect();
    corpus.push(("dangling-escape".into(), examples::dangling_example(), true));

    for (name, module, expect_dangling) in corpus {
        let v = verify_module(&module, examples::entry_set());
        let ok = if expect_dangling {
            v.proven_dangling > 0 && !v.findings.is_empty()
        } else {
            v.findings.is_empty() && v.proven_dangling == 0
        };
        if !ok {
            failures += 1;
        }
        if text_out {
            let status = if ok { "ok" } else { "FAIL" };
            println!(
                "{status}: ir/{name} ({} mem ops, {} safe, {} dangling, {} unknown)",
                v.mem_ops, v.proven_safe, v.proven_dangling, v.unknown
            );
            for f in &v.findings {
                let tag = if expect_dangling {
                    "EXPECTED"
                } else {
                    "FINDING"
                };
                eprintln!("{tag} [ir/{name}] {}: {}", f.rule, f.message);
            }
        }
        programs.push(Json::Obj(vec![
            ("name".into(), Json::str(&name)),
            ("mem_ops".into(), Json::from_u64(v.mem_ops as u64)),
            ("proven_safe".into(), Json::from_u64(v.proven_safe as u64)),
            (
                "proven_dangling".into(),
                Json::from_u64(v.proven_dangling as u64),
            ),
            ("unknown".into(), Json::from_u64(v.unknown as u64)),
            ("expected_dangling".into(), Json::Bool(expect_dangling)),
            (
                "findings".into(),
                Json::Arr(v.findings.iter().map(|f| f.to_json()).collect()),
            ),
        ]));
    }
    (programs, failures)
}

/// Validates verifier soundness over `n` generated programs. Returns
/// the JSON section and the number of violations.
fn run_gen_batch(n: u64, text_out: bool) -> (Json, usize) {
    let report = genprog::validate_batch(0..n);
    let violations = report.violations.len();
    if text_out {
        let status = if violations == 0 { "ok" } else { "FAIL" };
        println!(
            "{status}: gen/{n} seeds ({} programs, {} mem sites, {} safe, \
             {} dangling, {} confirmed, {} extra elisions, {} violations)",
            report.programs,
            report.mem_sites,
            report.proven_safe,
            report.proven_dangling,
            report.dangling_confirmed,
            report.extra_elisions,
            violations
        );
        for v in &report.violations {
            eprintln!("VIOLATION [gen] {v}");
        }
    }
    let json = Json::Obj(vec![
        ("seeds".into(), Json::from_u64(n)),
        ("programs".into(), Json::from_u64(report.programs as u64)),
        ("mem_sites".into(), Json::from_u64(report.mem_sites as u64)),
        (
            "proven_safe".into(),
            Json::from_u64(report.proven_safe as u64),
        ),
        (
            "proven_dangling".into(),
            Json::from_u64(report.proven_dangling as u64),
        ),
        (
            "dangling_confirmed".into(),
            Json::from_u64(report.dangling_confirmed as u64),
        ),
        (
            "extra_elisions".into(),
            Json::from_u64(report.extra_elisions as u64),
        ),
        (
            "violations".into(),
            Json::Arr(report.violations.iter().map(|v| Json::str(v)).collect()),
        ),
    ]);
    (json, violations)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{HELP}");
        return ExitCode::from(0);
    }
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("sjmp_lint: {e}\n\n{HELP}");
            return ExitCode::from(2);
        }
    };
    let text_out = opts.format == Format::Text;

    let names = if opts.all {
        match trace_names_from_dir() {
            Ok(names) => names,
            Err(e) => {
                eprintln!("sjmp_lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        opts.names.clone()
    };

    let mut traces = Vec::new();
    let mut total = 0usize;
    let mut io_failure = false;
    for name in &names {
        match analyze_one(name, text_out) {
            Ok((entry, count)) => {
                total += count;
                traces.push(entry);
                if text_out {
                    println!(
                        "{}: results/{name}.trace.json ({count} findings)",
                        if count == 0 { "ok" } else { "RACY" },
                    );
                }
            }
            Err(e) => {
                eprintln!("sjmp_lint: {e}");
                io_failure = true;
            }
        }
    }

    let mut report_fields = vec![
        ("tool".into(), Json::str("sjmp-lint")),
        ("traces".into(), Json::Arr(traces)),
    ];

    let mut gate_failures = 0usize;
    if opts.ir || opts.gen_seeds.is_some() {
        let mut ir_fields = Vec::new();
        if opts.ir {
            let (programs, failures) = run_ir_examples(text_out);
            gate_failures += failures;
            ir_fields.push(("programs".to_string(), Json::Arr(programs)));
        }
        if let Some(n) = opts.gen_seeds {
            let (json, violations) = run_gen_batch(n, text_out);
            gate_failures += violations;
            ir_fields.push(("gen".to_string(), json));
        }
        report_fields.push(("ir".into(), Json::Obj(ir_fields)));
    }
    report_fields.push(("findings_total".into(), Json::from_u64(total as u64)));
    let report = Json::Obj(report_fields);

    let path = "results/analyze_report.json";
    if let Err(e) = std::fs::write(path, report.pretty()) {
        eprintln!("sjmp_lint: {path}: {e}");
        return ExitCode::from(2);
    }
    if text_out {
        println!("wrote {path} ({total} findings total)");
    } else {
        println!("{}", report.pretty());
    }
    if io_failure {
        ExitCode::from(2)
    } else if total > 0 || gate_failures > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::from(0)
    }
}
