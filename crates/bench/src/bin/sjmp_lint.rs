//! `sjmp-lint`: replays exported traces through the `sjmp-analyze`
//! detectors and emits a machine-readable findings report.
//!
//! Usage: `sjmp_lint <bench-name>... | --all`
//!
//! For each name, loads `results/<name>.trace.json` (the Chrome
//! `trace_event` document `export_trace` wrote), reconstructs the event
//! stream with `parse_chrome_trace`, and runs the data-race and
//! lock-order analyses. `--all` scans `results/` for every
//! `*.trace.json`. The combined report is written to
//! `results/analyze_report.json`:
//!
//! ```json
//! {
//!   "tool": "sjmp-lint",
//!   "traces": [
//!     { "name": "fig8_gups", "events": 123, "dropped": 0,
//!       "skipped_incomplete": false, "findings": [ ... ] }
//!   ],
//!   "findings_total": 0
//! }
//! ```
//!
//! Exit status is nonzero if any finding was reported (CI treats a
//! finding on a stock benchmark trace as a regression) or any trace
//! failed to load.

use std::process::ExitCode;

use sjmp_analyze::analyze_trace;
use sjmp_trace::{parse_chrome_trace, Json};

fn trace_names_from_dir() -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let entries = std::fs::read_dir("results").map_err(|e| format!("results/: {e}"))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("results/: {e}"))?;
        let file = entry.file_name();
        let file = file.to_string_lossy();
        if let Some(name) = file.strip_suffix(".trace.json") {
            names.push(name.to_string());
        }
    }
    if names.is_empty() {
        return Err("results/: no *.trace.json files found".into());
    }
    names.sort();
    Ok(names)
}

fn analyze_one(name: &str) -> Result<(Json, usize), String> {
    let path = format!("results/{name}.trace.json");
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: parse error: {e}"))?;
    let parsed = parse_chrome_trace(&doc).map_err(|e| format!("{path}: {e}"))?;
    let analysis = analyze_trace(&parsed.events, parsed.dropped);
    let count = analysis.findings.len();
    let entry = Json::Obj(vec![
        ("name".into(), Json::str(name)),
        ("events".into(), Json::from_u64(parsed.events.len() as u64)),
        ("dropped".into(), Json::from_u64(parsed.dropped)),
        (
            "skipped_incomplete".into(),
            Json::Bool(analysis.skipped_incomplete),
        ),
        (
            "findings".into(),
            Json::Arr(analysis.findings.iter().map(|f| f.to_json()).collect()),
        ),
    ]);
    for f in &analysis.findings {
        eprintln!("FINDING [{name}] {}: {}", f.rule, f.message);
    }
    if analysis.skipped_incomplete {
        eprintln!(
            "note: {name}: trace dropped {} events; replay skipped",
            parsed.dropped
        );
    }
    Ok((entry, count))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: sjmp_lint --all | <bench-name>...");
        return ExitCode::FAILURE;
    }
    let names = if args.iter().any(|a| a == "--all") {
        match trace_names_from_dir() {
            Ok(names) => names,
            Err(e) => {
                eprintln!("FAIL {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        args
    };

    let mut traces = Vec::new();
    let mut total = 0usize;
    let mut load_failures = false;
    for name in &names {
        match analyze_one(name) {
            Ok((entry, count)) => {
                total += count;
                traces.push(entry);
                println!(
                    "{}: results/{name}.trace.json ({count} findings)",
                    if count == 0 { "ok" } else { "RACY" },
                );
            }
            Err(e) => {
                eprintln!("FAIL {e}");
                load_failures = true;
            }
        }
    }
    let report = Json::Obj(vec![
        ("tool".into(), Json::str("sjmp-lint")),
        ("traces".into(), Json::Arr(traces)),
        ("findings_total".into(), Json::from_u64(total as u64)),
    ]);
    let path = "results/analyze_report.json";
    if let Err(e) = std::fs::write(path, report.pretty()) {
        eprintln!("FAIL {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {path} ({total} findings total)");
    if total > 0 || load_failures {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
